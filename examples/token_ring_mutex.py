"""The Section 5 distributed mutual-exclusion token ring, end to end.

Run with ``python examples/token_ring_mutex.py``.

The script follows the paper's Section 5 narrative:

1. build the two-process global state graph (Fig. 5.1) and the r-process ring;
2. check the three invariants and the four ICTL* properties;
3. try to establish the paper's correspondence between M_2 and M_r — and show
   the documented deviation: a restricted ICTL* formula distinguishes M_2 from
   every larger ring, so the two-process base case is too small;
4. establish the corrected correspondence with the three-process base and
   transfer the four properties to the larger ring without model checking it.
"""

from repro.correspondence import ParameterizedVerifier, verify_index_relation
from repro.mc import ICTLStarModelChecker
from repro.systems import token_ring

LARGE_SIZE = 5


def main() -> None:
    print("== Building the rings ==")
    ring2 = token_ring.build_token_ring(2)
    ring3 = token_ring.build_token_ring(token_ring.RECOMMENDED_BASE_SIZE)
    large = token_ring.build_token_ring(LARGE_SIZE)
    for structure in (ring2, ring3, large):
        print(f"  {structure.name}: {structure.num_states} states, {structure.num_transitions} transitions")

    print("\n== Invariants and properties (checked directly) ==")
    for structure in (ring2, large):
        checker = ICTLStarModelChecker(structure)
        print(f"  on {structure.name}:")
        print(f"    partition invariant      : {token_ring.partition_invariant_holds(structure)}")
        for name, formula in {**token_ring.ring_invariants(), **token_ring.ring_properties()}.items():
            print(f"    {name:25s}: {checker.check(formula)}")

    print("\n== The paper's claim: M_2 corresponds to M_r ==")
    report = verify_index_relation(ring2, large, token_ring.section5_index_relation(LARGE_SIZE))
    print(f"  correspondence established: {report.holds}")
    print(f"  failing index pairs       : {report.failing_pairs}")

    phi = token_ring.distinguishing_formula()
    print("\n  why it cannot hold — a restricted ICTL* formula that disagrees:")
    print(f"    {phi}")
    print(f"    on M_2 : {ICTLStarModelChecker(ring2).check(phi)}")
    print(f"    on M_{LARGE_SIZE} : {ICTLStarModelChecker(large).check(phi)}")

    print("\n== The corrected workflow: base case M_3 ==")
    index_relation = token_ring.corrected_index_relation(
        token_ring.RECOMMENDED_BASE_SIZE, LARGE_SIZE
    )
    verifier = ParameterizedVerifier(ring3, large, index_relation)
    established = verifier.establish()
    print(f"  correspondence established: {established.holds}")
    direct = ICTLStarModelChecker(large)
    print(f"  {'property':28s}{'checked on M_3':>16s}{'direct on M_'+str(LARGE_SIZE):>16s}")
    for name, formula in token_ring.ring_properties().items():
        transferred = verifier.check(formula)
        print(f"  {name:28s}{transferred.holds!s:>16s}{direct.check(formula)!s:>16s}")
    print("\n  The verdicts transfer by Theorem 5: checking M_3 suffices for any r >= 3.")


if __name__ == "__main__":
    main()
