"""Verifying your own family of identical processes with the correspondence workflow.

Run with ``python examples/parameterized_families.py``.

The script shows how to use the public composition API to define a family of
identical processes (here: a round-robin scheduler built from a shared token
variable and a barrier built from a broadcast rule), and then uses the
parameterized-verification workflow to check ICTL* properties of arbitrarily
sized instances by model checking only the two-process instance.
"""

from repro.correspondence import ParameterizedVerifier
from repro.mc import ICTLStarModelChecker
from repro.systems import barrier, round_robin

LARGE_SIZE = 6


def run_family(name, build, index_relation_for, properties) -> None:
    print(f"== {name} ==")
    small = build(2)
    large = build(LARGE_SIZE)
    print(f"  2-process instance : {small.num_states} states")
    print(f"  {LARGE_SIZE}-process instance : {large.num_states} states")

    verifier = ParameterizedVerifier(small, large, index_relation_for(LARGE_SIZE))
    report = verifier.establish()
    print(f"  correspondence established: {report.holds}")

    direct = ICTLStarModelChecker(large)
    print(f"  {'property':30s}{'via base':>10s}{'direct':>10s}")
    for prop_name, formula in properties.items():
        transferred = verifier.check(formula)
        print(f"  {prop_name:30s}{transferred.holds!s:>10s}{direct.check(formula)!s:>10s}")
    print()


def main() -> None:
    run_family(
        "Round-robin token scheduler",
        round_robin.build_round_robin,
        round_robin.round_robin_index_relation,
        round_robin.round_robin_properties(),
    )
    run_family(
        "Synchronisation barrier",
        barrier.build_barrier,
        barrier.barrier_index_relation,
        barrier.barrier_properties(),
    )
    print("Both families correspond at every size, so the 2-process verdicts are")
    print("valid for any number of processes — the paper's programme, applied to")
    print("systems beyond its own example.")


if __name__ == "__main__":
    main()
