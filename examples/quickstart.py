"""Quickstart: build a structure, model check it, and compare it with a stuttered variant.

Run with ``python examples/quickstart.py``.

The example walks through the three core capabilities of the library:

1. describing a Kripke structure and checking CTL/CTL* formulas on it;
2. parsing formulas from the textual syntax;
3. deciding *correspondence* (the paper's stuttering-tolerant bisimulation)
   between two structures and observing that they satisfy exactly the same
   next-free formulas (Theorem 2 of the paper).
"""

from repro.kripke import KripkeStructure
from repro.logic import parse
from repro.mc import CTLStarModelChecker
from repro.correspondence import find_correspondence


def build_traffic_light() -> KripkeStructure:
    """A traffic light cycling green → yellow → red."""
    return KripkeStructure(
        states=["green", "yellow", "red"],
        transitions=[("green", "yellow"), ("yellow", "red"), ("red", "green")],
        labeling={"green": {"go"}, "yellow": {"caution"}, "red": {"stop"}},
        initial_state="green",
        name="traffic-light",
    )


def build_slow_traffic_light() -> KripkeStructure:
    """The same light, but the red phase stutters for three steps."""
    return KripkeStructure(
        states=["green", "yellow", "red1", "red2", "red3"],
        transitions=[
            ("green", "yellow"),
            ("yellow", "red1"),
            ("red1", "red2"),
            ("red2", "red3"),
            ("red3", "green"),
        ],
        labeling={
            "green": {"go"},
            "yellow": {"caution"},
            "red1": {"stop"},
            "red2": {"stop"},
            "red3": {"stop"},
        },
        initial_state="green",
        name="slow-traffic-light",
    )


def main() -> None:
    light = build_traffic_light()
    slow = build_slow_traffic_light()

    print("== Model checking the traffic light ==")
    checker = CTLStarModelChecker(light)
    for text in [
        "AG(go -> AF stop)",          # after green, red always follows eventually
        "AG(stop -> A(stop U go))",   # red persists until green
        "EF(caution & EF go)",        # a path through yellow back to green exists
        "AG AF go",                   # green recurs forever
    ]:
        formula = parse(text)
        print(f"  {text:30s} -> {checker.check(formula)}")

    print("\n== Correspondence between the fast and slow lights ==")
    relation = find_correspondence(light, slow)
    if relation is None:
        print("  the structures do NOT correspond")
        return
    print(f"  the structures correspond ({len(relation)} state pairs)")
    print(f"  degree of (red, red1): {relation.degree('red', 'red1')}")
    print(f"  degree of (red, red3): {relation.degree('red', 'red3')}")

    print("\n== Theorem 2 in action: the same next-free formulas hold ==")
    slow_checker = CTLStarModelChecker(slow)
    for text in ["AG(go -> AF stop)", "AG AF go", "E(G F caution)"]:
        formula = parse(text)
        fast_result = checker.check(formula)
        slow_result = slow_checker.check(formula)
        marker = "==" if fast_result == slow_result else "!="
        print(f"  {text:25s} fast={fast_result!s:5s} {marker} slow={slow_result!s:5s}")


if __name__ == "__main__":
    main()
