"""Why indexed CTL* needs its restrictions (Fig. 4.1 and the next-time example).

Run with ``python examples/counting_and_restrictions.py``.

Two demonstrations from the paper:

* the **next-time operator counts processes**: ``AG(t_1 ⇒ XXX t_1)`` holds on
  the circulating-token ring only when the ring size divides three, so CTL*
  without ``X`` is the right base logic;
* **nested index quantifiers count processes** (Fig. 4.1): the nested counting
  formula with ``m`` levels of ``∨_i`` holds exactly on networks with at least
  ``m`` processes, so the restricted logic forbids such nesting — and the
  library's restriction checker rejects those formulas unless explicitly told
  not to.
"""

from repro.logic.syntax import restriction_violations
from repro.mc import ICTLStarModelChecker
from repro.systems import figures


def main() -> None:
    print("== Next-time counts the ring size ==")
    formula = figures.nexttime_counting_formula(3)
    print(f"  formula: {formula}")
    for size in range(1, 7):
        ring = figures.circulating_token_ring(size)
        checker = ICTLStarModelChecker(ring, enforce_restrictions=False)
        print(f"    ring of size {size}: {checker.check(formula)}")
    print("  -> the formula distinguishes ring sizes, which is why the paper's")
    print("     CTL* excludes the next-time operator.")

    print("\n== Nested index quantifiers count processes (Fig. 4.1) ==")
    print("  rows: network size; columns: nesting depth of the counting formula")
    header = "  size | " + " ".join(f"d={depth}" for depth in range(1, 5))
    print(header)
    for size in range(1, 6):
        network = figures.fig41_network(size)
        checker = ICTLStarModelChecker(network, enforce_restrictions=False)
        row = [checker.check(figures.fig41_counting_formula(depth)) for depth in range(1, 5)]
        print(f"  {size:>4d} | " + " ".join("T  " if value else "F  " for value in row))
    print("  -> depth-m formulas hold exactly when the network has >= m processes.")

    print("\n== The restriction checker rejects the counting formulas ==")
    for depth in (1, 2, 3):
        violations = restriction_violations(figures.fig41_counting_formula(depth))
        status = "accepted (restricted ICTL*)" if not violations else "rejected: " + violations[0]
        print(f"  depth {depth}: {status}")


if __name__ == "__main__":
    main()
