"""State explosion vs. correspondence-based verification (the "1000 processes" claim).

Run with ``python examples/state_explosion.py``.

The script measures how quickly the token ring's global state graph grows with
the number of processes, how long direct ICTL* checking takes under both
explicit-state engines (the compiled bitset engine vs. the naive frozenset
oracle), and then crosses the explicit wall with the symbolic BDD engine:
rings of 10+ processes are encoded directly as decision diagrams, checked as
BDD fixpoints, and counted by satisfy-count — no global state is ever
enumerated.  Finally it spot-checks the 1000-process ring by random walks over
the on-the-fly successor function — the global graph of that ring is never
built, mirroring how the paper argues about large networks.
"""

from repro.analysis.explosion import (
    sample_large_ring_correspondence,
    symbolic_token_ring_explosion_sweep,
    token_ring_explosion_sweep,
)
from repro.analysis.timing import timed_call
from repro.mc import ICTLStarModelChecker
from repro.systems import token_ring

SWEEP_SIZES = (2, 3, 4, 5, 6, 7)
SYMBOLIC_SIZES = (8, 12, 16, 20)
LARGE_SIZE = 1000


def main() -> None:
    print("== Direct construction and checking of M_r (bitset engine) ==")
    print(f"  {'r':>3s} {'states':>8s} {'transitions':>12s} {'build (s)':>10s} {'check (s)':>10s}")
    points = token_ring_explosion_sweep(SWEEP_SIZES)
    for point in points:
        print(
            f"  {point.size:>3d} {point.num_states:>8d} {point.num_transitions:>12d}"
            f" {point.build_seconds:>10.4f} {point.check_seconds:>10.4f}"
        )
    growth = points[-1].num_states / points[0].num_states
    print(f"  growth factor over the sweep: {growth:.0f}x in states")

    largest = max(SWEEP_SIZES)
    print(f"\n== Engine head-to-head on M_{largest} ==")
    structure = token_ring.build_token_ring(largest)
    seconds = {}
    for engine in ("naive", "bitset"):
        checker = ICTLStarModelChecker(structure, engine=engine)
        timed = timed_call(checker.check_batch, token_ring.ring_properties())
        seconds[engine] = timed.seconds
        print(f"  {engine:>6s}: {timed.seconds:.4f}s, all hold: {all(timed.value.values())}")
    if seconds["bitset"] > 0:
        print(f"  speedup: {seconds['naive'] / seconds['bitset']:.1f}x")

    print("\n== Crossing the wall symbolically (BDD engine) ==")
    print(f"  {'r':>3s} {'states':>8s} {'transitions':>12s} {'bdd nodes':>10s} {'check (s)':>10s}")
    for point in symbolic_token_ring_explosion_sweep(SYMBOLIC_SIZES):
        assert all(point.results.values())
        print(
            f"  {point.size:>3d} {point.num_states:>8d} {point.num_transitions:>12d}"
            f" {point.bdd_nodes:>10d} {point.check_seconds:>10.4f}"
        )
    print("  state counts above are exact BDD satisfy-counts — the global graph")
    print("  is never built, and all four Section 5 properties still hold.")

    print("\n== The correspondence-based alternative ==")
    base = token_ring.build_token_ring(token_ring.RECOMMENDED_BASE_SIZE)

    def check_base():
        checker = ICTLStarModelChecker(base)
        return checker.check_batch(token_ring.ring_properties())

    timed = timed_call(check_base)
    print(f"  checking all four properties on M_{token_ring.RECOMMENDED_BASE_SIZE}: "
          f"{timed.seconds:.4f}s, results: {timed.value}")
    print("  by Theorem 5 these verdicts hold for every ring of size >= 3 —")
    print("  including r = 1000 — without ever building the larger graphs.")

    print(f"\n== Spot-checking the r = {LARGE_SIZE} ring on the fly ==")
    counters = sample_large_ring_correspondence(LARGE_SIZE, num_walks=5, walk_length=25)
    print(f"  states visited by random walks : {counters['visited']}")
    print(f"  partition invariant held       : {counters['partition_ok']}")
    print(f"  Section 5 pairing with M_2 seen: {counters['paired']}")


if __name__ == "__main__":
    main()
