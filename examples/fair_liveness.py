"""Liveness under fairness: the ``AF t_i`` claims the plain semantics cannot make.

Run with ``python examples/fair_liveness.py``.

The Section 5 properties all carry a request premise (``d_i ⇒ …``): in plain
CTL the unconditional claim "process *i* eventually holds the token" is false
on every ring, because the path on which process *i* never requests is a
counterexample.  This script walks the fairness-constrained story:

1. check ``∧_i AF t_i`` on explicit rings without fairness (it fails) and
   extract the counterexample lasso — a real cycle on which the last process
   never holds the token;
2. re-check under per-process scheduler fairness (every process is
   infinitely often delayed or holding the token): the claim holds, with all
   three engines replayed differentially;
3. extract a *fair* witness lasso — a cycle that visits every fairness set,
   the finite certificate of one fair path — and validate it;
4. repeat the verdict pair on a ring only the symbolic BDD engine can reach.
"""

from repro.kripke.paths import is_lasso
from repro.logic.ast import TrueLiteral
from repro.logic.builders import AF, iatom
from repro.mc import (
    ICTLStarModelChecker,
    SymbolicCTLModelChecker,
    counterexample_af,
    crosscheck_ctl_engines,
    resolve_checker,
    witness_eg,
)
from repro.systems import token_ring

RING_SIZE = 4
SYMBOLIC_SIZE = 8


def main() -> None:
    print("== The unfair ring: AF t_i fails ==")
    ring = token_ring.build_token_ring(RING_SIZE)
    formula = token_ring.property_eventual_token()
    plain = ICTLStarModelChecker(ring)
    print(f"  {ring.name}: {ring.num_states} states")
    print(f"  AF t_i for every i (plain CTL): {plain.check(formula)}")

    lasso = counterexample_af(ring, iatom("t", RING_SIZE), engine="bitset")
    print(f"  counterexample lasso (process {RING_SIZE} never holds the token):")
    print(f"    stem  : {len(lasso.stem)} states")
    print(f"    cycle : {len(lasso.cycle)} states, valid={is_lasso(ring, lasso)}")

    print("\n== Scheduler fairness: every process participates infinitely often ==")
    constraint = token_ring.ring_scheduler_fairness(RING_SIZE)
    fair = ICTLStarModelChecker(ring, fairness=constraint)
    print(f"  constraint: {constraint}")
    print(f"  AF t_i for every i (fair CTL) : {fair.check(formula)}")
    for process in range(1, RING_SIZE + 1):
        satisfied = crosscheck_ctl_engines(ring, AF(iatom("t", process)), fairness=constraint)
        print(
            f"    AF t_{process}: all 3 engines agree on "
            f"{len(satisfied)}/{ring.num_states} states"
        )

    print("\n== A fair witness lasso ==")
    fair_lasso = witness_eg(ring, TrueLiteral(), fairness=constraint)
    checker = resolve_checker(ring, "bitset", constraint)
    meets_all = all(
        any(state in condition for state in fair_lasso.cycle)
        for condition in checker.fairness_condition_sets()
    )
    print(f"  cycle of {len(fair_lasso.cycle)} states, valid={is_lasso(ring, fair_lasso)}")
    print(f"  cycle visits every fairness set: {meets_all}")

    print("\n== Beyond the explicit wall: the symbolic engine ==")
    encoded = token_ring.symbolic_token_ring(SYMBOLIC_SIZE)
    print(f"  M_{SYMBOLIC_SIZE} (symbolic): {encoded.num_states} states, never enumerated")
    symbolic_plain = SymbolicCTLModelChecker(encoded)
    symbolic_fair = SymbolicCTLModelChecker(
        encoded, fairness=token_ring.ring_scheduler_fairness(SYMBOLIC_SIZE)
    )
    print(f"  AF t_i plain : {symbolic_plain.check(formula)}")
    print(f"  AF t_i fair  : {symbolic_fair.check(formula)} (Emerson-Lei fixpoint)")


if __name__ == "__main__":
    main()
