"""E1 — Fig. 3.1: corresponding structures.

Regenerates the figure's claim: the two structures correspond, the
"exact match" pair has degree 0, the stuttering pair has degree 2, and a
battery of next-free CTL* formulas agrees on both structures (Theorem 2).
"""

from repro.analysis import experiments
from repro.correspondence import find_correspondence
from repro.systems import figures


def test_e1_fig31_correspondence(benchmark):
    left, right = figures.fig31_structures()
    relation = benchmark(find_correspondence, left, right)
    assert relation is not None
    assert relation.degree("s1", "s1'''") == 0
    assert relation.degree("s1", "s1'") == 2


def test_e1_fig31_full_experiment(benchmark):
    report = benchmark(experiments.run_e1_fig31)
    assert report["corresponds"]
    assert report["all_agree"]
    assert report["degree_exact_match"] == 0
    assert report["degree_two_steps"] == 2
