"""Benchmark-suite configuration.

The benchmarks are ordinary pytest tests using the ``pytest-benchmark``
fixture; run them with ``pytest benchmarks/ --benchmark-only``.  Expensive
structures are shared through session fixtures so that each benchmark measures
the operation of interest rather than setup.

After a run that executed at least one benchmark, a machine-readable summary
is written as JSON (default ``BENCH_results.json`` in the invocation
directory; override the path with the ``BENCH_JSON`` environment variable).
Each record carries the benchmark name, its parameters (the problem size
``n``), wall-clock statistics, and whatever the benchmark published through
``benchmark.extra_info`` (e.g. the state count of the structure checked), so
future PRs can diff their perf trajectory against this baseline.
"""

from __future__ import annotations

import json
import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:  # pragma: no cover - environment dependent
    sys.path.insert(0, _SRC)

from repro.obs.metrics import REGISTRY  # noqa: E402
from repro.systems import token_ring  # noqa: E402

_STAT_FIELDS = ("min", "max", "mean", "median", "stddev", "rounds", "iterations")


@pytest.fixture(autouse=True)
def _metrics_into_extra_info(request):
    """Snapshot the metrics registry into each benchmark's ``extra_info``.

    The registry is reset before every test so a benchmark's snapshot
    reflects only its own engine activity (cache hits, fixpoint rounds,
    SAT conflicts), then lands in ``BENCH_results.json`` next to the
    wall-clock statistics.
    """
    REGISTRY.reset()
    bench = None
    if "benchmark" in request.fixturenames:
        bench = request.getfixturevalue("benchmark")
    yield
    if bench is not None and len(REGISTRY):
        bench.extra_info.setdefault("metrics", REGISTRY.snapshot())


def _benchmark_record(bench) -> dict:
    """Flatten one pytest-benchmark result into a plain JSON-serialisable dict."""
    record = {
        "name": bench.name,
        "fullname": bench.fullname,
        "group": bench.group,
        "params": bench.params or {},
        "extra_info": dict(bench.extra_info or {}),
    }
    stats = getattr(bench, "stats", None)
    if stats is not None:
        inner = getattr(stats, "stats", stats)
        for field in _STAT_FIELDS:
            value = getattr(inner, field, None)
            if value is not None:
                record[field] = value
    return record


def pytest_sessionfinish(session, exitstatus):
    benchmarksession = getattr(session.config, "_benchmarksession", None)
    if benchmarksession is None:
        return
    records = []
    for bench in benchmarksession.benchmarks:
        try:
            records.append(_benchmark_record(bench))
        except Exception as error:  # pragma: no cover - defensive
            records.append({"name": getattr(bench, "name", "?"), "error": repr(error)})
    if not records:
        return
    path = os.environ.get("BENCH_JSON", "BENCH_results.json")
    payload = {
        "python": sys.version.split()[0],
        "pytest_exitstatus": int(exitstatus),
        "benchmarks": records,
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)


@pytest.fixture(scope="session")
def ring2():
    """The two-process ring M_2 (Fig. 5.1)."""
    return token_ring.build_token_ring(2)


@pytest.fixture(scope="session")
def ring3():
    """The three-process ring M_3 (the corrected base case)."""
    return token_ring.build_token_ring(3)


@pytest.fixture(scope="session")
def ring4():
    """The four-process ring M_4."""
    return token_ring.build_token_ring(4)


@pytest.fixture(scope="session")
def ring5():
    """The five-process ring M_5."""
    return token_ring.build_token_ring(5)


@pytest.fixture(scope="session")
def ring6():
    """The six-process ring M_6 (the largest explosion-sweep seed size)."""
    return token_ring.build_token_ring(6)
