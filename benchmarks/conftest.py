"""Benchmark-suite configuration.

The benchmarks are ordinary pytest tests using the ``pytest-benchmark``
fixture; run them with ``pytest benchmarks/ --benchmark-only``.  Expensive
structures are shared through session fixtures so that each benchmark measures
the operation of interest rather than setup.
"""

from __future__ import annotations

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:  # pragma: no cover - environment dependent
    sys.path.insert(0, _SRC)

from repro.systems import token_ring  # noqa: E402


@pytest.fixture(scope="session")
def ring2():
    """The two-process ring M_2 (Fig. 5.1)."""
    return token_ring.build_token_ring(2)


@pytest.fixture(scope="session")
def ring3():
    """The three-process ring M_3 (the corrected base case)."""
    return token_ring.build_token_ring(3)


@pytest.fixture(scope="session")
def ring4():
    """The four-process ring M_4."""
    return token_ring.build_token_ring(4)


@pytest.fixture(scope="session")
def ring5():
    """The five-process ring M_5."""
    return token_ring.build_token_ring(5)
