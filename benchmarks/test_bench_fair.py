"""Head-to-head: fair-CTL checking, bitset vs. naive (and the symbolic engine).

The fairness-constrained liveness family (``AF t_i`` per process plus the
``∧_i AF t_i`` conjunction) is checked on token rings under per-process
scheduler fairness with both explicit engines, exercising the two
SCC-restricted fair-``EG`` fixpoints the engines implement independently.
Checker construction is inside the measured region but the compiled form is
memoised on the session-fixture structure, so the steady-state numbers
measure fair *checking* throughput.  ``test_fair_symbolic_direct_ring8``
runs the Emerson–Lei fixpoint on a direct BDD encoding beyond the
explicit-benchmark sizes.  Every benchmark publishes its parameters through
``extra_info`` into the ``BENCH_*.json`` artifact flow.

The smoke-marked pair at ring size 4 is the CI fair-EG head-to-head; the
speedup guard at size 6 keeps the bitset engine honest — fair checking must
stay ahead of the naive oracle just like plain checking does.
"""

import time

import pytest

from repro.mc import ICTLStarModelChecker
from repro.systems import token_ring

ENGINES = ("bitset", "naive")


def _check_fair_family(structure, engine, size):
    constraint = token_ring.ring_scheduler_fairness(size)
    checker = ICTLStarModelChecker(structure, engine=engine, fairness=constraint)
    return checker.check_batch(token_ring.fair_ring_properties())


@pytest.mark.bench_smoke
@pytest.mark.parametrize("engine", ENGINES)
def test_fair_liveness_ring4(benchmark, ring4, engine):
    benchmark.group = "fair-eg-ring4"
    benchmark.extra_info["n"] = 4
    benchmark.extra_info["states"] = ring4.num_states
    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["fairness_conditions"] = 4
    results = benchmark(_check_fair_family, ring4, engine, 4)
    assert all(results.values())


@pytest.mark.parametrize("engine", ENGINES)
def test_fair_liveness_ring6(benchmark, ring6, engine):
    benchmark.group = "fair-eg-ring6"
    benchmark.extra_info["n"] = 6
    benchmark.extra_info["states"] = ring6.num_states
    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["fairness_conditions"] = 6
    results = benchmark(_check_fair_family, ring6, engine, 6)
    assert all(results.values())


@pytest.mark.bench_smoke
def test_fair_symbolic_direct_ring8(benchmark):
    benchmark.group = "fair-eg-symbolic"
    benchmark.extra_info["n"] = 8
    benchmark.extra_info["engine"] = "bdd"
    benchmark.extra_info["fairness_conditions"] = 8

    def run():
        from repro.mc import SymbolicCTLModelChecker

        encoded = token_ring.symbolic_token_ring(8)
        checker = SymbolicCTLModelChecker(
            encoded, fairness=token_ring.ring_scheduler_fairness(8)
        )
        return checker.check(token_ring.property_eventual_token())

    benchmark.extra_info["states"] = 8 * 2 ** 8
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result


def test_fair_bitset_beats_naive_at_ring6(ring6):
    """Speedup guard: the bitset fair-EG must stay well ahead of the naive one."""

    def wall(engine):
        start = time.perf_counter()
        results = _check_fair_family(ring6, engine, 6)
        assert all(results.values())
        return time.perf_counter() - start

    # Warm the shared compilation so both engines measure checking only.
    wall("bitset")
    fast = min(wall("bitset") for _ in range(3))
    slow = min(wall("naive") for _ in range(3))
    assert fast < slow, "fair bitset checking (%.4fs) not faster than naive (%.4fs)" % (
        fast,
        slow,
    )
