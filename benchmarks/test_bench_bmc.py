"""Head-to-head: SAT-based bounded model checking vs. the symbolic BDD engine.

Two workloads over the direct token-ring encodings at ``r ∈ {8, 12, 16}``:

* **time-to-counterexample** on the seeded-bug ring (the token-duplication
  rule, which breaks ``AG Θ_i t_i`` two transitions from the initial state)
  — the BDD engine pays for reachable-set construction before its ``EF``
  fixpoint can refute, while the BMC engine unrolls the same clustered
  relation parts into an incremental CDCL solver and stops at depth 2;
* **k-induction proof time** for the true one-token invariant on the
  correct ring, on the *free* domain (no reachability fixpoint anywhere) —
  the invariant is 1-inductive, so this measures one unrolling plus two SAT
  calls per size.

Every benchmark publishes the verdict provenance, counterexample depth and
SAT statistics (conflicts/decisions/propagations) through ``extra_info``
into the ``BENCH_*.json`` artifact flow, so future PRs can diff the BMC
engine's trajectory exactly like the symbolic core's.  The ``r = 8`` points
are in the CI ``bench_smoke`` subset.

``test_bmc_counterexample_matches_bitset_oracle`` is the correctness guard:
the decoded SAT counterexample must be a genuine path of the explicit buggy
ring, end in a violating state, and have the same (minimal) depth as the
bitset engine's BFS counterexample.
"""

import pytest

from repro.kripke.paths import is_path
from repro.logic.builders import exactly_one
from repro.mc import BoundedModelChecker, SymbolicCTLModelChecker, counterexample_ag
from repro.systems import mutex, token_ring

_SIZES = [
    pytest.param(8, marks=pytest.mark.bench_smoke),
    12,
    16,
]

#: Falsification depth cap — the seeded bugs sit at depth 2 (ring) / 4
#: (mutex), so this is generous headroom, not a tuning knob.
_BOUND = 8


def _bdd_falsify(size):
    structure = token_ring.symbolic_token_ring(size, buggy=True)
    verdict = SymbolicCTLModelChecker(structure).check(token_ring.invariant_one_token())
    return structure, verdict


def _bmc_falsify(size):
    structure = token_ring.symbolic_token_ring(size, buggy=True, domain="free")
    checker = BoundedModelChecker(structure, bound=_BOUND)
    verdict = checker.check(token_ring.invariant_one_token())
    return checker, verdict


def _bmc_prove(size):
    structure = token_ring.symbolic_token_ring(size, domain="free")
    checker = BoundedModelChecker(structure, bound=_BOUND)
    verdict = checker.check(token_ring.invariant_one_token())
    return checker, verdict


@pytest.mark.parametrize("size", _SIZES)
def test_bdd_falsification_buggy_ring(benchmark, size):
    """BDD end-to-end time-to-counterexample (build + reachability + EF fixpoint)."""
    benchmark.group = "falsify-buggy-ring-r%d" % size
    benchmark.extra_info["n"] = size
    benchmark.extra_info["engine"] = "bdd"
    structure, verdict = benchmark.pedantic(_bdd_falsify, args=(size,), rounds=1, iterations=1)
    benchmark.extra_info["states"] = structure.num_states
    benchmark.extra_info["peak_live_nodes"] = structure.manager.stats().peak_live_nodes
    assert not verdict


@pytest.mark.parametrize("size", _SIZES)
def test_bmc_falsification_buggy_ring(benchmark, size):
    """BMC end-to-end time-to-counterexample (build, no fixpoint + SAT per depth)."""
    benchmark.group = "falsify-buggy-ring-r%d" % size
    benchmark.extra_info["n"] = size
    benchmark.extra_info["engine"] = "bmc"
    checker, verdict = benchmark.pedantic(_bmc_falsify, args=(size,), rounds=1, iterations=1)
    assert not verdict
    assert checker.last_counterexample is not None
    depth = len(checker.last_counterexample) - 1
    stats = checker.stats()
    benchmark.extra_info["counterexample_depth"] = depth
    benchmark.extra_info["sat_conflicts"] = stats["conflicts"]
    benchmark.extra_info["sat_decisions"] = stats["decisions"]
    benchmark.extra_info["sat_propagations"] = stats["propagations"]
    assert depth == 2  # delay one process, let it jump the token queue


@pytest.mark.parametrize("size", _SIZES)
def test_kinduction_proof_one_token(benchmark, size):
    """k-induction proves ``AG Θ_i t_i`` on the free domain — no bound ceiling, no fixpoint."""
    benchmark.group = "kinduction-one-token"
    benchmark.extra_info["n"] = size
    benchmark.extra_info["engine"] = "bmc"
    checker, verdict = benchmark.pedantic(_bmc_prove, args=(size,), rounds=1, iterations=1)
    assert verdict
    assert checker.last_detail == "proved by 1-induction"
    stats = checker.stats()
    benchmark.extra_info["detail"] = checker.last_detail
    benchmark.extra_info["sat_conflicts"] = stats["conflicts"]
    benchmark.extra_info["sat_propagations"] = stats["propagations"]


@pytest.mark.bench_smoke
def test_bmc_falsification_buggy_mutex(benchmark):
    """The seeded test-and-set race in mutex(10): found at depth 4 by BMC."""
    size = 10
    benchmark.group = "falsify-buggy-mutex"
    benchmark.extra_info["n"] = size
    benchmark.extra_info["engine"] = "bmc"

    def falsify():
        structure = mutex.symbolic_mutex(size, buggy=True, domain="free")
        checker = BoundedModelChecker(structure, bound=_BOUND)
        return checker, checker.check(mutex.mutex_safety(size))

    checker, verdict = benchmark.pedantic(falsify, rounds=1, iterations=1)
    assert not verdict
    depth = len(checker.last_counterexample) - 1
    benchmark.extra_info["counterexample_depth"] = depth
    assert depth == 4  # request, acquire, request, buggy acquire


@pytest.mark.bench_smoke
def test_bmc_counterexample_matches_bitset_oracle(benchmark):
    """Correctness guard at r=6: decoded SAT path == a real minimal counterexample."""
    size = 6
    benchmark.group = "bmc-oracle-crosscheck"
    benchmark.extra_info["n"] = size
    explicit = token_ring.build_token_ring(size, buggy=True)

    def bmc_path():
        structure = token_ring.symbolic_token_ring(size, buggy=True, domain="free")
        checker = BoundedModelChecker(structure, bound=_BOUND)
        return checker.invariant_counterexample(exactly_one("t"))

    path = benchmark.pedantic(bmc_path, rounds=1, iterations=1)
    assert path is not None
    assert path[0] == explicit.initial_state
    assert is_path(explicit, path)
    assert not explicit.atom_holds(path[-1], exactly_one("t"))
    oracle = counterexample_ag(explicit, exactly_one("t"), engine="bitset")
    assert oracle is not None
    assert len(path) == len(oracle)
    benchmark.extra_info["depth"] = len(path) - 1
