"""Sanitizer overhead guard: disabled hooks must cost < 5%.

The sanitizer contract (``docs/CORRECTNESS.md``) mirrors the tracing
one: a hook site left disabled is one module-global load and a falsy
test, cheap enough for the BDD manager and the CDCL solver to carry
permanently at their stable points.  Same product-form measurement as
``test_bench_obs.py``:

1. run the ``r = 10`` symbolic property sweep in count-only mode
   (``MODE == 2``) to count how many times the hooks actually fire;
2. measure the per-call cost of a disabled hook site in a tight loop;
3. assert that (firings × per-call cost) stays under 5% of the sweep's
   wall-clock time.

Comparing two full sweep timings at a 5% threshold would flake on
machine noise; the firing count and the nanosecond-scale site cost are
both stable.
"""

import time

import pytest

import repro.bdd.sanitize as bdd_sanitize
import repro.sat.sanitize as sat_sanitize
from repro.mc import SymbolicCTLModelChecker
from repro.systems import token_ring

#: The acceptance threshold: disabled sanitizing < 5% of the sweep.
_MAX_OVERHEAD_FRACTION = 0.05

#: Ring size of the guarded sweep (matches the obs-overhead guard).
_SWEEP_SIZE = 10


def _run_sweep():
    structure = token_ring.symbolic_token_ring(_SWEEP_SIZE)
    checker = SymbolicCTLModelChecker(structure)
    verdicts = checker.check_batch(token_ring.ring_properties())
    assert all(verdicts.values())


def _count_sweep_hook_firings() -> int:
    before = (bdd_sanitize.CALLS, sat_sanitize.CALLS)
    previous = (bdd_sanitize.MODE, sat_sanitize.MODE)
    bdd_sanitize.MODE = sat_sanitize.MODE = 2
    try:
        _run_sweep()
    finally:
        bdd_sanitize.MODE, sat_sanitize.MODE = previous
    return (bdd_sanitize.CALLS - before[0]) + (sat_sanitize.CALLS - before[1])


def _disabled_hook_cost_ns(calls: int = 200_000) -> float:
    # The same shape as the inline sites in BDDManager/Solver: one
    # module-global load and a falsy test, nothing else.
    assert not bdd_sanitize.enabled() and not sat_sanitize.enabled()
    probe = object()
    start = time.perf_counter_ns()
    for _ in range(calls):
        if bdd_sanitize.MODE:
            bdd_sanitize.maybe_check_manager(probe)  # pragma: no cover
    return (time.perf_counter_ns() - start) / calls


def _run_bmc_proof():
    from repro.mc.bmc import BoundedModelChecker
    from repro.systems import mutex

    checker = BoundedModelChecker(mutex.build_mutex(2), bound=10)
    assert checker.check(mutex.mutex_safety(2))


@pytest.mark.bench_smoke
def test_disabled_sanitizer_overhead_under_5_percent_on_r10_sweep(benchmark):
    benchmark.group = "sanitize-overhead"
    benchmark.extra_info["n"] = _SWEEP_SIZE

    hook_count = _count_sweep_hook_firings()

    per_call_ns = _disabled_hook_cost_ns()

    assert not bdd_sanitize.enabled() and not sat_sanitize.enabled()
    start = time.perf_counter_ns()
    benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    sweep_ns = time.perf_counter_ns() - start

    worst_case_overhead_ns = hook_count * per_call_ns
    fraction = worst_case_overhead_ns / sweep_ns
    benchmark.extra_info["hook_count"] = hook_count
    benchmark.extra_info["disabled_hook_cost_ns"] = round(per_call_ns, 2)
    benchmark.extra_info["overhead_fraction"] = round(fraction, 6)
    assert fraction < _MAX_OVERHEAD_FRACTION, (
        "disabled-sanitizer worst case %.3f%% of the r=%d sweep (%d hook "
        "firings at %.0fns each over %.0fms)"
        % (
            100 * fraction,
            _SWEEP_SIZE,
            hook_count,
            per_call_ns,
            sweep_ns / 1e6,
        )
    )
    # The pure-symbolic sweep may fire no hooks at all (no GC pressure,
    # no SAT) — then the overhead is genuinely zero, but keep the
    # per-site cost itself honest so the guard never goes vacuous.
    assert per_call_ns < 2_000, (
        "a disabled sanitizer hook site costs %.0fns" % per_call_ns
    )


@pytest.mark.bench_smoke
def test_disabled_sanitizer_overhead_under_5_percent_on_sat_proof(benchmark):
    """The same product-form guard on a workload whose hooks really fire.

    A k-induction mutex proof calls ``solve()`` repeatedly, so the SAT
    hook count is non-zero and the measured fraction is a real bound,
    not ``0 × cost``.
    """
    benchmark.group = "sanitize-overhead"

    before = sat_sanitize.CALLS
    previous = (bdd_sanitize.MODE, sat_sanitize.MODE)
    bdd_sanitize.MODE = sat_sanitize.MODE = 2
    try:
        _run_bmc_proof()
    finally:
        bdd_sanitize.MODE, sat_sanitize.MODE = previous
    hook_count = sat_sanitize.CALLS - before
    assert hook_count > 0, "the BMC proof should hit the solve() hook"

    per_call_ns = _disabled_hook_cost_ns()

    assert not sat_sanitize.enabled()
    start = time.perf_counter_ns()
    benchmark.pedantic(_run_bmc_proof, rounds=1, iterations=1)
    proof_ns = time.perf_counter_ns() - start

    fraction = hook_count * per_call_ns / proof_ns
    benchmark.extra_info["hook_count"] = hook_count
    benchmark.extra_info["disabled_hook_cost_ns"] = round(per_call_ns, 2)
    benchmark.extra_info["overhead_fraction"] = round(fraction, 6)
    assert fraction < _MAX_OVERHEAD_FRACTION, (
        "disabled-sanitizer worst case %.3f%% of the BMC mutex proof "
        "(%d hook firings at %.0fns each over %.0fms)"
        % (100 * fraction, hook_count, per_call_ns, proof_ns / 1e6)
    )
