"""E8 — state explosion vs. correspondence-based verification (the "1000 processes" claim).

Measures how direct construction/checking of M_r grows with r, the constant
cost of checking the base instance, and the on-the-fly spot check of the large
(r = 1000) ring that never builds its global state graph.  The direct checks
run on the compiled bitset engine (the library default); see
``test_bench_engines.py`` for the head-to-head against the naive oracle.
"""

import pytest

from repro.analysis.explosion import sample_large_ring_correspondence, token_ring_explosion_sweep
from repro.mc import ICTLStarModelChecker
from repro.systems import token_ring


@pytest.mark.parametrize("size", [2, 3, 4, 5, 6])
def test_e8_direct_checking_grows_with_size(benchmark, size):
    structure = token_ring.build_token_ring(size)
    benchmark.extra_info["n"] = size
    benchmark.extra_info["states"] = structure.num_states
    benchmark.extra_info["transitions"] = structure.num_transitions

    def check_all():
        checker = ICTLStarModelChecker(structure)
        return all(checker.check_batch(token_ring.ring_properties()).values())

    assert benchmark(check_all) is True


def test_e8_build_cost_sweep(benchmark):
    points = benchmark(token_ring_explosion_sweep, [2, 3, 4, 5])
    sizes = [point.num_states for point in points]
    benchmark.extra_info["states"] = sizes[-1]
    assert sizes == sorted(sizes)
    assert sizes[-1] > 10 * sizes[0]


@pytest.mark.bench_smoke
def test_e8_base_instance_check_is_small(benchmark, ring3):
    benchmark.extra_info["n"] = 3
    benchmark.extra_info["states"] = ring3.num_states

    def check_base():
        checker = ICTLStarModelChecker(ring3)
        return checker.check_batch(token_ring.ring_properties())

    results = benchmark(check_base)
    assert all(results.values())


def test_e8_large_ring_spot_check_without_building_it(benchmark):
    benchmark.extra_info["n"] = 1000
    counters = benchmark(sample_large_ring_correspondence, 1000, 5, 20, 7)
    assert counters["visited"] == counters["paired"] == counters["partition_ok"]
