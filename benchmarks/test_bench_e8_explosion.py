"""E8 — state explosion vs. correspondence-based verification (the "1000 processes" claim).

Measures how direct construction/checking of M_r grows with r, the constant
cost of checking the base instance, and the on-the-fly spot check of the large
(r = 1000) ring that never builds its global state graph.
"""

import pytest

from repro.analysis.explosion import sample_large_ring_correspondence, token_ring_explosion_sweep
from repro.mc import ICTLStarModelChecker
from repro.systems import token_ring


@pytest.mark.parametrize("size", [2, 3, 4, 5, 6])
def test_e8_direct_checking_grows_with_size(benchmark, size):
    structure = token_ring.build_token_ring(size)

    def check_all():
        checker = ICTLStarModelChecker(structure)
        return all(
            checker.check(formula) for formula in token_ring.ring_properties().values()
        )

    assert benchmark(check_all) is True


def test_e8_build_cost_sweep(benchmark):
    points = benchmark(token_ring_explosion_sweep, [2, 3, 4, 5])
    sizes = [point.num_states for point in points]
    assert sizes == sorted(sizes)
    assert sizes[-1] > 10 * sizes[0]


def test_e8_base_instance_check_is_small(benchmark, ring3):
    def check_base():
        checker = ICTLStarModelChecker(ring3)
        return {
            name: checker.check(formula)
            for name, formula in token_ring.ring_properties().items()
        }

    results = benchmark(check_base)
    assert all(results.values())


def test_e8_large_ring_spot_check_without_building_it(benchmark):
    counters = benchmark(
        sample_large_ring_correspondence, 1000, 5, 20, 7
    )
    assert counters["visited"] == counters["paired"] == counters["partition_ok"]
