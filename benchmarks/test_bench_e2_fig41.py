"""E2 — Fig. 4.1: the counting formula and the ICTL* restrictions.

Regenerates the paper's motivation for restricting ICTL*: the nested counting
formula with ``m`` levels of ``∨_i`` holds exactly on networks with at least
``m`` processes (so it can count), while depth-one formulas are restricted and
cannot.
"""

from repro.analysis import experiments
from repro.mc import ICTLStarModelChecker
from repro.systems import figures


def test_e2_fig41_counting_table(benchmark):
    report = benchmark(experiments.run_e2_fig41, 4)
    assert report["counting_matches_size"]
    assert report["depth1_is_restricted"]
    assert report["nested_formula_rejected_by_restrictions"]


def test_e2_fig41_depth3_on_four_processes(benchmark):
    network = figures.fig41_network(4)
    checker = ICTLStarModelChecker(network, enforce_restrictions=False)
    formula = figures.fig41_counting_formula(3)
    result = benchmark(checker.check, formula)
    assert result is True
