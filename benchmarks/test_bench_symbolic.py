"""Head-to-head: the symbolic BDD engine vs. the compiled bitset engine.

Two regimes are measured.  Inside the explicit range (``r ≤ 6``) both engines
check the full Section 5 property family on the same ring, with the symbolic
engine running on the *direct* BDD encoding (the explicit product is never
built for it).  Beyond the explicit wall (``r ≥ 10``, sizes the explicit
sweep cannot reach in benchmark time) only the symbolic engine runs; its
rounds are pinned to 1 so the tier-1 suite stays fast.  Every benchmark
publishes exact state counts — BDD satisfy-counts for the symbolic runs —
through ``extra_info`` into the ``BENCH_*.json`` artifact flow.

``test_symbolic_matches_bitset_at_overlap`` is the correctness guard: at a
size where both engines run, the symbolic verdicts (properties *and*
invariants, including the ``Θ`` one-token invariant) must equal the bitset
engine's.
"""

import pytest

from repro.analysis.explosion import symbolic_token_ring_explosion_sweep
from repro.mc import ICTLStarModelChecker, SymbolicCTLModelChecker
from repro.systems import token_ring


def _check_symbolic_direct(size):
    structure = token_ring.symbolic_token_ring(size)
    checker = SymbolicCTLModelChecker(structure)
    return checker.check_batch(token_ring.ring_properties())


def _check_bitset_explicit(structure):
    checker = ICTLStarModelChecker(structure, engine="bitset")
    return checker.check_batch(token_ring.ring_properties())


@pytest.mark.bench_smoke
def test_symbolic_direct_ring4(benchmark, ring4):
    benchmark.group = "symbolic-vs-bitset-ring4"
    benchmark.extra_info["n"] = 4
    benchmark.extra_info["engine"] = "bdd"
    benchmark.extra_info["states"] = ring4.num_states
    results = benchmark(_check_symbolic_direct, 4)
    assert all(results.values())


@pytest.mark.bench_smoke
def test_bitset_explicit_ring4(benchmark, ring4):
    benchmark.group = "symbolic-vs-bitset-ring4"
    benchmark.extra_info["n"] = 4
    benchmark.extra_info["engine"] = "bitset"
    benchmark.extra_info["states"] = ring4.num_states
    results = benchmark(_check_bitset_explicit, ring4)
    assert all(results.values())


def test_symbolic_direct_ring6(benchmark, ring6):
    benchmark.group = "symbolic-vs-bitset-ring6"
    benchmark.extra_info["n"] = 6
    benchmark.extra_info["engine"] = "bdd"
    benchmark.extra_info["states"] = ring6.num_states
    results = benchmark(_check_symbolic_direct, 6)
    assert all(results.values())


def test_bitset_explicit_ring6(benchmark, ring6):
    benchmark.group = "symbolic-vs-bitset-ring6"
    benchmark.extra_info["n"] = 6
    benchmark.extra_info["engine"] = "bitset"
    benchmark.extra_info["states"] = ring6.num_states
    results = benchmark(_check_bitset_explicit, ring6)
    assert all(results.values())


@pytest.mark.parametrize("size", [10, 12])
def test_symbolic_explosion_beyond_explicit_range(benchmark, size):
    """Check rings the explicit engines cannot reach; verdicts must all hold.

    One round per size: the point is the capability (and a tracked wall
    time), not a statistically tight distribution — the tier-1 suite runs
    the benchmarks too, so repetition would dominate its runtime.
    """
    benchmark.group = "symbolic-explosion"
    benchmark.extra_info["n"] = size
    benchmark.extra_info["engine"] = "bdd"

    def sweep_point():
        [point] = symbolic_token_ring_explosion_sweep([size])
        return point

    point = benchmark.pedantic(sweep_point, rounds=1, iterations=1)
    benchmark.extra_info["states"] = point.num_states
    benchmark.extra_info["transitions"] = point.num_transitions
    benchmark.extra_info["bdd_nodes"] = point.bdd_nodes
    assert all(point.results.values())
    # Reachable states of M_r: the holder is any of r processes in T or C and
    # every other process is independently in N or D, giving r * 2^r states.
    assert point.num_states == size * 2 ** size


@pytest.mark.bench_smoke
def test_symbolic_matches_bitset_at_overlap(ring5):
    """At r=5 (explicit range) the symbolic verdicts must match the bitset ones."""
    family = {**token_ring.ring_properties(), **token_ring.ring_invariants()}
    explicit = ICTLStarModelChecker(ring5, engine="bitset").check_batch(family)
    symbolic = SymbolicCTLModelChecker(token_ring.symbolic_token_ring(5)).check_batch(family)
    assert symbolic == explicit
