"""Head-to-head: the symbolic BDD engine vs. the bitset engine and its old self.

Three regimes are measured.  Inside the explicit range (``r ≤ 6``) the
symbolic and bitset engines check the full Section 5 property family on the
same ring, with the symbolic engine running on the *direct* BDD encoding
(the explicit product is never built for it).  Beyond the explicit wall
(``r ≥ 12`` up to ``r = 20`` — twenty million reachable states) only the
symbolic engine runs; rounds are pinned to 1 so the tier-1 suite stays fast.
Finally, the PR-4 complement-edge core races the frozen pre-PR-4 engine
snapshot (``_legacy_bdd``) on the same machine: ``test_new_core_speedup_vs_
legacy_r12`` enforces the ≥ 3× speedup guard on the headline properties, and
the explosion runs enforce peak-live-node regression ceilings.  Every
benchmark publishes exact state counts and peak node counts through
``extra_info`` into the ``BENCH_*.json`` artifact flow.

``test_symbolic_matches_bitset_at_overlap`` is the correctness guard: at a
size where both engines run, the symbolic verdicts (properties *and*
invariants, including the ``Θ`` one-token invariant) must equal the bitset
engine's.
"""

import time

import pytest

from repro.analysis.explosion import symbolic_token_ring_explosion_sweep
from repro.mc import ICTLStarModelChecker, SymbolicCTLModelChecker
from repro.systems import token_ring

#: Peak-live-node regression ceilings for the explosion sweep (the new core
#: peaks at ~65k/~430k on these sizes; the old core allocated 158k nodes at
#: r=12 without ever freeing one).
_PEAK_NODE_CEILING = {12: 170_000, 16: 450_000, 20: 1_000_000}

#: The speedup guard's floor: new core vs. the pre-PR-4 snapshot at r=12.
_SPEEDUP_FLOOR = 3.0

#: Secondary floor on the end-to-end batch (build + all properties); slightly
#: looser than the per-property median so timer noise on the sub-second new
#: core cannot flake the job.
_TOTAL_SPEEDUP_FLOOR = 2.5


def _check_symbolic_direct(size):
    structure = token_ring.symbolic_token_ring(size)
    checker = SymbolicCTLModelChecker(structure)
    return checker.check_batch(token_ring.ring_properties())


def _check_bitset_explicit(structure):
    checker = ICTLStarModelChecker(structure, engine="bitset")
    return checker.check_batch(token_ring.ring_properties())


@pytest.mark.bench_smoke
def test_symbolic_direct_ring4(benchmark, ring4):
    benchmark.group = "symbolic-vs-bitset-ring4"
    benchmark.extra_info["n"] = 4
    benchmark.extra_info["engine"] = "bdd"
    benchmark.extra_info["states"] = ring4.num_states
    results = benchmark(_check_symbolic_direct, 4)
    assert all(results.values())


@pytest.mark.bench_smoke
def test_bitset_explicit_ring4(benchmark, ring4):
    benchmark.group = "symbolic-vs-bitset-ring4"
    benchmark.extra_info["n"] = 4
    benchmark.extra_info["engine"] = "bitset"
    benchmark.extra_info["states"] = ring4.num_states
    results = benchmark(_check_bitset_explicit, ring4)
    assert all(results.values())


def test_symbolic_direct_ring6(benchmark, ring6):
    benchmark.group = "symbolic-vs-bitset-ring6"
    benchmark.extra_info["n"] = 6
    benchmark.extra_info["engine"] = "bdd"
    benchmark.extra_info["states"] = ring6.num_states
    results = benchmark(_check_symbolic_direct, 6)
    assert all(results.values())


def test_bitset_explicit_ring6(benchmark, ring6):
    benchmark.group = "symbolic-vs-bitset-ring6"
    benchmark.extra_info["n"] = 6
    benchmark.extra_info["engine"] = "bitset"
    benchmark.extra_info["states"] = ring6.num_states
    results = benchmark(_check_bitset_explicit, ring6)
    assert all(results.values())


@pytest.mark.parametrize(
    "size",
    [
        pytest.param(12, marks=pytest.mark.bench_smoke),
        16,
        pytest.param(20, marks=pytest.mark.bench_smoke),
    ],
)
def test_symbolic_explosion_beyond_explicit_range(benchmark, size):
    """Check rings the explicit engines cannot reach; verdicts must all hold.

    One round per size: the point is the capability (and a tracked wall
    time), not a statistically tight distribution — the tier-1 suite runs
    the benchmarks too, so repetition would dominate its runtime.  The peak
    live node count is pinned under a per-size regression ceiling so memory
    blow-ups in the symbolic core fail CI even when the wall time squeaks by.
    """
    benchmark.group = "symbolic-explosion"
    benchmark.extra_info["n"] = size
    benchmark.extra_info["engine"] = "bdd"

    def sweep_point():
        [point] = symbolic_token_ring_explosion_sweep([size])
        return point

    point = benchmark.pedantic(sweep_point, rounds=1, iterations=1)
    benchmark.extra_info["states"] = point.num_states
    benchmark.extra_info["transitions"] = point.num_transitions
    benchmark.extra_info["bdd_nodes"] = point.bdd_nodes
    benchmark.extra_info["peak_live_nodes"] = point.peak_nodes
    assert all(point.results.values())
    # Reachable states of M_r: the holder is any of r processes in T or C and
    # every other process is independently in N or D, giving r * 2^r states.
    assert point.num_states == size * 2 ** size
    assert point.peak_nodes <= _PEAK_NODE_CEILING[size], (
        "peak live nodes regressed past the ceiling: %d > %d"
        % (point.peak_nodes, _PEAK_NODE_CEILING[size])
    )


@pytest.mark.bench_smoke
def test_fair_af_family_r20(benchmark):
    """The fairness-dependent ``∧_i AF t_i`` family at r = 20.

    The unfair claim must fail and the claim under per-process scheduler
    fairness must hold, decided by the optimised Emerson–Lei fixpoint on a
    twenty-million-state ring — far beyond every explicit engine.
    """
    size = 20
    benchmark.group = "symbolic-fairness-r20"
    benchmark.extra_info["n"] = size
    benchmark.extra_info["engine"] = "bdd"
    benchmark.extra_info["fairness_conditions"] = size
    formula = token_ring.property_eventual_token()

    def fair_and_unfair():
        structure = token_ring.symbolic_token_ring(size)
        unfair = SymbolicCTLModelChecker(structure).check(formula)
        fair = SymbolicCTLModelChecker(
            structure, fairness=token_ring.ring_scheduler_fairness(size)
        ).check(formula)
        return structure, unfair, fair

    structure, unfair, fair = benchmark.pedantic(fair_and_unfair, rounds=1, iterations=1)
    stats = structure.manager.stats()
    benchmark.extra_info["states"] = structure.num_states
    benchmark.extra_info["peak_live_nodes"] = stats.peak_live_nodes
    assert not unfair and fair
    assert stats.peak_live_nodes <= _PEAK_NODE_CEILING[size]


@pytest.mark.bench_smoke
def test_new_core_speedup_vs_legacy_r12(benchmark):
    """The ≥ 3× guard: new symbolic core vs. the frozen pre-PR-4 engine.

    Both engines build the direct r=12 encoding and check the four headline
    Section 5 properties on the *same machine*, which keeps the guard
    meaningful across heterogeneous CI runners.  The guarded ratio is the
    median per-property speedup over the properties with measurable legacy
    cost (the two sub-millisecond safety properties are pure timer noise),
    and the end-to-end batch must clear the same floor.
    """
    from _legacy_bdd import LegacySymbolicRing

    size = 12
    properties = token_ring.ring_properties()

    def run_legacy():
        ring = LegacySymbolicRing(size)
        times = {}
        for name, formula in properties.items():
            start = time.perf_counter()
            assert ring.check(formula), name
            times[name] = time.perf_counter() - start
        return times

    def run_new():
        structure = token_ring.symbolic_token_ring(size)
        checker = SymbolicCTLModelChecker(structure)
        times = {}
        for name, formula in properties.items():
            start = time.perf_counter()
            assert checker.check(formula), name
            times[name] = time.perf_counter() - start
        return structure, times

    legacy_start = time.perf_counter()
    legacy_times = run_legacy()
    legacy_total = time.perf_counter() - legacy_start

    def timed_new():
        return run_new()

    new_start = time.perf_counter()
    structure, new_times = benchmark.pedantic(timed_new, rounds=1, iterations=1)
    new_total = time.perf_counter() - new_start

    ratios = {
        name: legacy_times[name] / max(new_times[name], 1e-9)
        for name in properties
        if legacy_times[name] >= 0.05
    }
    ordered = sorted(ratios.values())
    median_ratio = (
        ordered[len(ordered) // 2]
        if len(ordered) % 2
        else (ordered[len(ordered) // 2 - 1] + ordered[len(ordered) // 2]) / 2
    )
    total_ratio = legacy_total / max(new_total, 1e-9)
    benchmark.group = "new-core-vs-legacy-r12"
    benchmark.extra_info["n"] = size
    benchmark.extra_info["legacy_seconds"] = round(legacy_total, 4)
    benchmark.extra_info["new_seconds"] = round(new_total, 4)
    benchmark.extra_info["median_property_speedup"] = round(median_ratio, 2)
    benchmark.extra_info["total_speedup"] = round(total_ratio, 2)
    benchmark.extra_info["peak_live_nodes"] = structure.manager.stats().peak_live_nodes
    assert ratios, "no property had measurable legacy cost — guard is vacuous"
    assert median_ratio >= _SPEEDUP_FLOOR, (
        "median speedup over the pre-PR-4 engine regressed: %.2fx < %.1fx"
        % (median_ratio, _SPEEDUP_FLOOR)
    )
    assert total_ratio >= _TOTAL_SPEEDUP_FLOOR, (
        "end-to-end speedup over the pre-PR-4 engine regressed: %.2fx < %.1fx"
        % (total_ratio, _TOTAL_SPEEDUP_FLOOR)
    )


@pytest.mark.bench_smoke
def test_symbolic_matches_bitset_at_overlap(ring5):
    """At r=5 (explicit range) the symbolic verdicts must match the bitset ones."""
    family = {**token_ring.ring_properties(), **token_ring.ring_invariants()}
    explicit = ICTLStarModelChecker(ring5, engine="bitset").check_batch(family)
    symbolic = SymbolicCTLModelChecker(token_ring.symbolic_token_ring(5)).check_batch(family)
    assert symbolic == explicit
