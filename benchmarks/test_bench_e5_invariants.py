"""E5 — the Section 5 invariants across ring sizes.

The partition invariant, the request-persistence invariant, and the
exactly-one-token invariant hold on every ring size checked.
"""

from repro.analysis import experiments
from repro.mc import ICTLStarModelChecker
from repro.systems import token_ring


def test_e5_invariant_sweep(benchmark):
    report = benchmark(experiments.run_e5_invariants, (2, 3, 4))
    assert report["all_hold"]


def test_e5_one_token_on_m4(benchmark, ring4):
    checker = ICTLStarModelChecker(ring4)
    assert benchmark(checker.check, token_ring.invariant_one_token()) is True


def test_e5_request_persistence_on_m4(benchmark, ring4):
    checker = ICTLStarModelChecker(ring4)
    assert benchmark(checker.check, token_ring.invariant_request_persistence()) is True
