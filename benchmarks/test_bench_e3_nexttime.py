"""E3 — the Section 2 next-time counting example.

``AG(t_1 ⇒ XXX t_1)`` on the circulating-token ring holds exactly when the
ring size divides three — the reason the paper's CTL* omits the next-time
operator.
"""

from repro.analysis import experiments
from repro.mc import ICTLStarModelChecker
from repro.systems import figures


def test_e3_nexttime_counting_sweep(benchmark):
    report = benchmark(experiments.run_e3_nexttime, (1, 2, 3, 4, 5, 6))
    assert report["holds_only_when_size_divides_3"]
    assert report["holds"][3] is True
    assert report["holds"][4] is False


def test_e3_nexttime_on_the_three_ring(benchmark):
    ring = figures.circulating_token_ring(3)
    checker = ICTLStarModelChecker(ring, enforce_restrictions=False)
    formula = figures.nexttime_counting_formula(3)
    assert benchmark(checker.check, formula) is True
