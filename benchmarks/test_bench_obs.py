"""Observability overhead guard: disabled tracing must cost < 5%.

The instrumentation contract (``docs/OBSERVABILITY.md``) is that a span
site left disabled costs one module-global load, one ``is None`` test,
and a no-op context manager — cheap enough that the engines can carry
spans in their fixpoint loops permanently.  This file *measures* that
claim on the headline symbolic workload instead of trusting it:

1. run the ``r = 10`` direct-encoding BDD property sweep once with a
   recording tracer to count how many span entries the workload
   actually produces;
2. measure the per-call cost of a disabled ``span()`` site in a tight
   loop;
3. assert that (spans × per-call cost) stays under 5% of the sweep's
   wall-clock time — the worst-case share instrumentation could claim.

The product form is deliberate: comparing two full sweep timings
against each other at a 5% threshold would flake on machine noise,
while the span count and the nanosecond-scale per-call cost are both
stable.
"""

import hashlib
import pickle
import time

import pytest

from repro.mc import SymbolicCTLModelChecker
from repro.obs.collect import (
    TELEMETRY_BATCH_SPANS,
    TelemetryCollector,
    TraceContext,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import MemorySink
from repro.obs.trace import disable, enable, is_enabled, recording, span
from repro.systems import token_ring

#: The acceptance threshold: disabled instrumentation < 5% of the sweep.
_MAX_OVERHEAD_FRACTION = 0.05

#: Ring size of the guarded sweep (beyond the explicit engines' range).
_SWEEP_SIZE = 10


def _run_sweep():
    structure = token_ring.symbolic_token_ring(_SWEEP_SIZE)
    checker = SymbolicCTLModelChecker(structure)
    verdicts = checker.check_batch(token_ring.ring_properties())
    assert all(verdicts.values())


def _count_sweep_spans() -> int:
    sink = MemorySink()
    with recording(sinks=[sink]):
        _run_sweep()
    return len(sink.spans) + len(sink.events)


def _disabled_span_cost_ns(calls: int = 200_000) -> float:
    assert not is_enabled()
    start = time.perf_counter_ns()
    for _ in range(calls):
        with span("obs.overhead.probe", k=1):
            pass
    return (time.perf_counter_ns() - start) / calls


@pytest.mark.bench_smoke
def test_disabled_tracing_overhead_under_5_percent_on_r10_sweep(benchmark):
    benchmark.group = "obs-overhead"
    benchmark.extra_info["n"] = _SWEEP_SIZE

    span_count = _count_sweep_spans()
    assert span_count > 0

    per_call_ns = _disabled_span_cost_ns()

    assert not is_enabled()
    start = time.perf_counter_ns()
    benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    sweep_ns = time.perf_counter_ns() - start

    worst_case_overhead_ns = span_count * per_call_ns
    fraction = worst_case_overhead_ns / sweep_ns
    benchmark.extra_info["span_count"] = span_count
    benchmark.extra_info["disabled_span_cost_ns"] = round(per_call_ns, 2)
    benchmark.extra_info["overhead_fraction"] = round(fraction, 6)
    assert fraction < _MAX_OVERHEAD_FRACTION, (
        "disabled-tracing worst case %.3f%% of the r=%d sweep (%d spans at "
        "%.0fns each over %.0fms)"
        % (
            100 * fraction,
            _SWEEP_SIZE,
            span_count,
            per_call_ns,
            sweep_ns / 1e6,
        )
    )


def _telemetry_batch():
    """One full worker batch (64 spans) in wire form, completion-ordered.

    A nested chain finished leaf-first — the worst case for the
    collector's re-parenting pass, which must sort by start time before
    any child can reference its parent's remapped id.
    """
    spans = []
    for i in range(TELEMETRY_BATCH_SPANS):
        spans.append(
            {
                "kind": "span",
                "span_id": i + 1,
                "parent_id": i if i else None,
                "name": "sat.solve",
                "depth": i,
                "start_ns": 10 * (i + 1),
                "end_ns": 10 * (2 * TELEMETRY_BATCH_SPANS + 1) - 10 * i,
                "status": "ok",
                "attrs": {"k": i},
            }
        )
    spans.reverse()
    payload = {"pid": 4242, "spans": spans}
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    return blob, hashlib.sha256(blob).hexdigest()


@pytest.mark.bench_smoke
def test_collector_ingest_throughput_on_a_full_batch(benchmark):
    """Digest-verify + validate + re-parent one worker batch of 64 spans.

    This is the coordinator-side cost of the cross-process telemetry
    pipe, paid inside the supervisor's poll loop — it must stay cheap
    relative to the poll interval (20ms), or draining a span-heavy
    worker would starve hang detection.
    """
    benchmark.group = "obs-collect"
    benchmark.extra_info["batch_spans"] = TELEMETRY_BATCH_SPANS
    blob, digest = _telemetry_batch()
    collector = TelemetryCollector(registry=MetricsRegistry())
    enable([], keep_records=False)  # fan out to no sinks, keep nothing
    try:
        with span("portfolio.race") as race:
            context = TraceContext.capture()
            assert context.enabled and context.parent_span_id == race.span_id

            def ingest():
                assert collector.ingest("bmc", context, blob, digest)

            benchmark.pedantic(ingest, rounds=50, iterations=5)
    finally:
        disable()
    assert collector.dropped == 0
    assert collector.spans_ingested >= TELEMETRY_BATCH_SPANS
