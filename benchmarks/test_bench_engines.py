"""Head-to-head: the compiled bitset engine vs. the naive frozenset oracle.

Benchmarks the full Section 5 property family on token rings of growing size
under both explicit-state CTL engines.  Checker construction is inside the
measured region, but ``compile_structure`` memoises the compiled form on the
(session-fixture) structure, so compilation is paid once on the first round
and amortised away thereafter — the steady-state numbers measure *checking*
throughput, which is the production usage ("compile once, check a family").
``test_compile_cost_ring4`` measures the one-off compilation cost separately.
The explicit speedup assertion at the largest explosion-sweep seed size guards
the engine's raison d'être: if the bitset engine ever regresses to naive-like
performance, the benchmark suite fails loudly rather than just getting slower.
"""

import time

import pytest

from repro.kripke.compiled import CompiledKripkeStructure
from repro.mc import ICTLStarModelChecker
from repro.systems import token_ring

ENGINES = ("bitset", "naive")


def _check_family(structure, engine):
    checker = ICTLStarModelChecker(structure, engine=engine)
    return checker.check_batch(token_ring.ring_properties())


@pytest.mark.bench_smoke
@pytest.mark.parametrize("engine", ENGINES)
def test_engines_ring4(benchmark, ring4, engine):
    benchmark.group = "engines-ring4"
    benchmark.extra_info["n"] = 4
    benchmark.extra_info["states"] = ring4.num_states
    benchmark.extra_info["engine"] = engine
    results = benchmark(_check_family, ring4, engine)
    assert all(results.values())


@pytest.mark.parametrize("engine", ENGINES)
def test_engines_ring6(benchmark, ring6, engine):
    benchmark.group = "engines-ring6"
    benchmark.extra_info["n"] = 6
    benchmark.extra_info["states"] = ring6.num_states
    benchmark.extra_info["engine"] = engine
    results = benchmark(_check_family, ring6, engine)
    assert all(results.values())


@pytest.mark.bench_smoke
def test_compile_cost_ring4(benchmark, ring4):
    benchmark.extra_info["n"] = 4
    benchmark.extra_info["states"] = ring4.num_states
    compiled = benchmark(CompiledKripkeStructure, ring4)
    assert compiled.num_states == ring4.num_states


@pytest.mark.bench_smoke
def test_bitset_speedup_at_largest_seed_size(ring6):
    """The bitset engine must beat the naive oracle by a wide margin on M_6.

    Measured outside pytest-benchmark so the ratio can be asserted directly;
    best-of-three samples per engine and a 2x floor (observed: ~6-7x) keep
    scheduler noise from producing a spurious failure.
    """
    timings = {}
    for engine in ENGINES:
        _check_family(ring6, engine)  # warm-up: exclude one-off import costs
        best = float("inf")
        for _ in range(3):
            started = time.perf_counter()
            results = _check_family(ring6, engine)
            best = min(best, time.perf_counter() - started)
            assert all(results.values())
        timings[engine] = best
    assert timings["bitset"] * 2 < timings["naive"], timings
