"""E4 — Fig. 5.1: the two-process mutual-exclusion global state graph.

Regenerates the figure: the reachable global state graph of the two-process
ring has eight states, a total transition relation, and satisfies the
structural partition invariant.
"""

from repro.analysis import experiments
from repro.systems import token_ring


def test_e4_build_two_process_ring(benchmark):
    structure = benchmark(token_ring.build_token_ring, 2)
    assert structure.num_states == 8
    assert structure.num_transitions == 14
    assert structure.is_total()


def test_e4_fig51_experiment(benchmark):
    report = benchmark(experiments.run_e4_fig51)
    assert report["num_states"] == 8
    assert report["num_transitions"] == 14
    assert report["partition_invariant"]
    assert report["initial_out_degree"] == 2
