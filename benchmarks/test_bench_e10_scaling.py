"""E10 — scaling of the correspondence decision algorithm.

The paper defers the decision algorithm to Browne et al. (1987); this
benchmark measures our implementation as the large ring (and hence the number
of candidate state pairs) grows, and on the auxiliary process families.
"""

import pytest

from repro.correspondence import find_correspondence
from repro.kripke import reduce_to_index
from repro.systems import barrier, round_robin, token_ring


@pytest.mark.parametrize("size", [3, 4, 5])
def test_e10_ring_reduction_scaling(benchmark, size, ring3):
    left = reduce_to_index(ring3, 1)
    right = reduce_to_index(token_ring.build_token_ring(size), 1)
    relation = benchmark(find_correspondence, left, right)
    assert relation is not None


@pytest.mark.parametrize("size", [4, 8, 12])
def test_e10_round_robin_scaling(benchmark, size):
    small = reduce_to_index(round_robin.build_round_robin(2), 1)
    large = reduce_to_index(round_robin.build_round_robin(size), 1)
    relation = benchmark(find_correspondence, small, large)
    assert relation is not None


@pytest.mark.parametrize("size", [3, 4, 5])
def test_e10_barrier_scaling(benchmark, size):
    small = reduce_to_index(barrier.build_barrier(2), 1)
    large = reduce_to_index(barrier.build_barrier(size), 1)
    relation = benchmark(find_correspondence, small, large)
    assert relation is not None
