"""Head-to-head: IC3/PDR unbounded proving vs. BDD reachability vs. k-induction.

Three proof workloads, each racing IC3 (on the *free* bit-pattern domain — no
reachability fixpoint anywhere) against the symbolic BDD engine (which must
build the reachable set first):

* **mutex safety** at ``n ∈ {4, 8, 12}`` — pairwise mutual exclusion on the
  lock protocol.  The reachable set is small and shallow, so this is the
  BDD-friendly end of the spectrum; IC3 pays per-clause generalization;
* **ring pairwise exclusion** at ``r ∈ {4, 6, 8}`` — the invariant that is
  *not* inductive (k-induction stays inconclusive at any practical bound,
  see E13): IC3 discovers the token-counting strengthening as blocked
  cubes.  The BDD engine still wins on time here (diameter ``O(r)``), which
  is exactly what ``docs/ENGINES.md`` tells you to expect;
* **saturating counter nonzero** at ``n ∈ {10, 14, 18}`` — the reachable
  state space is a single path of length ``2^n − 2``, so BDD reachability
  needs ``2^n − 2`` image steps while ``AG ¬zero`` is 1-inductive relative
  to nothing (the zero state has no predecessor): IC3 proves it in
  milliseconds at sizes where the BDD fixpoint takes seconds.  This is the
  family where IC3 beats the BDD engine outright in ``BENCH_results.json``.

Every benchmark publishes verdict provenance (``ic3-invariant`` with the
certificate size and closing frame) plus the frame/obligation/generalization
counters through ``extra_info`` into the ``BENCH_*.json`` artifact flow.
The smallest point of each family is in the CI ``bench_smoke`` subset, as is
``test_ic3_certificate_matches_bitset_oracle``, the correctness guard.
"""

import pytest

from repro.mc import IC3ModelChecker, SymbolicCTLModelChecker
from repro.mc.bitset import BitsetCTLModelChecker
from repro.systems import counter, mutex, token_ring

_MUTEX_SIZES = [pytest.param(4, marks=pytest.mark.bench_smoke), 8, 12]
_RING_SIZES = [pytest.param(4, marks=pytest.mark.bench_smoke), 6, 8]
_COUNTER_SIZES = [pytest.param(10, marks=pytest.mark.bench_smoke), 14, 18]

_FAMILIES = {
    "mutex": (mutex.symbolic_mutex, mutex.mutex_safety),
    "ring": (token_ring.symbolic_token_ring, token_ring.ring_mutual_exclusion),
    "counter": (counter.symbolic_counter, counter.counter_nonzero),
}


def _ic3_prove(family, size):
    build, prop = _FAMILIES[family]
    structure = build(size, domain="free")
    checker = IC3ModelChecker(structure)
    verdict = checker.check(prop(size))
    return checker, verdict


def _bdd_prove(family, size):
    build, prop = _FAMILIES[family]
    structure = build(size)
    verdict = SymbolicCTLModelChecker(structure).check(prop(size))
    return structure, verdict


def _record_ic3(benchmark, checker):
    stats = checker.stats()
    benchmark.extra_info["detail"] = checker.last_detail
    benchmark.extra_info["certificate_clauses"] = checker.certificate.num_clauses
    benchmark.extra_info["closing_frame"] = checker.certificate.frame
    benchmark.extra_info["frames"] = stats["frames"]
    benchmark.extra_info["cubes_blocked"] = stats["cubes_blocked"]
    benchmark.extra_info["obligations"] = stats["obligations"]
    benchmark.extra_info["relative_queries"] = stats["relative_queries"]
    benchmark.extra_info["sat_conflicts"] = stats["conflicts"]


def _run_pair(benchmark, engine, family, size):
    benchmark.group = "prove-%s-n%d" % (family, size)
    benchmark.extra_info["n"] = size
    benchmark.extra_info["engine"] = engine
    if engine == "ic3":
        checker, verdict = benchmark.pedantic(
            _ic3_prove, args=(family, size), rounds=1, iterations=1
        )
        assert verdict
        assert checker.last_detail.startswith("ic3-invariant")
        _record_ic3(benchmark, checker)
    else:
        structure, verdict = benchmark.pedantic(
            _bdd_prove, args=(family, size), rounds=1, iterations=1
        )
        assert verdict
        benchmark.extra_info["states"] = structure.num_states
        benchmark.extra_info["peak_live_nodes"] = (
            structure.manager.stats().peak_live_nodes
        )


@pytest.mark.parametrize("size", _MUTEX_SIZES)
def test_ic3_proof_mutex_safety(benchmark, size):
    """IC3 end-to-end time-to-proof on mutex(n): build + frames + certificate."""
    _run_pair(benchmark, "ic3", "mutex", size)


@pytest.mark.parametrize("size", _MUTEX_SIZES)
def test_bdd_proof_mutex_safety(benchmark, size):
    """BDD end-to-end time-to-proof on mutex(n): build + reachability + AG fixpoint."""
    _run_pair(benchmark, "bdd", "mutex", size)


@pytest.mark.parametrize("size", _RING_SIZES)
def test_ic3_proof_ring_pairwise_exclusion(benchmark, size):
    """IC3 proves the non-inductive ring invariant k-induction cannot."""
    _run_pair(benchmark, "ic3", "ring", size)


@pytest.mark.parametrize("size", _RING_SIZES)
def test_bdd_proof_ring_pairwise_exclusion(benchmark, size):
    _run_pair(benchmark, "bdd", "ring", size)


@pytest.mark.parametrize("size", _COUNTER_SIZES)
def test_ic3_proof_counter_nonzero(benchmark, size):
    """The IC3-friendly family: 1-inductive property, exponential-diameter space."""
    _run_pair(benchmark, "ic3", "counter", size)


@pytest.mark.parametrize("size", _COUNTER_SIZES)
def test_bdd_proof_counter_nonzero(benchmark, size):
    """The BDD engine pays ``2^n - 2`` image steps for the same proof."""
    _run_pair(benchmark, "bdd", "counter", size)


@pytest.mark.bench_smoke
def test_ic3_certificate_matches_bitset_oracle(benchmark):
    """Correctness guard at mutex(3): IC3 verdicts == bitset, cex is genuine."""
    size = 3
    benchmark.group = "ic3-oracle-crosscheck"
    benchmark.extra_info["n"] = size

    def crosscheck():
        results = {}
        for buggy in (False, True):
            structure = mutex.symbolic_mutex(size, buggy=buggy, domain="free")
            checker = IC3ModelChecker(structure)
            results[buggy] = (checker, checker.check(mutex.mutex_safety(size)))
        return results

    results = benchmark.pedantic(crosscheck, rounds=1, iterations=1)
    for buggy, (checker, verdict) in results.items():
        explicit = mutex.build_mutex(size, buggy=buggy)
        oracle = BitsetCTLModelChecker(explicit)
        assert verdict == oracle.check(mutex.mutex_safety(size))
        assert verdict != buggy
    good_checker, _ = results[False]
    assert good_checker.certificate is not None
    benchmark.extra_info["certificate_clauses"] = (
        good_checker.certificate.num_clauses
    )
