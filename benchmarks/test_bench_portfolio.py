"""Portfolio / runtime overhead guards.

Three claims from ``docs/RESILIENCE.md`` are measured here instead of
trusted:

1. a **disabled checkpoint** (no budget armed, no chaos hook) is cheap
   enough to live in the engine hot loops permanently — same product-form
   guard as the tracing overhead check in ``test_bench_obs.py``;
2. on a multi-core box the **portfolio race costs < 1.3×** the best solo
   engine on the ``r = 10`` symbolic property sweep — the price of the
   supervised fork-per-engine race is process plumbing, not recomputation;
3. sharding independent checks across **4 supervised workers is ≥ 2×**
   faster than running them serially.

Guards 2 and 3 need real parallelism and are skipped below 4 CPU cores;
the smoke row and the checkpoint guard run everywhere, so
``BENCH_results.json`` always carries a portfolio baseline.
"""

import os
import time

import pytest

from repro.mc import SymbolicCTLModelChecker
from repro.runtime import limits
from repro.runtime.chaos import ChaosConfig
from repro.runtime.portfolio import PortfolioModelChecker, builder_source, run_engine_check
from repro.runtime.supervisor import Supervisor, WorkerTask
from repro.systems import token_ring

#: Disabled checkpoints may claim at most this share of the r=10 sweep.
_MAX_CHECKPOINT_FRACTION = 0.05

#: Portfolio race wall-clock vs the best solo engine, multi-core only.
_MAX_PORTFOLIO_OVERHEAD = 1.3

#: Required speedup of the 4-worker shard over the serial run.
_MIN_SHARD_SPEEDUP = 2.0

_SWEEP_SIZE = 10

#: Forces chaos off inside benchmark workers under the CI chaos lane.
_NO_CHAOS = ChaosConfig()

_needs_cores = pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="parallel-speedup guards need at least 4 CPU cores",
)


def _ring_sources(size):
    """Each engine's natural encoding, built inside the worker (CLI parity)."""
    return {
        "bitset": builder_source("repro.systems.token_ring", "build_token_ring", size),
        "bdd": builder_source("repro.systems.token_ring", "symbolic_token_ring", size),
        "bmc": builder_source(
            "repro.systems.token_ring", "symbolic_token_ring", size, domain="free"
        ),
        "ic3": builder_source(
            "repro.systems.token_ring", "symbolic_token_ring", size, domain="free"
        ),
    }


def _run_sweep():
    structure = token_ring.symbolic_token_ring(_SWEEP_SIZE)
    checker = SymbolicCTLModelChecker(structure)
    verdicts = checker.check_batch(token_ring.ring_properties())
    assert all(verdicts.values())


def _count_sweep_checkpoints() -> int:
    hits = []
    limits.set_chaos_hook(lambda site: hits.append(site))
    try:
        _run_sweep()
    finally:
        limits.set_chaos_hook(None)
    return len(hits)


def _disabled_checkpoint_cost_ns(calls: int = 200_000) -> float:
    assert limits.current_budget() is None
    start = time.perf_counter_ns()
    for _ in range(calls):
        limits.checkpoint("bench.probe", bdd_nodes=1)
    return (time.perf_counter_ns() - start) / calls


@pytest.mark.bench_smoke
def test_disabled_checkpoint_overhead_under_5_percent_on_r10_sweep(benchmark):
    benchmark.group = "runtime-overhead"
    benchmark.extra_info["n"] = _SWEEP_SIZE

    checkpoint_count = _count_sweep_checkpoints()
    assert checkpoint_count > 0, "the sweep must pass through engine checkpoints"

    per_call_ns = _disabled_checkpoint_cost_ns()

    start = time.perf_counter_ns()
    benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    sweep_ns = time.perf_counter_ns() - start

    fraction = checkpoint_count * per_call_ns / sweep_ns
    benchmark.extra_info["checkpoint_count"] = checkpoint_count
    benchmark.extra_info["disabled_checkpoint_cost_ns"] = round(per_call_ns, 2)
    benchmark.extra_info["overhead_fraction"] = round(fraction, 6)
    assert fraction < _MAX_CHECKPOINT_FRACTION, (
        "disabled-checkpoint worst case %.3f%% of the r=%d sweep (%d checkpoints "
        "at %.0fns each over %.0fms)"
        % (100 * fraction, _SWEEP_SIZE, checkpoint_count, per_call_ns, sweep_ns / 1e6)
    )


@pytest.mark.bench_smoke
def test_portfolio_race_smoke(benchmark):
    """One supervised race, any machine: the baseline row for the portfolio."""
    benchmark.group = "portfolio-race"
    checker = PortfolioModelChecker(
        sources=_ring_sources(4), bound=8, chaos=_NO_CHAOS
    )
    formula = token_ring.ring_mutual_exclusion(4)
    verdict = benchmark.pedantic(checker.check, args=(formula,), rounds=1, iterations=1)
    assert verdict is True
    benchmark.extra_info["winner"] = checker.last_detail
    benchmark.extra_info["outcomes"] = dict(checker.last_outcomes)


@_needs_cores
def test_portfolio_overhead_vs_best_solo_under_1_3x(benchmark):
    """Racing four engines must cost < 1.3× the best solo on the r=10 sweep."""
    benchmark.group = "portfolio-overhead"
    benchmark.extra_info["n"] = _SWEEP_SIZE
    formulas = token_ring.ring_properties()
    sources = _ring_sources(_SWEEP_SIZE)

    # Best solo on this sweep is the symbolic engine; measure it the way a
    # race winner pays for it (build inside the check, one check at a time).
    start = time.perf_counter_ns()
    for formula in formulas.values():
        result = run_engine_check("bdd", sources["bdd"], formula)
        assert result["verdict"] is True
    solo_ns = time.perf_counter_ns() - start

    checker = PortfolioModelChecker(sources=sources, bound=8, chaos=_NO_CHAOS)

    def _race_sweep():
        verdicts = checker.check_batch(formulas)
        assert all(verdicts.values())

    start = time.perf_counter_ns()
    benchmark.pedantic(_race_sweep, rounds=1, iterations=1)
    portfolio_ns = time.perf_counter_ns() - start

    overhead = portfolio_ns / solo_ns
    benchmark.extra_info["solo_seconds"] = solo_ns / 1e9
    benchmark.extra_info["overhead_ratio"] = round(overhead, 3)
    assert overhead < _MAX_PORTFOLIO_OVERHEAD, (
        "portfolio sweep took %.2fx the best solo engine (%.0fms vs %.0fms)"
        % (overhead, portfolio_ns / 1e6, solo_ns / 1e6)
    )


@_needs_cores
def test_four_worker_shard_is_at_least_2x_faster(benchmark):
    """Four independent sweep shards, supervised in parallel, vs serially."""
    benchmark.group = "portfolio-shard"
    shards = [("ring", 8), ("ring", 9), ("mutex", 6), ("counter", 10)]
    tasks = []
    for index, (system, size) in enumerate(shards):
        module = "repro.systems.%s" % ("token_ring" if system == "ring" else system)
        builder = {
            "ring": "symbolic_token_ring",
            "mutex": "symbolic_mutex",
            "counter": "symbolic_counter",
        }[system]
        tasks.append(
            WorkerTask(
                id="shard-%d" % index,
                fn=run_engine_check,
                args=("bdd", builder_source(module, builder, size), None),
                chaos=_NO_CHAOS,
            )
        )

    # The worker entry point needs a real formula; give each shard its
    # family's mutual-exclusion property.
    from repro.systems import counter as counter_system
    from repro.systems import mutex as mutex_system

    formulas = [
        token_ring.ring_mutual_exclusion(8),
        token_ring.ring_mutual_exclusion(9),
        mutex_system.mutex_safety(6),
        counter_system.counter_nonzero(10),
    ]
    for task, formula in zip(tasks, formulas):
        task.args = (task.args[0], task.args[1], formula)

    start = time.perf_counter_ns()
    for task in tasks:
        result = run_engine_check(*task.args)
        assert result["verdict"] is True
    serial_ns = time.perf_counter_ns() - start

    def _parallel():
        outcomes = Supervisor(hang_timeout=120.0).run(tasks)
        assert all(outcome.ok for outcome in outcomes.values())

    start = time.perf_counter_ns()
    benchmark.pedantic(_parallel, rounds=1, iterations=1)
    parallel_ns = time.perf_counter_ns() - start

    speedup = serial_ns / parallel_ns
    benchmark.extra_info["serial_seconds"] = serial_ns / 1e9
    benchmark.extra_info["speedup"] = round(speedup, 3)
    assert speedup >= _MIN_SHARD_SPEEDUP, (
        "4-worker shard speedup %.2fx (serial %.0fms, parallel %.0fms)"
        % (speedup, serial_ns / 1e6, parallel_ns / 1e6)
    )
