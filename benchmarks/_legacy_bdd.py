"""Frozen pre-PR-4 symbolic engine, kept only as a benchmark baseline.

This module is a trimmed, self-contained snapshot of the ROBDD manager and
symbolic token-ring checking path as they existed before the PR-4 symbolic-core
rewrite (plain edges, recursive memoized apply, monolithic per-part relprod
image computation, no GC/reordering).  The benchmark suite races the new
complement-edge core against it on the same machine, which is the only honest
way to enforce the "new core >= 3x old core" guard across heterogeneous CI
runners.

Nothing outside ``benchmarks/`` may import this module; it is not part of the
library.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.kripke.structure import IndexedProp
from repro.logic.ast import (
    And,
    Atom,
    Exists,
    FalseLiteral,
    Finally,
    ForAll,
    Globally,
    Iff,
    Implies,
    IndexedAtom,
    Next,
    Not,
    Or,
    TrueLiteral,
    Until,
)
from repro.logic.transform import instantiate_quantifiers

_TERMINAL = 1 << 30


class LegacyBDDManager:
    """The pre-rewrite manager: plain edges, per-operation recursive memos."""

    def __init__(self):
        self._nodes: List[Tuple[int, int, int]] = [(_TERMINAL, 0, 0), (_TERMINAL, 1, 1)]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._and_cache: Dict[Tuple[int, int], int] = {}
        self._or_cache: Dict[Tuple[int, int], int] = {}
        self._not_cache: Dict[int, int] = {}
        self._exists_cache: Dict[Tuple[int, Tuple[int, ...]], int] = {}
        self._relprod_cache: Dict[Tuple[int, int, Tuple[int, ...]], int] = {}
        self._rename_cache: Dict[Tuple[object, int], int] = {}

    def __len__(self):
        return len(self._nodes)

    def _mk(self, level, low, high):
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            self._nodes.append(key)
            node = len(self._nodes) - 1
            self._unique[key] = node
        return node

    def var(self, level):
        return self._mk(level, 0, 1)

    def cube(self, literals):
        result = 1
        for level in sorted(literals, reverse=True):
            if literals[level]:
                result = self._mk(level, 0, result)
            else:
                result = self._mk(level, result, 0)
        return result

    def apply_and(self, u, v):
        if u == v:
            return u
        if u == 0 or v == 0:
            return 0
        if u == 1:
            return v
        if v == 1:
            return u
        if u > v:
            u, v = v, u
        key = (u, v)
        result = self._and_cache.get(key)
        if result is not None:
            return result
        nodes = self._nodes
        ulevel, ulow, uhigh = nodes[u]
        vlevel, vlow, vhigh = nodes[v]
        if ulevel == vlevel:
            result = self._mk(ulevel, self.apply_and(ulow, vlow), self.apply_and(uhigh, vhigh))
        elif ulevel < vlevel:
            result = self._mk(ulevel, self.apply_and(ulow, v), self.apply_and(uhigh, v))
        else:
            result = self._mk(vlevel, self.apply_and(u, vlow), self.apply_and(u, vhigh))
        self._and_cache[key] = result
        return result

    def apply_or(self, u, v):
        if u == v:
            return u
        if u == 1 or v == 1:
            return 1
        if u == 0:
            return v
        if v == 0:
            return u
        if u > v:
            u, v = v, u
        key = (u, v)
        result = self._or_cache.get(key)
        if result is not None:
            return result
        nodes = self._nodes
        ulevel, ulow, uhigh = nodes[u]
        vlevel, vlow, vhigh = nodes[v]
        if ulevel == vlevel:
            result = self._mk(ulevel, self.apply_or(ulow, vlow), self.apply_or(uhigh, vhigh))
        elif ulevel < vlevel:
            result = self._mk(ulevel, self.apply_or(ulow, v), self.apply_or(uhigh, v))
        else:
            result = self._mk(vlevel, self.apply_or(u, vlow), self.apply_or(u, vhigh))
        self._or_cache[key] = result
        return result

    def negate(self, u):
        if u < 2:
            return 1 - u
        result = self._not_cache.get(u)
        if result is not None:
            return result
        level, low, high = self._nodes[u]
        result = self._mk(level, self.negate(low), self.negate(high))
        self._not_cache[u] = result
        self._not_cache[result] = u
        return result

    def _cofactors(self, u, level):
        ulevel, low, high = self._nodes[u]
        if ulevel != level:
            return u, u
        return low, high

    def exists(self, u, levels):
        return self._exists(u, tuple(sorted(set(levels))))

    def _exists(self, u, cube):
        if u < 2 or not cube:
            return u
        ulevel, low, high = self._nodes[u]
        start = 0
        while start < len(cube) and cube[start] < ulevel:
            start += 1
        if start:
            cube = cube[start:]
        if not cube:
            return u
        key = (u, cube)
        result = self._exists_cache.get(key)
        if result is not None:
            return result
        if ulevel == cube[0]:
            rest = cube[1:]
            result = self.apply_or(self._exists(low, rest), self._exists(high, rest))
        else:
            result = self._mk(ulevel, self._exists(low, cube), self._exists(high, cube))
        self._exists_cache[key] = result
        return result

    def relprod(self, u, v, levels):
        return self._relprod(u, v, tuple(sorted(set(levels))))

    def _relprod(self, u, v, cube):
        if u == 0 or v == 0:
            return 0
        if not cube:
            return self.apply_and(u, v)
        if u == 1:
            return self._exists(v, cube)
        if v == 1:
            return self._exists(u, cube)
        if u > v:
            u, v = v, u
        nodes = self._nodes
        top = min(nodes[u][0], nodes[v][0])
        start = 0
        while start < len(cube) and cube[start] < top:
            start += 1
        if start:
            cube = cube[start:]
        if not cube:
            return self.apply_and(u, v)
        key = (u, v, cube)
        result = self._relprod_cache.get(key)
        if result is not None:
            return result
        u0, u1 = self._cofactors(u, top)
        v0, v1 = self._cofactors(v, top)
        if cube[0] == top:
            rest = cube[1:]
            low = self._relprod(u0, v0, rest)
            if low == 1:
                result = 1
            else:
                result = self.apply_or(low, self._relprod(u1, v1, rest))
        else:
            result = self._mk(top, self._relprod(u0, v0, cube), self._relprod(u1, v1, cube))
        self._relprod_cache[key] = result
        return result

    def rename(self, u, mapping, tag):
        if u < 2:
            return u
        key = (tag, u)
        result = self._rename_cache.get(key)
        if result is not None:
            return result
        level, low, high = self._nodes[u]
        result = self._mk(
            mapping.get(level, level),
            self.rename(low, mapping, tag),
            self.rename(high, mapping, tag),
        )
        self._rename_cache[key] = result
        return result

    def sat_count(self, u, levels):
        cube = tuple(sorted(set(levels)))
        position = {level: i for i, level in enumerate(cube)}
        total = len(cube)
        nodes = self._nodes
        memo: Dict[int, int] = {0: 0, 1: 1}

        def pos(node):
            if node < 2:
                return total
            return position[nodes[node][0]]

        def count(node):
            cached = memo.get(node)
            if cached is not None:
                return cached
            level, low, high = nodes[node]
            here = pos(node)
            result = count(low) << (pos(low) - here - 1)
            result += count(high) << (pos(high) - here - 1)
            memo[node] = result
            return result

        return count(u) << pos(u)


_PARTS = ("N", "D", "T", "C")


class LegacySymbolicRing:
    """The pre-rewrite direct BDD encoding of M_r plus a minimal CTL checker."""

    def __init__(self, size: int):
        self.size = size
        manager = LegacyBDDManager()
        self.manager = manager
        self._bits_per_process = 2
        self._num_bits = 2 * size
        self._current_levels = tuple(2 * bit for bit in range(self._num_bits))
        self._next_levels = tuple(2 * bit + 1 for bit in range(self._num_bits))
        self._c2n = {2 * bit: 2 * bit + 1 for bit in range(self._num_bits)}
        self._n2c = {2 * bit + 1: 2 * bit for bit in range(self._num_bits)}
        indices = tuple(range(1, size + 1))
        self.indices = indices
        land, lor, neg = manager.apply_and, manager.apply_or, manager.negate

        def block(index):
            return (index - 1) * 2

        def part_cube(index, part, offset):
            code = _PARTS.index(part)
            b = block(index)
            return manager.cube(
                {2 * (b + bit) + offset: bool(code >> bit & 1) for bit in range(2)}
            )

        current_cache: Dict[Tuple[int, str], int] = {}
        next_cache: Dict[Tuple[int, str], int] = {}

        def current(index, part):
            key = (index, part)
            if key not in current_cache:
                current_cache[key] = part_cube(index, part, 0)
            return current_cache[key]

        def nxt(index, part):
            key = (index, part)
            if key not in next_cache:
                next_cache[key] = part_cube(index, part, 1)
            return next_cache[key]

        unchanged_cache: Dict[int, int] = {}

        def unchanged(index):
            if index not in unchanged_cache:
                b = block(index)
                node = 1
                for bit in reversed(range(2)):
                    level = 2 * (b + bit)
                    iff = lor(
                        land(manager.var(level), manager.var(level + 1)),
                        land(neg(manager.var(level)), neg(manager.var(level + 1))),
                    )
                    node = land(iff, node)
                unchanged_cache[index] = node
            return unchanged_cache[index]

        def frame(changed):
            touched = set(changed)
            node = 1
            for index in indices:
                if index not in touched:
                    node = land(node, unchanged(index))
            return node

        parts: List[int] = []
        rule1 = 0
        for process in indices:
            rule1 = lor(
                rule1,
                land(land(current(process, "N"), nxt(process, "D")), frame([process])),
            )
        parts.append(rule1)
        for holder in indices:
            holder_held = lor(current(holder, "T"), current(holder, "C"))
            handoffs = 0
            nobody_between = 1
            candidate = holder
            for _ in range(size - 1):
                candidate = size if candidate == 1 else candidate - 1
                guard = land(land(holder_held, current(candidate, "D")), nobody_between)
                effect = land(
                    land(nxt(holder, "N"), nxt(candidate, "C")),
                    frame([holder, candidate]),
                )
                handoffs = lor(handoffs, land(guard, effect))
                nobody_between = land(nobody_between, neg(current(candidate, "D")))
            if handoffs != 0:
                parts.append(handoffs)
        rule3 = 0
        for process in indices:
            rule3 = lor(
                rule3,
                land(land(current(process, "T"), nxt(process, "C")), frame([process])),
            )
        parts.append(rule3)
        nobody_delayed = 1
        for process in indices:
            nobody_delayed = land(nobody_delayed, neg(current(process, "D")))
        rule4 = 0
        for process in indices:
            rule4 = lor(
                rule4,
                land(
                    land(nobody_delayed, land(current(process, "C"), nxt(process, "T"))),
                    frame([process]),
                ),
            )
        parts.append(rule4)
        self._parts = parts

        self._props: Dict[IndexedProp, int] = {}
        for process in indices:
            self._props[IndexedProp("d", process)] = current(process, "D")
            self._props[IndexedProp("n", process)] = lor(
                current(process, "N"), current(process, "T")
            )
            self._props[IndexedProp("t", process)] = lor(
                current(process, "T"), current(process, "C")
            )
            self._props[IndexedProp("c", process)] = current(process, "C")

        initial = 1
        for process in reversed(indices):
            initial = land(current(process, "T" if process == 1 else "N"), initial)
        self._initial = initial
        self._domain = self._reachable()
        self._cache: Dict[object, int] = {}

    # -- images ----------------------------------------------------------------

    def _preimage(self, node):
        manager = self.manager
        renamed = manager.rename(node, self._c2n, "c2n")
        result = 0
        for part in self._parts:
            result = manager.apply_or(
                result, manager.relprod(part, renamed, self._next_levels)
            )
        return manager.apply_and(result, self._domain)

    def _image(self, node):
        manager = self.manager
        result = 0
        for part in self._parts:
            result = manager.apply_or(
                result, manager.relprod(part, node, self._current_levels)
            )
        return manager.rename(result, self._n2c, "n2c")

    def _reachable(self):
        manager = self.manager
        current = self._initial
        frontier = current
        while frontier != 0:
            fresh = self._image(frontier)
            frontier = manager.apply_and(fresh, manager.negate(current))
            current = manager.apply_or(current, frontier)
        return current

    # -- CTL ------------------------------------------------------------------

    def _complement(self, node):
        return self.manager.apply_and(self._domain, self.manager.negate(node))

    def _eu(self, left, right):
        manager = self.manager
        satisfied = right
        frontier = right
        while frontier != 0:
            reached = manager.apply_and(left, self._preimage(frontier))
            frontier = manager.apply_and(reached, manager.negate(satisfied))
            satisfied = manager.apply_or(satisfied, frontier)
        return satisfied

    def _eg(self, operand):
        manager = self.manager
        current = operand
        while True:
            refined = manager.apply_and(current, self._preimage(current))
            if refined == current:
                return current
            current = refined

    def _compute(self, formula):
        cached = self._cache.get(formula)
        if cached is not None:
            return cached
        manager = self.manager
        if isinstance(formula, TrueLiteral):
            result = self._domain
        elif isinstance(formula, FalseLiteral):
            result = 0
        elif isinstance(formula, (Atom, IndexedAtom)):
            if isinstance(formula, IndexedAtom):
                result = manager.apply_and(
                    self._props.get(IndexedProp(formula.name, formula.index), 0),
                    self._domain,
                )
            else:
                result = 0
        elif isinstance(formula, Not):
            result = self._complement(self._compute(formula.operand))
        elif isinstance(formula, And):
            result = manager.apply_and(
                self._compute(formula.left), self._compute(formula.right)
            )
        elif isinstance(formula, Or):
            result = manager.apply_or(
                self._compute(formula.left), self._compute(formula.right)
            )
        elif isinstance(formula, Implies):
            result = manager.apply_or(
                self._complement(self._compute(formula.left)),
                self._compute(formula.right),
            )
        elif isinstance(formula, Iff):
            left = self._compute(formula.left)
            right = self._compute(formula.right)
            result = manager.apply_or(
                manager.apply_and(left, right),
                manager.apply_and(self._complement(left), self._complement(right)),
            )
        elif isinstance(formula, Exists):
            result = self._compute_path(formula.path, exists=True)
        elif isinstance(formula, ForAll):
            result = self._compute_path(formula.path, exists=False)
        else:
            raise ValueError("legacy checker cannot handle %r" % (formula,))
        self._cache[formula] = result
        return result

    def _compute_path(self, path, exists):
        manager = self.manager
        if exists:
            if isinstance(path, Next):
                return self._preimage(self._compute(path.operand))
            if isinstance(path, Finally):
                return self._eu(self._domain, self._compute(path.operand))
            if isinstance(path, Globally):
                return self._eg(self._compute(path.operand))
            if isinstance(path, Until):
                return self._eu(self._compute(path.left), self._compute(path.right))
            raise ValueError("legacy checker cannot handle E %r" % (path,))
        if isinstance(path, Next):
            return self._complement(
                self._preimage(self._complement(self._compute(path.operand)))
            )
        if isinstance(path, Finally):
            return self._complement(self._eg(self._complement(self._compute(path.operand))))
        if isinstance(path, Globally):
            return self._complement(
                self._eu(self._domain, self._complement(self._compute(path.operand)))
            )
        if isinstance(path, Until):
            not_f = self._complement(self._compute(path.left))
            not_g = self._complement(self._compute(path.right))
            bad = manager.apply_or(
                self._eu(not_g, manager.apply_and(not_f, not_g)), self._eg(not_g)
            )
            return self._complement(bad)
        raise ValueError("legacy checker cannot handle A %r" % (path,))

    def check(self, formula) -> bool:
        instantiated = instantiate_quantifiers(formula, frozenset(self.indices))
        node = self._compute(instantiated)
        return self.manager.apply_and(node, self._initial) != 0

    @property
    def num_states(self) -> int:
        return self.manager.sat_count(self._domain, self._current_levels)
