"""E7 — the Section 5 / appendix correspondence between rings.

Measures (a) the decision algorithm refuting the paper's literal M_2-vs-M_r
claim, (b) the decision algorithm establishing the corrected M_3-vs-M_r
correspondence, and (c) the validation of the explicit rank-based relation
against the definition (which surfaces the appendix's proof gap).
"""

from repro.correspondence import (
    correspondence_violations,
    find_correspondence,
    verify_index_relation,
)
from repro.kripke import reduce_to_index
from repro.systems import token_ring


def test_e7_paper_claim_is_refuted(benchmark, ring2, ring4):
    report = benchmark(
        verify_index_relation, ring2, ring4, token_ring.section5_index_relation(4)
    )
    assert not report.holds
    assert (1, 1) in report.failing_pairs


def test_e7_corrected_base_corresponds(benchmark, ring3, ring4):
    report = benchmark(
        verify_index_relation, ring3, ring4, token_ring.corrected_index_relation(3, 4)
    )
    assert report.holds


def test_e7_single_reduction_pair(benchmark, ring3, ring5):
    left = reduce_to_index(ring3, 1)
    right = reduce_to_index(ring5, 1)
    relation = benchmark(find_correspondence, left, right)
    assert relation is not None


def test_e7_explicit_relation_validation(benchmark, ring2, ring4):
    relation = token_ring.section5_correspondence(ring2, ring4, 1, 1)
    left = reduce_to_index(ring2, 1)
    right = reduce_to_index(ring4, 1)
    violations = benchmark(correspondence_violations, left, right, relation)
    # The reproduction's documented finding: the paper's relation is not a
    # correspondence relation (the appendix case analysis has a gap).
    assert violations
