"""E6 — the four Section 5 properties across ring sizes.

All four properties (token only on request, critical implies token, request
until token, eventual entry) hold on every ring size checked — the truth
values reported by the paper for M_2 carry over unchanged.
"""

from repro.analysis import experiments
from repro.mc import ICTLStarModelChecker
from repro.systems import token_ring


def test_e6_property_sweep(benchmark):
    report = benchmark(experiments.run_e6_properties, (2, 3, 4))
    assert report["all_hold"]


def test_e6_eventual_entry_on_m5(benchmark, ring5):
    checker = ICTLStarModelChecker(ring5)
    assert benchmark(checker.check, token_ring.property_eventual_entry()) is True


def test_e6_token_only_on_request_on_m5(benchmark, ring5):
    checker = ICTLStarModelChecker(ring5)
    assert benchmark(checker.check, token_ring.property_token_only_on_request()) is True


def test_e6_all_properties_on_the_base_ring(benchmark, ring3):
    def check_all():
        checker = ICTLStarModelChecker(ring3)
        return {
            name: checker.check(formula)
            for name, formula in token_ring.ring_properties().items()
        }

    results = benchmark(check_all)
    assert all(results.values())
