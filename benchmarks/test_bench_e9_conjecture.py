"""E9 — the Section 6 conjecture about k levels of index-quantifier nesting.

On free products of identical processes, a formula with at most ``k`` nested
index quantifiers cannot distinguish products with more than ``k`` components:
the Fig. 4.1 counting family realises the bound exactly.
"""

from repro.analysis import experiments
from repro.mc import ICTLStarModelChecker
from repro.systems import figures


def test_e9_conjecture_sweep(benchmark):
    report = benchmark(experiments.run_e9_conjecture, 4, 3)
    assert report["conjecture_holds_on_family"]
    # Depth k distinguishes k-1 from k components...
    assert report["rows"][1][2] is False and report["rows"][2][2] is True
    # ... but not k from anything larger.
    assert report["rows"][3][2] == report["rows"][4][2] == report["rows"][2][2]


def test_e9_free_product_checking_cost(benchmark):
    network = figures.fig41_network(5)
    checker = ICTLStarModelChecker(network, enforce_restrictions=False)
    formula = figures.fig41_counting_formula(2)
    assert benchmark(checker.check, formula) is True
