"""Reduced ordered binary decision diagrams (the symbolic engine's substrate).

The package provides a production-grade pure-Python ROBDD implementation:

* :class:`BDDManager` — the node table: complement-edge canonical nodes
  (negation is an O(1) edge flip), a unified iterative ITE-based apply with a
  single normalized operation cache, bounded/instrumented memo caches,
  mark-and-sweep garbage collection, and dynamic variable reordering by
  Rudell sifting with variable groups and order persistence;
* :class:`BDDFunction` — an operator-overloaded, reference-counted handle
  (``f & g``, ``~f``, ``f >> g``, ``f.relprod(g, vars)``, …) whose lifetime
  tells the garbage collector what is live;
* :class:`ManagerStats` / :class:`CacheStats` — health counters (live/peak
  nodes, cache hit/miss/evict, GC and reorder activity).

:mod:`repro.kripke.symbolic` builds Kripke-structure encodings on top of this
package and :mod:`repro.mc.symbolic` runs CTL fixpoints over them.
"""

from repro.bdd.function import BDDFunction
from repro.bdd.manager import (
    FALSE,
    TERMINAL_LEVEL,
    TRUE,
    BDDManager,
    CacheStats,
    ManagerStats,
)

__all__ = [
    "BDDManager",
    "BDDFunction",
    "ManagerStats",
    "CacheStats",
    "FALSE",
    "TRUE",
    "TERMINAL_LEVEL",
]
