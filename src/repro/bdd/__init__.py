"""Reduced ordered binary decision diagrams (the symbolic engine's substrate).

The package provides a pure-Python ROBDD implementation:

* :class:`BDDManager` — the node table: hash-consed nodes, a unique table,
  and memoized ``apply``/``ite``/``restrict``/``exists``/``relprod``/``rename``
  operations on raw integer node ids;
* :class:`BDDFunction` — an operator-overloaded ``(manager, node)`` wrapper
  (``f & g``, ``~f``, ``f >> g``, ``f.relprod(g, levels)``, …).

:mod:`repro.kripke.symbolic` builds Kripke-structure encodings on top of this
package and :mod:`repro.mc.symbolic` runs CTL fixpoints over them.
"""

from repro.bdd.function import BDDFunction
from repro.bdd.manager import FALSE, TERMINAL_LEVEL, TRUE, BDDManager

__all__ = ["BDDManager", "BDDFunction", "FALSE", "TRUE", "TERMINAL_LEVEL"]
