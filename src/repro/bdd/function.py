"""An operator-overloaded, reference-counted handle on a BDD edge.

:class:`BDDFunction` is the ergonomic face of :class:`repro.bdd.BDDManager`:
it carries the ``(manager, node)`` pair around so call sites can write
``f & g``, ``~f``, ``f >> g`` instead of threading raw edge ids.  Because
edges are hash-consed and canonical, equality of two functions from the same
manager is a single integer comparison.

A handle is also the unit of *memory management*: constructing one registers
an external reference with the manager and dropping it (garbage collection of
the Python object) releases it, so :meth:`BDDManager.collect`'s mark-and-sweep
and the sifting reorderer treat everything reachable from live handles as
roots.  Layers that must survive a GC or a reorder hold handles; raw edge
ints are only safe between manager calls.

Truthiness is deliberately undefined (``bool(f)`` raises): ``f and g`` would
silently compute the *Python* conjunction, not the boolean-function one.  Use
``f.is_false`` / ``f.is_true`` or compare against ``manager``-level constants.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping

from repro.bdd.manager import BDDManager
from repro.errors import BDDError

__all__ = ["BDDFunction"]


class BDDFunction:
    """A boolean function: one canonical edge inside one manager, refcounted."""

    __slots__ = ("manager", "node")

    def __init__(self, manager: BDDManager, node: int) -> None:
        self.manager = manager
        self.node = node
        manager.incref(node)

    def __del__(self) -> None:
        try:
            self.manager.decref(self.node)
        except Exception:  # pragma: no cover  # repro-lint: disable=R005
            # Deliberately blanket: __del__ runs during interpreter
            # shutdown when the manager's internals may already be torn
            # down, and a raising finaliser would mask the real error.
            pass

    # -- constructors ---------------------------------------------------------

    @classmethod
    def true(cls, manager: BDDManager) -> "BDDFunction":
        """The constant true function."""
        return cls(manager, 1)

    @classmethod
    def false(cls, manager: BDDManager) -> "BDDFunction":
        """The constant false function."""
        return cls(manager, 0)

    @classmethod
    def variable(cls, manager: BDDManager, level: int) -> "BDDFunction":
        """The projection function of the variable at ``level``."""
        return cls(manager, manager.var(level))

    def _coerce(self, other: "BDDFunction") -> int:
        if not isinstance(other, BDDFunction):
            raise BDDError("expected a BDDFunction, got %r" % (other,))
        if other.manager is not self.manager:
            raise BDDError("cannot combine BDD functions from different managers")
        return other.node

    def _wrap(self, node: int) -> "BDDFunction":
        return BDDFunction(self.manager, node)

    # -- boolean structure ----------------------------------------------------

    def __and__(self, other: "BDDFunction") -> "BDDFunction":
        return self._wrap(self.manager.apply_and(self.node, self._coerce(other)))

    def __or__(self, other: "BDDFunction") -> "BDDFunction":
        return self._wrap(self.manager.apply_or(self.node, self._coerce(other)))

    def __xor__(self, other: "BDDFunction") -> "BDDFunction":
        return self._wrap(self.manager.apply_xor(self.node, self._coerce(other)))

    def __invert__(self) -> "BDDFunction":
        return self._wrap(self.manager.negate(self.node))

    def __rshift__(self, other: "BDDFunction") -> "BDDFunction":
        """Implication ``self ⇒ other``."""
        return self._wrap(self.manager.apply("imp", self.node, self._coerce(other)))

    def iff(self, other: "BDDFunction") -> "BDDFunction":
        """Bi-implication ``self ⇔ other``."""
        return self._wrap(self.manager.apply("iff", self.node, self._coerce(other)))

    def ite(self, then: "BDDFunction", orelse: "BDDFunction") -> "BDDFunction":
        """If-then-else with ``self`` as the condition."""
        return self._wrap(self.manager.ite(self.node, self._coerce(then), self._coerce(orelse)))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BDDFunction)
            and other.manager is self.manager
            and other.node == self.node
        )

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash((id(self.manager), self.node))

    def __bool__(self) -> bool:
        raise BDDError(
            "the truth value of a BDDFunction is ambiguous; use .is_false / .is_true "
            "(note: `f and g` would be Python's `and`, not conjunction — use `f & g`)"
        )

    # -- quantification and substitution --------------------------------------

    def restrict(self, level: int, value: bool) -> "BDDFunction":
        """The cofactor with the variable at ``level`` fixed to ``value``."""
        return self._wrap(self.manager.restrict(self.node, level, value))

    def exists(self, levels: Iterable[int]) -> "BDDFunction":
        """Existential quantification over ``levels``."""
        return self._wrap(self.manager.exists(self.node, levels))

    def forall(self, levels: Iterable[int]) -> "BDDFunction":
        """Universal quantification over ``levels``."""
        return self._wrap(self.manager.forall(self.node, levels))

    def relprod(self, other: "BDDFunction", levels: Iterable[int]) -> "BDDFunction":
        """Fused ``∃ levels . (self ∧ other)``."""
        return self._wrap(self.manager.relprod(self.node, self._coerce(other), levels))

    def rename(self, mapping: Mapping[int, int], tag: object = None) -> "BDDFunction":
        """Order-preserving variable substitution (see :meth:`BDDManager.rename`)."""
        return self._wrap(self.manager.rename(self.node, mapping, tag))

    # -- inspection ------------------------------------------------------------

    @property
    def is_true(self) -> bool:
        """Whether this is the constant true function."""
        return self.node == 1

    @property
    def is_false(self) -> bool:
        """Whether this is the constant false function."""
        return self.node == 0

    @property
    def size(self) -> int:
        """The number of internal BDD nodes of this function."""
        return self.manager.node_count(self.node)

    def support(self) -> frozenset:
        """The levels this function depends on."""
        return self.manager.support(self.node)

    def evaluate(self, assignment: Mapping[int, bool]) -> bool:
        """Evaluate under ``{level: value}``."""
        return self.manager.evaluate(self.node, assignment)

    def sat_count(self, levels: Iterable[int]) -> int:
        """The number of satisfying assignments over ``levels``."""
        return self.manager.sat_count(self.node, levels)

    def models(self, levels: Iterable[int]) -> Iterator[Dict[int, bool]]:
        """Iterate the satisfying assignments over ``levels``."""
        return self.manager.iter_models(self.node, levels)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.node == 0:
            return "<BDDFunction false>"
        if self.node == 1:
            return "<BDDFunction true>"
        return "<BDDFunction node=%d size=%d>" % (self.node, self.size)
