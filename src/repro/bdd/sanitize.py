"""Opt-in runtime auditor for the complement-edge BDD manager.

A full structural audit of a :class:`~repro.bdd.manager.BDDManager`:
unique-table canonicality (hash-consing, the regular-``then`` complement
rule, reduction), variable-order consistency, internal reference counts
recomputed from scratch, external handle accounting, and operation
caches referencing only live nodes.  Plus :func:`assert_no_leaks`, a
context manager that catches external-reference leaks (e.g. a fixpoint
memo holding :class:`~repro.bdd.function.BDDFunction` handles past their
scope).

Like :mod:`repro.obs`, the disabled path is effectively free: the
manager's hook sites test one module global (:data:`MODE`) and only call
into this module when sanitizing is switched on.  Enable it with the
``REPRO_SANITIZE=1`` environment variable (read once at import), the
:func:`enable` call, or the ``sanitizers`` pytest fixture.

``MODE`` values: ``0`` off (default), ``1`` full audits at hook sites,
``2`` count-only (the benchmark guard uses this to count how often the
hooks would fire without paying for the audit).
"""

from __future__ import annotations

import gc as _gc
import os
from contextlib import contextmanager
from typing import Dict, Iterator, List

from repro.errors import SanitizerError

__all__ = [
    "MODE",
    "CALLS",
    "enable",
    "enabled",
    "check_manager",
    "maybe_check_manager",
    "assert_no_leaks",
]

#: 0 = off, 1 = audit at every hook site, 2 = count hook firings only.
MODE = 1 if os.environ.get("REPRO_SANITIZE", "") not in ("", "0") else 0

#: Number of hook firings observed in count-only mode (``MODE == 2``).
CALLS = 0


def enable(on: bool = True) -> None:
    """Switch the sanitizer hooks on or off for this process."""
    global MODE
    MODE = 1 if on else 0


def enabled() -> bool:
    return MODE == 1


def maybe_check_manager(manager) -> None:
    """Hook target: audit ``manager`` when enabled, count when counting."""
    global CALLS
    if MODE == 2:
        CALLS += 1
        return
    if MODE:
        check_manager(manager)


def _fail(manager, message: str) -> None:
    raise SanitizerError(
        "BDD sanitizer: %s (manager: %d live nodes, %d vars)"
        % (message, len(manager), manager.num_vars)
    )


def check_manager(manager) -> None:
    """Audit every structural invariant of ``manager``; raise on the first hole.

    The checks mirror what :meth:`BDDManager._mk` and
    :meth:`BDDManager.collect` promise:

    * the variable order maps (``_var2level``/``_level2var``) are inverse
      permutations, one subtable per variable;
    * every unique-table entry is canonical: stored under its own
      ``(lo, hi)`` key, high edge regular (complement bit clear), children
      distinct, live, and strictly below the node in the current order;
    * slot bookkeeping: live slots and free-list slots partition the node
      array, ``len(manager)`` agrees with both;
    * internal reference counts equal the parent counts recomputed from
      the unique table;
    * external references point at live nodes with positive counts;
    * every operation-cache key and value references only live nodes.
    """
    from repro.bdd.manager import TERMINAL_LEVEL

    varr = manager._varr
    lo_ = manager._lo
    hi_ = manager._hi
    ref = manager._ref
    lvl = manager._lvl
    v2l = manager._var2level
    l2v = manager._level2var
    subtables = manager._subtables
    slots = len(varr)

    # -- variable order ----------------------------------------------------
    if not (len(v2l) == len(l2v) == len(subtables)):
        _fail(manager, "var2level/level2var/subtables lengths disagree")
    for var, level in enumerate(v2l):
        if not (0 <= level < len(l2v)) or l2v[level] != var:
            _fail(
                manager,
                "var2level/level2var are not inverse at var %d (level %r)" % (var, level),
            )

    # -- terminal ----------------------------------------------------------
    if varr[0] != -1 or lvl[0] != TERMINAL_LEVEL:
        _fail(manager, "terminal slot 0 corrupted (varr=%d lvl=%d)" % (varr[0], lvl[0]))

    def edge_ok(edge: int) -> bool:
        node = edge >> 1
        return 0 <= node < slots and (node == 0 or varr[node] >= 0)

    # -- unique table ------------------------------------------------------
    seen: Dict[int, int] = {}  # node -> owning var
    recomputed: List[int] = [0] * slots
    for var, table in enumerate(subtables):
        for (lo, hi), node in table.items():
            if not (0 < node < slots):
                _fail(manager, "subtable[%d] maps to out-of-range node %d" % (var, node))
            if node in seen:
                _fail(
                    manager,
                    "node %d appears in subtables of vars %d and %d"
                    % (node, seen[node], var),
                )
            seen[node] = var
            if varr[node] != var:
                _fail(
                    manager,
                    "node %d filed under var %d but varr says %d" % (node, var, varr[node]),
                )
            if lo_[node] != lo or hi_[node] != hi:
                _fail(
                    manager,
                    "node %d stored fields (%d, %d) differ from its key (%d, %d)"
                    % (node, lo_[node], hi_[node], lo, hi),
                )
            if hi & 1:
                _fail(
                    manager,
                    "node %d has a complemented high edge %d (regular-then violated)"
                    % (node, hi),
                )
            if lo == hi:
                _fail(manager, "node %d is unreduced: lo == hi == %d" % (node, lo))
            if lvl[node] != v2l[var]:
                _fail(
                    manager,
                    "node %d caches level %d but var %d sits at level %d"
                    % (node, lvl[node], var, v2l[var]),
                )
            for child_edge in (lo, hi):
                if not edge_ok(child_edge):
                    _fail(
                        manager,
                        "node %d has dead/out-of-range child edge %d" % (node, child_edge),
                    )
                if lvl[child_edge >> 1] <= lvl[node]:
                    _fail(
                        manager,
                        "ordering violated: node %d (level %d) has child %d at level %d"
                        % (node, lvl[node], child_edge >> 1, lvl[child_edge >> 1]),
                    )
                recomputed[child_edge >> 1] += 1

    # -- slot partition ----------------------------------------------------
    live = {node for node in range(1, slots) if varr[node] >= 0}
    if live != set(seen):
        stray = sorted(live.symmetric_difference(seen))[:5]
        _fail(manager, "live slots and unique-table entries disagree (e.g. %r)" % stray)
    free = manager._free
    if len(set(free)) != len(free):
        _fail(manager, "free list contains duplicates")
    for node in free:
        if not (0 < node < slots) or varr[node] != -2:
            _fail(manager, "free-list slot %d is not marked free (varr=%r)" % (node, varr[node]))
    if len(manager) != 1 + len(live):
        _fail(
            manager,
            "live counter %d does not match table population %d" % (len(manager), 1 + len(live)),
        )

    # -- reference counts --------------------------------------------------
    # The terminal is immortal: _free_cascade never decrements it, so its
    # count may drift above the true parent count between collects (collect
    # recomputes it exactly).  Every other live node must match exactly.
    if ref[0] < recomputed[0]:
        _fail(
            manager,
            "terminal refcount %d fell below its %d parents" % (ref[0], recomputed[0]),
        )
    for node in live:
        if ref[node] != recomputed[node]:
            _fail(
                manager,
                "refcount of node %d is %d but %d parents exist"
                % (node, ref[node], recomputed[node]),
            )

    # -- external handles --------------------------------------------------
    for node, count in manager._external.items():
        if count <= 0:
            _fail(manager, "external entry for node %d has non-positive count %d" % (node, count))
        if not (0 < node < slots) or varr[node] < 0:
            _fail(manager, "external reference to dead node %d" % node)

    # -- operation caches --------------------------------------------------
    def check_cache(name: str, key_edges, key_nodes) -> None:
        cache = getattr(manager, "_%s_cache" % name)
        for key, value in cache.data.items():
            for index in key_edges:
                if not edge_ok(key[index]):
                    _fail(
                        manager,
                        "%s cache key %r references dead edge %d" % (name, key, key[index]),
                    )
            for index in key_nodes:
                node = key[index]
                if not (0 <= node < slots) or (node and varr[node] < 0):
                    _fail(
                        manager,
                        "%s cache key %r references dead node %d" % (name, key, node),
                    )
            if not edge_ok(value):
                _fail(manager, "%s cache value %d is a dead edge (key %r)" % (name, value, key))

    check_cache("ite", key_edges=(0, 1, 2), key_nodes=())
    check_cache("restrict", key_edges=(), key_nodes=(0,))
    check_cache("exists", key_edges=(0,), key_nodes=())
    check_cache("relprod", key_edges=(0, 1), key_nodes=())
    check_cache("rename", key_edges=(), key_nodes=(1,))


@contextmanager
def assert_no_leaks(manager, audit: bool = True) -> Iterator[None]:
    """Fail if the block exits still holding new external BDD references.

    Snapshots the manager's external-reference table on entry; on exit,
    after a cyclic garbage collection (so dropped
    :class:`~repro.bdd.function.BDDFunction` handles run their
    finalisers), any node whose external count *grew* is reported as a
    leak.  References released inside the block are fine; so are nodes
    the caller still legitimately holds from before.

    With ``audit=True`` (default) the full :func:`check_manager` audit
    also runs on exit, regardless of :data:`MODE` — the context manager
    is itself the opt-in.
    """
    before = dict(manager._external)
    yield
    _gc.collect()
    after = manager._external
    leaked = {
        node: count - before.get(node, 0)
        for node, count in after.items()
        if count > before.get(node, 0)
    }
    if leaked:
        worst = sorted(leaked.items(), key=lambda item: -item[1])[:10]
        raise SanitizerError(
            "BDD leak check: %d node(s) gained external references that were "
            "never released: %s"
            % (len(leaked), ", ".join("node %d (+%d)" % item for item in worst))
        )
    if audit:
        check_manager(manager)
