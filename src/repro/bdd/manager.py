"""A reduced ordered binary decision diagram (ROBDD) manager.

The manager owns every node: nodes are rows ``(level, low, high)`` in an
append-only table, identified by their integer row index, and *hash-consed*
through a unique table so that structurally equal functions are represented by
the same node id.  Equality of two boolean functions is therefore a single
``==`` on ints, which is what makes the symbolic fixpoint computations of
:mod:`repro.mc.symbolic` terminate cheaply.

Conventions
-----------
* Node ``0`` is the constant *false*, node ``1`` the constant *true*.
* Variables are identified by an integer *level*; lower levels are closer to
  the root (tested first).  The manager imposes no meaning on levels — the
  current/next interleaving used for transition relations is a convention of
  :mod:`repro.kripke.symbolic` (state bit ``k`` lives at level ``2k``, its
  next-state copy at level ``2k + 1``).
* Every operation is memoized: the binary connectives share per-operation
  caches (``apply``), and ``ite``, ``negate``, ``restrict``, ``exists``,
  ``relprod`` and ``rename`` each keep their own.  Caches live as long as the
  manager, which matches the library's compile-once/check-a-family usage.

The recursion depth of every operation is bounded by the number of levels in
the operands' support, so the default interpreter recursion limit comfortably
accommodates the encodings used here (a few dozen levels).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Tuple

from repro.errors import BDDError

__all__ = ["BDDManager", "TERMINAL_LEVEL", "FALSE", "TRUE"]

#: Sentinel level of the two terminal nodes; larger than any variable level.
TERMINAL_LEVEL = 1 << 30

#: The node id of the constant false function.
FALSE = 0

#: The node id of the constant true function.
TRUE = 1


class BDDManager:
    """Owns a shared node table and the memo caches of every BDD operation.

    The manager API works on raw integer node ids; the ergonomic entry point
    is :class:`repro.bdd.BDDFunction`, which wraps a ``(manager, node)`` pair
    with operator overloading.  All node ids returned by one manager are only
    meaningful to that manager.
    """

    def __init__(self) -> None:
        # Rows are (level, low, high); the two terminals point at themselves
        # so that cofactor lookups never need a special case for ids < 2.
        self._nodes: List[Tuple[int, int, int]] = [
            (TERMINAL_LEVEL, 0, 0),
            (TERMINAL_LEVEL, 1, 1),
        ]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._and_cache: Dict[Tuple[int, int], int] = {}
        self._or_cache: Dict[Tuple[int, int], int] = {}
        self._xor_cache: Dict[Tuple[int, int], int] = {}
        self._not_cache: Dict[int, int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._restrict_cache: Dict[Tuple[int, int, int], int] = {}
        self._exists_cache: Dict[Tuple[int, Tuple[int, ...]], int] = {}
        self._relprod_cache: Dict[Tuple[int, int, Tuple[int, ...]], int] = {}
        self._rename_cache: Dict[Tuple[object, int], int] = {}
        #: Cumulative hit/miss counters of the binary apply caches; exposed so
        #: the test-suite can assert that memoization actually engages.
        self.apply_cache_hits = 0
        self.apply_cache_misses = 0

    # -- node table ----------------------------------------------------------

    def __len__(self) -> int:
        """The total number of allocated nodes (including the two terminals)."""
        return len(self._nodes)

    def level_of(self, node: int) -> int:
        """The level tested at ``node`` (``TERMINAL_LEVEL`` for the terminals)."""
        return self._nodes[node][0]

    def low_of(self, node: int) -> int:
        """The low (level-false) cofactor edge of ``node``."""
        return self._nodes[node][1]

    def high_of(self, node: int) -> int:
        """The high (level-true) cofactor edge of ``node``."""
        return self._nodes[node][2]

    def _mk(self, level: int, low: int, high: int) -> int:
        """Hash-consed node constructor enforcing both ROBDD reduction rules."""
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            self._nodes.append(key)
            node = len(self._nodes) - 1
            self._unique[key] = node
        return node

    def var(self, level: int) -> int:
        """The single-variable function that is true iff ``level`` is true."""
        if level < 0 or level >= TERMINAL_LEVEL:
            raise BDDError("variable level %r out of range" % (level,))
        return self._mk(level, 0, 1)

    def nvar(self, level: int) -> int:
        """The single-variable function that is true iff ``level`` is false."""
        if level < 0 or level >= TERMINAL_LEVEL:
            raise BDDError("variable level %r out of range" % (level,))
        return self._mk(level, 1, 0)

    def cube(self, literals: Mapping[int, bool]) -> int:
        """The conjunction of literals ``{level: polarity}`` (a minterm over its keys)."""
        result = 1
        for level in sorted(literals, reverse=True):
            if literals[level]:
                result = self._mk(level, 0, result)
            else:
                result = self._mk(level, result, 0)
        return result

    # -- binary connectives ----------------------------------------------------

    def apply_and(self, u: int, v: int) -> int:
        """Conjunction ``u ∧ v``."""
        if u == v:
            return u
        if u == 0 or v == 0:
            return 0
        if u == 1:
            return v
        if v == 1:
            return u
        if u > v:
            u, v = v, u
        cache = self._and_cache
        key = (u, v)
        result = cache.get(key)
        if result is not None:
            self.apply_cache_hits += 1
            return result
        self.apply_cache_misses += 1
        nodes = self._nodes
        ulevel, ulow, uhigh = nodes[u]
        vlevel, vlow, vhigh = nodes[v]
        if ulevel == vlevel:
            result = self._mk(ulevel, self.apply_and(ulow, vlow), self.apply_and(uhigh, vhigh))
        elif ulevel < vlevel:
            result = self._mk(ulevel, self.apply_and(ulow, v), self.apply_and(uhigh, v))
        else:
            result = self._mk(vlevel, self.apply_and(u, vlow), self.apply_and(u, vhigh))
        cache[key] = result
        return result

    def apply_or(self, u: int, v: int) -> int:
        """Disjunction ``u ∨ v``."""
        if u == v:
            return u
        if u == 1 or v == 1:
            return 1
        if u == 0:
            return v
        if v == 0:
            return u
        if u > v:
            u, v = v, u
        cache = self._or_cache
        key = (u, v)
        result = cache.get(key)
        if result is not None:
            self.apply_cache_hits += 1
            return result
        self.apply_cache_misses += 1
        nodes = self._nodes
        ulevel, ulow, uhigh = nodes[u]
        vlevel, vlow, vhigh = nodes[v]
        if ulevel == vlevel:
            result = self._mk(ulevel, self.apply_or(ulow, vlow), self.apply_or(uhigh, vhigh))
        elif ulevel < vlevel:
            result = self._mk(ulevel, self.apply_or(ulow, v), self.apply_or(uhigh, v))
        else:
            result = self._mk(vlevel, self.apply_or(u, vlow), self.apply_or(u, vhigh))
        cache[key] = result
        return result

    def apply_xor(self, u: int, v: int) -> int:
        """Exclusive disjunction ``u ⊕ v``."""
        if u == v:
            return 0
        if u == 0:
            return v
        if v == 0:
            return u
        if u == 1:
            return self.negate(v)
        if v == 1:
            return self.negate(u)
        if u > v:
            u, v = v, u
        cache = self._xor_cache
        key = (u, v)
        result = cache.get(key)
        if result is not None:
            self.apply_cache_hits += 1
            return result
        self.apply_cache_misses += 1
        nodes = self._nodes
        ulevel, ulow, uhigh = nodes[u]
        vlevel, vlow, vhigh = nodes[v]
        if ulevel == vlevel:
            result = self._mk(ulevel, self.apply_xor(ulow, vlow), self.apply_xor(uhigh, vhigh))
        elif ulevel < vlevel:
            result = self._mk(ulevel, self.apply_xor(ulow, v), self.apply_xor(uhigh, v))
        else:
            result = self._mk(vlevel, self.apply_xor(u, vlow), self.apply_xor(u, vhigh))
        cache[key] = result
        return result

    def apply(self, op: str, u: int, v: int) -> int:
        """Dispatch a named binary connective (``and``/``or``/``xor``/``diff``/``imp``/``iff``)."""
        if op == "and":
            return self.apply_and(u, v)
        if op == "or":
            return self.apply_or(u, v)
        if op == "xor":
            return self.apply_xor(u, v)
        if op == "diff":
            return self.apply_and(u, self.negate(v))
        if op == "imp":
            return self.apply_or(self.negate(u), v)
        if op == "iff":
            return self.negate(self.apply_xor(u, v))
        raise BDDError("unknown apply operation %r" % (op,))

    def negate(self, u: int) -> int:
        """Complement ``¬u``."""
        if u < 2:
            return 1 - u
        cache = self._not_cache
        result = cache.get(u)
        if result is not None:
            return result
        level, low, high = self._nodes[u]
        result = self._mk(level, self.negate(low), self.negate(high))
        cache[u] = result
        cache[result] = u
        return result

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``(f ∧ g) ∨ (¬f ∧ h)``."""
        if f == 1:
            return g
        if f == 0:
            return h
        if g == h:
            return g
        if g == 1 and h == 0:
            return f
        if g == 0 and h == 1:
            return self.negate(f)
        cache = self._ite_cache
        key = (f, g, h)
        result = cache.get(key)
        if result is not None:
            return result
        nodes = self._nodes
        top = min(nodes[f][0], nodes[g][0], nodes[h][0])
        f0, f1 = self._cofactors(f, top)
        g0, g1 = self._cofactors(g, top)
        h0, h1 = self._cofactors(h, top)
        result = self._mk(top, self.ite(f0, g0, h0), self.ite(f1, g1, h1))
        cache[key] = result
        return result

    def _cofactors(self, u: int, level: int) -> Tuple[int, int]:
        ulevel, low, high = self._nodes[u]
        if ulevel != level:
            return u, u
        return low, high

    # -- restriction and quantification ---------------------------------------

    def restrict(self, u: int, level: int, value: bool) -> int:
        """The cofactor ``u[level := value]``."""
        if u < 2:
            return u
        ulevel, low, high = self._nodes[u]
        if ulevel > level:
            return u
        if ulevel == level:
            return high if value else low
        key = (u, level, int(value))
        cache = self._restrict_cache
        result = cache.get(key)
        if result is not None:
            return result
        result = self._mk(
            ulevel, self.restrict(low, level, value), self.restrict(high, level, value)
        )
        cache[key] = result
        return result

    def _cube_levels(self, levels: Iterable[int]) -> Tuple[int, ...]:
        return tuple(sorted(set(levels)))

    def exists(self, u: int, levels: Iterable[int]) -> int:
        """Existential quantification ``∃ levels . u``."""
        return self._exists(u, self._cube_levels(levels))

    def _exists(self, u: int, cube: Tuple[int, ...]) -> int:
        if u < 2 or not cube:
            return u
        ulevel, low, high = self._nodes[u]
        start = 0
        while start < len(cube) and cube[start] < ulevel:
            start += 1
        if start:
            cube = cube[start:]
        if not cube:
            return u
        key = (u, cube)
        cache = self._exists_cache
        result = cache.get(key)
        if result is not None:
            return result
        if ulevel == cube[0]:
            rest = cube[1:]
            result = self.apply_or(self._exists(low, rest), self._exists(high, rest))
        else:
            result = self._mk(ulevel, self._exists(low, cube), self._exists(high, cube))
        cache[key] = result
        return result

    def forall(self, u: int, levels: Iterable[int]) -> int:
        """Universal quantification ``∀ levels . u`` (the dual of :meth:`exists`)."""
        return self.negate(self.exists(self.negate(u), levels))

    def relprod(self, u: int, v: int, levels: Iterable[int]) -> int:
        """The relational product ``∃ levels . (u ∧ v)``, fused.

        Conjunction and quantification are interleaved in one recursion, so
        quantified variables are eliminated as soon as both operands have
        branched on them and the (often much larger) intermediate ``u ∧ v``
        is never materialised.  This is the workhorse of symbolic image and
        pre-image computation.
        """
        return self._relprod(u, v, self._cube_levels(levels))

    def _relprod(self, u: int, v: int, cube: Tuple[int, ...]) -> int:
        if u == 0 or v == 0:
            return 0
        if not cube:
            return self.apply_and(u, v)
        if u == 1:
            return self._exists(v, cube)
        if v == 1:
            return self._exists(u, cube)
        if u > v:
            u, v = v, u
        nodes = self._nodes
        top = min(nodes[u][0], nodes[v][0])
        start = 0
        while start < len(cube) and cube[start] < top:
            start += 1
        if start:
            cube = cube[start:]
        if not cube:
            return self.apply_and(u, v)
        key = (u, v, cube)
        cache = self._relprod_cache
        result = cache.get(key)
        if result is not None:
            return result
        u0, u1 = self._cofactors(u, top)
        v0, v1 = self._cofactors(v, top)
        if cube[0] == top:
            rest = cube[1:]
            low = self._relprod(u0, v0, rest)
            if low == 1:
                result = 1
            else:
                result = self.apply_or(low, self._relprod(u1, v1, rest))
        else:
            result = self._mk(top, self._relprod(u0, v0, cube), self._relprod(u1, v1, cube))
        cache[key] = result
        return result

    # -- renaming ---------------------------------------------------------------

    def rename(self, u: int, mapping: Mapping[int, int], tag: object = None) -> int:
        """Substitute variables per ``mapping`` (level → level).

        The mapping must be strictly order-preserving on the operand's support
        (``a < b`` implies ``mapping[a] < mapping[b]``, with unmapped levels
        keeping their place), so the rename is a single structural walk rather
        than a general composition.  Violations — including ones involving
        *unmapped* support levels — are detected during the walk and raise
        :class:`~repro.errors.BDDError` rather than producing an unordered
        diagram.  The current↔next shifts used by the symbolic Kripke encoding
        satisfy the requirement by construction.  ``tag``, when given,
        identifies the mapping in the memo cache; callers renaming with the
        same mapping repeatedly should pass a stable tag.
        """
        if tag is None:
            tag = tuple(sorted(mapping.items()))
        items = sorted(mapping.items())
        for (a, fa), (b, fb) in zip(items, items[1:]):
            if fa >= fb:
                raise BDDError(
                    "rename mapping is not order-preserving: %r -> %r but %r -> %r"
                    % (a, fa, b, fb)
                )
        return self._rename(u, mapping, tag)

    def _rename(self, u: int, mapping: Mapping[int, int], tag: object) -> int:
        if u < 2:
            return u
        key = (tag, u)
        cache = self._rename_cache
        result = cache.get(key)
        if result is not None:
            return result
        nodes = self._nodes
        level, low, high = nodes[u]
        new_level = mapping.get(level, level)
        new_low = self._rename(low, mapping, tag)
        new_high = self._rename(high, mapping, tag)
        # The renamed children are ordered by induction; the parent must stay
        # strictly above them or the mapping interleaves mapped and unmapped
        # levels — a silent ordering violation without this check.
        if new_level >= min(nodes[new_low][0], nodes[new_high][0]):
            raise BDDError(
                "rename mapping is not order-preserving on the support: level %d "
                "maps to %d, at or below a renamed child" % (level, new_level)
            )
        result = self._mk(new_level, new_low, new_high)
        cache[key] = result
        return result

    # -- inspection --------------------------------------------------------------

    def evaluate(self, u: int, assignment: Mapping[int, bool]) -> bool:
        """Evaluate ``u`` under a (total enough) truth assignment ``{level: value}``."""
        nodes = self._nodes
        while u >= 2:
            level, low, high = nodes[u]
            try:
                u = high if assignment[level] else low
            except KeyError:
                raise BDDError(
                    "assignment does not cover level %d in the function's support" % level
                ) from None
        return u == 1

    def support(self, u: int) -> frozenset:
        """The set of levels the function actually depends on."""
        seen = set()
        levels = set()
        stack = [u]
        nodes = self._nodes
        while stack:
            node = stack.pop()
            if node < 2 or node in seen:
                continue
            seen.add(node)
            level, low, high = nodes[node]
            levels.add(level)
            stack.append(low)
            stack.append(high)
        return frozenset(levels)

    def node_count(self, u: int) -> int:
        """The number of internal (non-terminal) nodes reachable from ``u``."""
        seen = set()
        stack = [u]
        nodes = self._nodes
        while stack:
            node = stack.pop()
            if node < 2 or node in seen:
                continue
            seen.add(node)
            _, low, high = nodes[node]
            stack.append(low)
            stack.append(high)
        return len(seen)

    def sat_count(self, u: int, levels: Iterable[int]) -> int:
        """The number of satisfying assignments over the variable set ``levels``.

        ``levels`` must cover the function's support; variables in ``levels``
        that the function does not test double the count (the usual minterm
        weighting).  This is how the symbolic engine reports state-space sizes
        without ever enumerating states.
        """
        cube = self._cube_levels(levels)
        position = {level: i for i, level in enumerate(cube)}
        total = len(cube)
        nodes = self._nodes
        memo: Dict[int, int] = {0: 0, 1: 1}

        def pos(node: int) -> int:
            if node < 2:
                return total
            level = nodes[node][0]
            try:
                return position[level]
            except KeyError:
                raise BDDError(
                    "sat_count variable set does not cover support level %d" % level
                ) from None

        def count(node: int) -> int:
            cached = memo.get(node)
            if cached is not None:
                return cached
            level, low, high = nodes[node]
            here = pos(node)
            result = count(low) << (pos(low) - here - 1)
            result += count(high) << (pos(high) - here - 1)
            memo[node] = result
            return result

        return count(u) << pos(u)

    def iter_models(self, u: int, levels: Iterable[int]) -> Iterator[Dict[int, bool]]:
        """Yield every satisfying assignment of ``u`` over ``levels`` as a dict.

        Intended for decoding *small* satisfying sets (tests, examples); the
        scalable counterpart is :meth:`sat_count`.
        """
        cube = self._cube_levels(levels)
        support = self.support(u)
        if not support <= set(cube):
            raise BDDError(
                "iter_models variable set does not cover support levels %s"
                % sorted(support - set(cube))
            )
        nodes = self._nodes

        def rec(node: int, index: int) -> Iterator[Dict[int, bool]]:
            if node == 0:
                return
            if index == len(cube):
                yield {}
                return
            level = cube[index]
            if node >= 2 and nodes[node][0] == level:
                _, low, high = nodes[node]
                for model in rec(low, index + 1):
                    model[level] = False
                    yield model
                for model in rec(high, index + 1):
                    model[level] = True
                    yield model
            else:
                for model in rec(node, index + 1):
                    positive = dict(model)
                    model[level] = False
                    yield model
                    positive[level] = True
                    yield positive

        return rec(u, 0)
