"""A production-grade ROBDD manager with complement edges.

The manager owns every node.  A *node* is a row ``(var, low, high)`` in a
table of parallel lists; a boolean function is referenced by an *edge* — an
integer ``node_index << 1 | complement_bit``.  The complement bit negates the
whole function below it, so negation is a single XOR (``edge ^ 1``) that
allocates nothing.  Canonical form:

* the terminal node ``0`` denotes the constant *false*; edge ``0`` is false
  and edge ``1`` (the complemented terminal) is true — the classic ``FALSE``/
  ``TRUE`` constants keep their historical values;
* the *high* (then) edge of every stored node is regular (uncomplemented);
  :meth:`_mk` pushes stray complement bits onto the low edge and the result,
  so structurally equal functions are represented by exactly one edge and
  equality of two functions is a single ``==`` on ints.

Variables vs. levels
--------------------
A function is built over *variables* — stable integer ids that never change —
while the *order* in which they are tested (their *levels*) is owned by the
manager and may change at run time (:meth:`reorder`, Rudell sifting).  The
two coincide until the first reorder.  All public operations take variable
ids; encodings built by :mod:`repro.kripke.symbolic` therefore survive
reorders unchanged.  Variables can be tied into *groups*
(:meth:`set_variable_groups`) that sifting moves as contiguous blocks — the
symbolic Kripke layer groups each current/next pair so its renames stay
order-preserving under any reorder.  :meth:`var_order` /
:meth:`set_var_order` persist and restore an order explicitly.

Operations
----------
Every binary connective is routed through one unified, *iterative*
(explicit-stack) :meth:`ite` with the standard normalizations, sharing a
single operation cache — deep variable orders can never hit Python's
recursion limit.  ``exists``/``relprod``/``rename``/``restrict`` run their
own explicit-stack walks on top of the same machinery.  All operation caches
are bounded (stale halves are evicted wholesale), instrumented with
hit/miss/evict counters, clearable via :meth:`clear_caches`, and cleared
automatically by :meth:`collect` and :meth:`reorder`.

Memory management
-----------------
External references are counted per node (:meth:`incref`/:meth:`decref`,
managed automatically by :class:`repro.bdd.BDDFunction` handles).
:meth:`collect` runs a mark-and-sweep over the unique table: it marks the
closure of the externally referenced nodes and frees everything else,
returning freed slots to a free list.  Reordering likewise reclaims dead
nodes as it sweeps levels.  **Contract:** any edge held as a raw int across
manager calls is invisible to GC and sifting's dead-node reclamation — wrap
it in a ``BDDFunction`` (or ``incref`` it) before calling :meth:`collect`,
:meth:`reorder`, or enabling ``auto_reorder_threshold``.

:meth:`stats` exposes live/peak node counts, GC and reorder counters, and
per-cache hit/miss/evict statistics as a :class:`ManagerStats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice as _islice
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import repro.bdd.sanitize as _sanitize
from repro.errors import BDDError
from repro.obs import metrics as _metrics
from repro.obs.trace import event as _obs_event
from repro.obs.trace import span as _obs_span
from repro.runtime.limits import checkpoint as _checkpoint

__all__ = [
    "BDDManager",
    "ManagerStats",
    "CacheStats",
    "TERMINAL_LEVEL",
    "FALSE",
    "TRUE",
]

#: Sentinel level of the terminal node; larger than any variable level.
TERMINAL_LEVEL = 1 << 30

#: The edge of the constant false function.
FALSE = 0

#: The edge of the constant true function (the complemented terminal).
TRUE = 1

#: Default bound on the number of entries of each operation cache.
_DEFAULT_CACHE_LIMIT = 1 << 20


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss/evict counters of one bounded operation cache."""

    name: str
    size: int
    limit: int
    hits: int
    misses: int
    evictions: int

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when the cache was never consulted)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


@dataclass(frozen=True)
class ManagerStats:
    """A point-in-time snapshot of a manager's health counters."""

    live_nodes: int
    peak_live_nodes: int
    num_vars: int
    external_references: int
    gc_runs: int
    gc_reclaimed: int
    reorder_runs: int
    sift_swaps: int
    caches: Tuple[CacheStats, ...]

    def as_dict(self) -> Dict[str, object]:
        """Flatten into a JSON-serialisable dictionary (for ``--profile``/benchmarks)."""
        return {
            "live_nodes": self.live_nodes,
            "peak_live_nodes": self.peak_live_nodes,
            "num_vars": self.num_vars,
            "external_references": self.external_references,
            "gc_runs": self.gc_runs,
            "gc_reclaimed": self.gc_reclaimed,
            "reorder_runs": self.reorder_runs,
            "sift_swaps": self.sift_swaps,
            "caches": {
                cache.name: {
                    "size": cache.size,
                    "hits": cache.hits,
                    "misses": cache.misses,
                    "evictions": cache.evictions,
                }
                for cache in self.caches
            },
        }


class _OpCache:
    """A bounded memo table with hit/miss/evict accounting.

    Eviction drops the *oldest half* of the table (dicts preserve insertion
    order), so the entries a running fixpoint is actively re-hitting — the
    recently inserted ones — survive; clearing wholesale would force every
    subsequent iteration to recompute the shared substructure from scratch.
    """

    __slots__ = ("name", "data", "limit", "hits", "misses", "evictions")

    def __init__(self, name: str, limit: int) -> None:
        self.name = name
        self.data: Dict = {}
        self.limit = limit
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def room(self) -> None:
        """Make room for one insert, evicting the oldest half when full."""
        data = self.data
        if len(data) >= self.limit:
            drop = self.limit // 2 + 1
            for key in list(_islice(iter(data), drop)):
                del data[key]
            self.evictions += drop
            # A cache spill marks a working set outgrowing its bounds —
            # a natural budget/cancellation boundary (runs are seconds
            # from spilling, not microseconds).
            _checkpoint("bdd.cache.spill")

    def clear(self) -> int:
        """Drop every entry (not counted as eviction); return how many were dropped."""
        dropped = len(self.data)
        self.data.clear()
        return dropped

    def stats(self) -> CacheStats:
        return CacheStats(
            self.name, len(self.data), self.limit, self.hits, self.misses, self.evictions
        )


class BDDManager:
    """Owns the shared node table, the operation caches, and the variable order.

    Parameters
    ----------
    cache_limit:
        Entry bound of each operation cache (see :class:`_OpCache`).
    auto_reorder_threshold:
        When set, crossing this live-node count triggers an automatic
        :meth:`reorder` at the next operation boundary (the threshold then
        doubles).  Only enable it when every client-held edge is externally
        referenced — see the module docstring's contract.
    """

    def __init__(
        self,
        cache_limit: int = _DEFAULT_CACHE_LIMIT,
        auto_reorder_threshold: Optional[int] = None,
    ) -> None:
        # Node table: parallel lists indexed by node.  Node 0 is the terminal.
        self._varr: List[int] = [-1]
        self._lo: List[int] = [0]
        self._hi: List[int] = [0]
        self._ref: List[int] = [0]  # internal parent count
        self._lvl: List[int] = [TERMINAL_LEVEL]
        self._free: List[int] = []
        self._live = 1
        self._peak = 1
        # Variable order.
        self._var2level: List[int] = []
        self._level2var: List[int] = []
        self._subtables: List[Dict[Tuple[int, int], int]] = []
        self._blocks: List[List[int]] = []  # sifting blocks, sorted by level
        # External (handle) references: node -> count.
        self._external: Dict[int, int] = {}
        # Bounded operation caches.
        self._ite_cache = _OpCache("ite", cache_limit)
        self._exists_cache = _OpCache("exists", cache_limit)
        self._relprod_cache = _OpCache("relprod", cache_limit)
        self._rename_cache = _OpCache("rename", cache_limit)
        self._restrict_cache = _OpCache("restrict", cache_limit)
        self._caches = (
            self._ite_cache,
            self._exists_cache,
            self._relprod_cache,
            self._rename_cache,
            self._restrict_cache,
        )
        # Interning tables keeping cache keys small-int-only: quantification
        # cubes and rename tags are mapped to dense ids, so a cache lookup
        # never re-hashes a long tuple.  Cleared together with the caches.
        self._cube_intern: Dict[Tuple[int, ...], int] = {}
        self._tag_intern: Dict[Tuple, int] = {}
        # Health counters.
        self._gc_runs = 0
        self._gc_reclaimed = 0
        self._reorder_runs = 0
        self._sift_swaps = 0
        self.auto_reorder_threshold = auto_reorder_threshold

    # -- node table ----------------------------------------------------------

    def __len__(self) -> int:
        """The number of live nodes (including the terminal)."""
        return self._live

    @property
    def num_vars(self) -> int:
        """The number of variables the manager knows about."""
        return len(self._var2level)

    def var_of(self, edge: int) -> int:
        """The variable tested at ``edge``'s node (``-1`` for the terminal)."""
        return self._varr[edge >> 1]

    def level_of(self, edge: int) -> int:
        """The current level of ``edge``'s node (``TERMINAL_LEVEL`` for terminals)."""
        return self._lvl[edge >> 1]

    def low_of(self, edge: int) -> int:
        """The low (else) cofactor edge, with ``edge``'s complement applied."""
        return self._lo[edge >> 1] ^ (edge & 1)

    def high_of(self, edge: int) -> int:
        """The high (then) cofactor edge, with ``edge``'s complement applied."""
        return self._hi[edge >> 1] ^ (edge & 1)

    def _ensure_var(self, var: int) -> None:
        if var < 0 or var >= TERMINAL_LEVEL:
            raise BDDError("variable id %r out of range" % (var,))
        while len(self._var2level) <= var:
            fresh = len(self._var2level)
            self._var2level.append(fresh)
            self._level2var.append(fresh)
            self._subtables.append({})
            self._blocks.append([fresh])

    def _mk(self, var: int, lo: int, hi: int) -> int:
        """Hash-consed node constructor enforcing the canonical form.

        Both reduction rules plus the complement-edge rule: a node's high
        edge is always regular; a complemented high edge flips both children
        and the returned edge instead.
        """
        if lo == hi:
            return lo
        flip = hi & 1
        if flip:
            lo ^= 1
            hi ^= 1
        table = self._subtables[var]
        key = (lo, hi)
        node = table.get(key)
        if node is None:
            free = self._free
            if free:
                node = free.pop()
                self._varr[node] = var
                self._lo[node] = lo
                self._hi[node] = hi
                self._ref[node] = 0
                self._lvl[node] = self._var2level[var]
            else:
                node = len(self._varr)
                self._varr.append(var)
                self._lo.append(lo)
                self._hi.append(hi)
                self._ref.append(0)
                self._lvl.append(self._var2level[var])
            table[key] = node
            self._ref[lo >> 1] += 1
            self._ref[hi >> 1] += 1
            self._live += 1
            if self._live > self._peak:
                self._peak = self._live
            if not self._live & 4095:
                # Every 4096th allocation: where a blowing-up build hits
                # the bdd_nodes budget ceiling.
                _checkpoint("bdd.alloc", bdd_nodes=self._live)
        return node << 1 | flip

    def var(self, var: int) -> int:
        """The single-variable function that is true iff ``var`` is true."""
        self._ensure_var(var)
        return self._mk(var, 0, 1)

    def nvar(self, var: int) -> int:
        """The single-variable function that is true iff ``var`` is false."""
        return self.var(var) ^ 1

    def cube(self, literals: Mapping[int, bool]) -> int:
        """The conjunction of literals ``{var: polarity}`` (a minterm over its keys)."""
        for var in literals:
            self._ensure_var(var)
        self._maybe_reorder()
        v2l = self._var2level
        result = 1
        for var in sorted(literals, key=v2l.__getitem__, reverse=True):
            if literals[var]:
                result = self._mk(var, 0, result)
            else:
                result = self._mk(var, result, 0)
        return result

    # -- reference counting ------------------------------------------------------

    def incref(self, edge: int) -> int:
        """Register one external reference to ``edge``'s node; returns ``edge``."""
        node = edge >> 1
        if node:
            external = self._external
            external[node] = external.get(node, 0) + 1
        return edge

    def decref(self, edge: int) -> None:
        """Drop one external reference previously registered with :meth:`incref`."""
        node = edge >> 1
        if node:
            external = self._external
            count = external.get(node, 0)
            if count <= 1:
                external.pop(node, None)
            else:
                external[node] = count - 1

    # -- the unified ITE core ----------------------------------------------------

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else ``(f ∧ g) ∨ (¬f ∧ h)`` — the one connective all others use."""
        self._maybe_reorder()
        return self._ite(f, g, h)

    def _ite(self, f: int, g: int, h: int) -> int:
        """Iterative (explicit-stack) normalized ITE.

        Frames: ``(0, f, g, h)`` evaluates a subproblem; ``(1, var, key,
        flip)`` pops the two child results, builds the node, and memoizes.
        Normalization forces a regular ``f`` (swapping the branches) and a
        regular then-branch (complementing the output), so equivalent calls
        share one entry in the single operation cache.
        """
        cache = self._ite_cache
        data = cache.data
        lvl = self._lvl
        lo_ = self._lo
        hi_ = self._hi
        l2v = self._level2var
        tasks = [(0, f, g, h)]
        push = tasks.append
        results: List[int] = []
        rpush = results.append
        while tasks:
            frame = tasks.pop()
            if frame[0] == 0:
                f, g, h = frame[1], frame[2], frame[3]
                # Terminal and absorption cases.
                if f < 2:
                    rpush(g if f else h)
                    continue
                if g == h:
                    rpush(g)
                    continue
                if f & 1:
                    f ^= 1
                    g, h = h, g
                nf = f ^ 1
                if g == f:
                    g = 1
                elif g == nf:
                    g = 0
                if h == f:
                    h = 0
                elif h == nf:
                    h = 1
                if g == h:
                    rpush(g)
                    continue
                if g == 1 and h == 0:
                    rpush(f)
                    continue
                if g == 0 and h == 1:
                    rpush(nf)
                    continue
                flip = g & 1
                if flip:
                    g ^= 1
                    h ^= 1
                if h == 0 and g < f:  # conjunction commutes
                    f, g = g, f
                key = (f, g, h)
                r = data.get(key)
                if r is not None:
                    cache.hits += 1
                    rpush(r ^ flip)
                    continue
                cache.misses += 1
                fn = f >> 1
                gn = g >> 1
                hn = h >> 1
                fl = lvl[fn]
                gl = lvl[gn]
                hl = lvl[hn]
                top = fl
                if gl < top:
                    top = gl
                if hl < top:
                    top = hl
                if fl == top:
                    f1 = hi_[fn]  # f is regular here
                    f0 = lo_[fn]
                else:
                    f1 = f0 = f
                if gl == top:
                    c = g & 1
                    g1 = hi_[gn] ^ c
                    g0 = lo_[gn] ^ c
                else:
                    g1 = g0 = g
                if hl == top:
                    c = h & 1
                    h1 = hi_[hn] ^ c
                    h0 = lo_[hn] ^ c
                else:
                    h1 = h0 = h
                push((1, l2v[top], key, flip))
                push((0, f0, g0, h0))
                push((0, f1, g1, h1))
            else:
                r0 = results.pop()  # low branch (evaluated second)
                r1 = results.pop()  # high branch (evaluated first)
                r = self._mk(frame[1], r0, r1)
                cache.room()
                data[frame[2]] = r
                rpush(r ^ frame[3])
        return results[-1]

    # -- binary connectives (all ITE) ---------------------------------------------

    def negate(self, u: int) -> int:
        """Complement ``¬u`` — an O(1) pointer flip under complement edges."""
        return u ^ 1

    def apply_and(self, u: int, v: int) -> int:
        """Conjunction ``u ∧ v``."""
        if u == v:
            return u
        if u == 0 or v == 0:
            return 0
        if u == 1:
            return v
        if v == 1:
            return u
        self._maybe_reorder()
        return self._ite(u, v, 0)

    def apply_or(self, u: int, v: int) -> int:
        """Disjunction ``u ∨ v``."""
        if u == v:
            return u
        if u == 1 or v == 1:
            return 1
        if u == 0:
            return v
        if v == 0:
            return u
        self._maybe_reorder()
        return self._ite(u, 1, v)

    def apply_xor(self, u: int, v: int) -> int:
        """Exclusive disjunction ``u ⊕ v``."""
        if u == v:
            return 0
        self._maybe_reorder()
        return self._ite(u, v ^ 1, v)

    def apply(self, op: str, u: int, v: int) -> int:
        """Dispatch a named binary connective (``and``/``or``/``xor``/``diff``/``imp``/``iff``)."""
        if op == "and":
            return self.apply_and(u, v)
        if op == "or":
            return self.apply_or(u, v)
        if op == "xor":
            return self.apply_xor(u, v)
        if op == "diff":
            return self.apply_and(u, v ^ 1)
        if op == "imp":
            return self.apply_or(u ^ 1, v)
        if op == "iff":
            return self.apply_xor(u, v) ^ 1
        raise BDDError("unknown apply operation %r" % (op,))

    # -- restriction and quantification ---------------------------------------

    def restrict(self, u: int, var: int, value: bool) -> int:
        """The cofactor ``u[var := value]`` (explicit-stack walk)."""
        self._ensure_var(var)
        self._maybe_reorder()
        target = self._var2level[var]
        branch = 2 if value else 1  # index into (lo, hi) selection below
        cache = self._restrict_cache
        data = cache.data
        lvl = self._lvl
        lo_ = self._lo
        hi_ = self._hi
        l2v = self._level2var
        tasks: List[Tuple] = [(0, u)]
        results: List[int] = []
        while tasks:
            frame = tasks.pop()
            if frame[0] == 0:
                e = frame[1]
                n = e >> 1
                el = lvl[n]
                if el > target:  # includes the terminal
                    results.append(e)
                    continue
                c = e & 1
                if el == target:
                    results.append((hi_[n] if branch == 2 else lo_[n]) ^ c)
                    continue
                key = (n, target, branch)
                r = data.get(key)
                if r is not None:
                    cache.hits += 1
                    results.append(r ^ c)
                    continue
                cache.misses += 1
                tasks.append((1, l2v[el], key, c))
                tasks.append((0, lo_[n]))
                tasks.append((0, hi_[n]))
            else:
                r0 = results.pop()
                r1 = results.pop()
                r = self._mk(frame[1], r0, r1)
                cache.room()
                data[frame[2]] = r
                results.append(r ^ frame[3])
        return results[-1]

    def _level_cube(self, variables: Iterable[int]) -> Tuple[Tuple[int, ...], int]:
        """Normalize a variable set into sorted *current* levels plus a dense id."""
        unique = set(variables)
        for var in unique:
            self._ensure_var(var)
        v2l = self._var2level
        cube = tuple(sorted(v2l[var] for var in unique))
        intern = self._cube_intern
        cube_id = intern.get(cube)
        if cube_id is None:
            cube_id = len(intern)
            intern[cube] = cube_id
        return cube, cube_id

    def exists(self, u: int, variables: Iterable[int]) -> int:
        """Existential quantification ``∃ variables . u``."""
        self._maybe_reorder()
        cube, cube_id = self._level_cube(variables)
        return self._exists(u, cube, cube_id, 0)

    def forall(self, u: int, variables: Iterable[int]) -> int:
        """Universal quantification ``∀ variables . u`` (the dual of :meth:`exists`)."""
        self._maybe_reorder()
        cube, cube_id = self._level_cube(variables)
        return self._exists(u ^ 1, cube, cube_id, 0) ^ 1

    def _exists(self, u: int, cube: Tuple[int, ...], cube_id: int, start: int) -> int:
        """Iterative existential quantification over a level cube.

        Frames: ``(0, e, i)`` evaluate; ``(1, high, i, key)`` inspect the low
        result of a quantified level (shortcutting on true); ``(2, var,
        key)`` rebuild an unquantified level; ``(3, low, key)`` OR-combine.
        """
        ncube = len(cube)
        cache = self._exists_cache
        data = cache.data
        lvl = self._lvl
        lo_ = self._lo
        hi_ = self._hi
        l2v = self._level2var
        tasks: List[Tuple] = [(0, u, start)]
        results: List[int] = []
        while tasks:
            frame = tasks.pop()
            tag = frame[0]
            if tag == 0:
                e, i = frame[1], frame[2]
                if e < 2:
                    results.append(e)
                    continue
                n = e >> 1
                el = lvl[n]
                while i < ncube and cube[i] < el:
                    i += 1
                if i == ncube:
                    results.append(e)
                    continue
                key = (e, cube_id, i)
                r = data.get(key)
                if r is not None:
                    cache.hits += 1
                    results.append(r)
                    continue
                cache.misses += 1
                c = e & 1
                low = lo_[n] ^ c
                high = hi_[n] ^ c
                if cube[i] == el:
                    tasks.append((1, high, i + 1, key))
                    tasks.append((0, low, i + 1))
                else:
                    tasks.append((2, l2v[el], key))
                    tasks.append((0, low, i))
                    tasks.append((0, high, i))
            elif tag == 1:
                rl = results.pop()
                key = frame[3]
                if rl == 1:
                    cache.room()
                    data[key] = 1
                    results.append(1)
                else:
                    tasks.append((3, rl, key))
                    tasks.append((0, frame[1], frame[2]))
            elif tag == 2:
                rl = results.pop()
                rh = results.pop()
                r = self._mk(frame[1], rl, rh)
                cache.room()
                data[frame[2]] = r
                results.append(r)
            else:
                rh = results.pop()
                r = self._ite(frame[1], 1, rh)
                cache.room()
                data[frame[2]] = r
                results.append(r)
        return results[-1]

    def relprod(self, u: int, v: int, variables: Iterable[int]) -> int:
        """The relational product ``∃ variables . (u ∧ v)``, fused.

        Conjunction and quantification are interleaved in one explicit-stack
        walk, so quantified variables are eliminated as soon as both operands
        have branched on them and the (often much larger) intermediate
        ``u ∧ v`` is never materialised.  This is the workhorse of clustered
        image and pre-image computation.
        """
        self._maybe_reorder()
        cube, cube_id = self._level_cube(variables)
        return self._relprod(u, v, cube, cube_id, 0)

    def _relprod(
        self, u: int, v: int, cube: Tuple[int, ...], cube_id: int, start: int
    ) -> int:
        ncube = len(cube)
        cache = self._relprod_cache
        data = cache.data
        lvl = self._lvl
        lo_ = self._lo
        hi_ = self._hi
        l2v = self._level2var
        tasks: List[Tuple] = [(0, u, v, start)]
        results: List[int] = []
        while tasks:
            frame = tasks.pop()
            tag = frame[0]
            if tag == 0:
                u, v, i = frame[1], frame[2], frame[3]
                if u == 0 or v == 0:
                    results.append(0)
                    continue
                if u == 1:
                    results.append(self._exists(v, cube, cube_id, i))
                    continue
                if v == 1:
                    results.append(self._exists(u, cube, cube_id, i))
                    continue
                if u > v:
                    u, v = v, u
                un = u >> 1
                vn = v >> 1
                ul = lvl[un]
                vl = lvl[vn]
                top = ul if ul < vl else vl
                while i < ncube and cube[i] < top:
                    i += 1
                if i == ncube:
                    results.append(self._ite(u, v, 0))
                    continue
                key = (u, v, cube_id, i)
                r = data.get(key)
                if r is not None:
                    cache.hits += 1
                    results.append(r)
                    continue
                cache.misses += 1
                if ul == top:
                    c = u & 1
                    u1 = hi_[un] ^ c
                    u0 = lo_[un] ^ c
                else:
                    u1 = u0 = u
                if vl == top:
                    c = v & 1
                    v1 = hi_[vn] ^ c
                    v0 = lo_[vn] ^ c
                else:
                    v1 = v0 = v
                if cube[i] == top:
                    tasks.append((1, u1, v1, i + 1, key))
                    tasks.append((0, u0, v0, i + 1))
                else:
                    tasks.append((2, l2v[top], key))
                    tasks.append((0, u0, v0, i))
                    tasks.append((0, u1, v1, i))
            elif tag == 1:
                rl = results.pop()
                key = frame[4]
                if rl == 1:
                    cache.room()
                    data[key] = 1
                    results.append(1)
                else:
                    tasks.append((3, rl, key))
                    tasks.append((0, frame[1], frame[2], frame[3]))
            elif tag == 2:
                rl = results.pop()
                rh = results.pop()
                r = self._mk(frame[1], rl, rh)
                cache.room()
                data[frame[2]] = r
                results.append(r)
            else:
                rh = results.pop()
                r = self._ite(frame[1], 1, rh)
                cache.room()
                data[frame[2]] = r
                results.append(r)
        return results[-1]

    # -- renaming ---------------------------------------------------------------

    def rename(self, u: int, mapping: Mapping[int, int], tag: object = None) -> int:
        """Substitute variables per ``mapping`` (var → var).

        The mapping must be strictly order-preserving on the operand's
        support under the *current* level order (with unmapped variables
        keeping their place), so the rename is a single structural walk
        rather than a general composition; violations — including ones
        involving unmapped support variables — are detected during the walk.
        Cache entries are keyed by a canonical ``tuple(sorted(mapping.items()))``
        derived from the mapping's content, so semantically identical
        renamings share entries regardless of the mapping object identity
        (``tag`` is accepted for backwards compatibility and ignored).
        """
        for var, target in mapping.items():
            self._ensure_var(var)
            self._ensure_var(target)
        self._maybe_reorder()
        canonical = tuple(sorted(mapping.items()))
        intern = self._tag_intern
        tag_id = intern.get(canonical)
        if tag_id is None:
            tag_id = len(intern)
            intern[canonical] = tag_id
        v2l = self._var2level
        items = sorted(mapping.items(), key=lambda item: v2l[item[0]])
        for (_, fa), (_, fb) in zip(items, items[1:]):
            if v2l[fa] >= v2l[fb]:
                raise BDDError(
                    "rename mapping is not order-preserving under the current "
                    "variable order: %r" % (dict(mapping),)
                )
        return self._rename(u, dict(mapping), tag_id)

    def _rename(self, u: int, mapping: Dict[int, int], tag: int) -> int:
        cache = self._rename_cache
        data = cache.data
        varr = self._varr
        lo_ = self._lo
        hi_ = self._hi
        lvl = self._lvl
        v2l = self._var2level
        tasks: List[Tuple] = [(0, u)]
        results: List[int] = []
        while tasks:
            frame = tasks.pop()
            if frame[0] == 0:
                e = frame[1]
                n = e >> 1
                if n == 0:
                    results.append(e)
                    continue
                c = e & 1
                key = (tag, n)
                r = data.get(key)
                if r is not None:
                    cache.hits += 1
                    results.append(r ^ c)
                    continue
                cache.misses += 1
                var = varr[n]
                tasks.append((1, mapping.get(var, var), key, c))
                tasks.append((0, lo_[n]))
                tasks.append((0, hi_[n]))
            else:
                rl = results.pop()
                rh = results.pop()
                new_var = frame[1]
                new_level = v2l[new_var]
                child_top = lvl[rl >> 1]
                other = lvl[rh >> 1]
                if other < child_top:
                    child_top = other
                if new_level >= child_top:
                    raise BDDError(
                        "rename mapping is not order-preserving on the support: "
                        "variable %d maps at or below a renamed child" % (new_var,)
                    )
                r = self._mk(new_var, rl, rh)
                cache.room()
                data[frame[2]] = r
                results.append(r ^ frame[3])
        return results[-1]

    # -- inspection --------------------------------------------------------------

    def evaluate(self, u: int, assignment: Mapping[int, bool]) -> bool:
        """Evaluate ``u`` under a (total enough) truth assignment ``{var: value}``."""
        varr = self._varr
        lo_ = self._lo
        hi_ = self._hi
        while u >= 2:
            n = u >> 1
            try:
                branch = assignment[varr[n]]
            except KeyError:
                raise BDDError(
                    "assignment does not cover variable %d in the function's support"
                    % varr[n]
                ) from None
            u = (hi_[n] if branch else lo_[n]) ^ (u & 1)
        return u == 1

    def support(self, u: int) -> frozenset:
        """The set of variables the function actually depends on."""
        seen = set()
        variables = set()
        stack = [u >> 1]
        varr = self._varr
        lo_ = self._lo
        hi_ = self._hi
        while stack:
            node = stack.pop()
            if not node or node in seen:
                continue
            seen.add(node)
            variables.add(varr[node])
            stack.append(lo_[node] >> 1)
            stack.append(hi_[node] >> 1)
        return frozenset(variables)

    def node_count(self, u: int) -> int:
        """The number of internal (non-terminal) nodes reachable from ``u``."""
        seen = set()
        stack = [u >> 1]
        lo_ = self._lo
        hi_ = self._hi
        while stack:
            node = stack.pop()
            if not node or node in seen:
                continue
            seen.add(node)
            stack.append(lo_[node] >> 1)
            stack.append(hi_[node] >> 1)
        return len(seen)

    def sat_count(self, u: int, variables: Iterable[int]) -> int:
        """The number of satisfying assignments over the variable set ``variables``.

        ``variables`` must cover the function's support; variables in the set
        that the function does not test double the count (the usual minterm
        weighting).  Complemented edges count as ``2^k - count(node)`` over
        the remaining variables, so no negation is ever materialised.
        """
        cube, _ = self._level_cube(variables)
        total = len(cube)
        position = {level: i for i, level in enumerate(cube)}
        lvl = self._lvl
        lo_ = self._lo
        hi_ = self._hi
        counts: Dict[int, int] = {0: 0}

        def pos_of(node: int) -> int:
            if not node:
                return total
            try:
                return position[lvl[node]]
            except KeyError:
                raise BDDError(
                    "sat_count variable set does not cover support variable %d"
                    % self._varr[node]
                ) from None

        # Iterative post-order: compute counts children-first.
        stack = [u >> 1]
        while stack:
            node = stack[-1]
            if node in counts:
                stack.pop()
                continue
            ln = lo_[node] >> 1
            hn = hi_[node] >> 1
            pending = False
            if ln not in counts:
                stack.append(ln)
                pending = True
            if hn not in counts:
                stack.append(hn)
                pending = True
            if pending:
                continue
            stack.pop()
            here = pos_of(node)
            result = 0
            for edge in (lo_[node], hi_[node]):
                child = edge >> 1
                p = pos_of(child)
                base = counts[child]
                if edge & 1:
                    base = (1 << (total - p)) - base
                result += base << (p - here - 1)
            counts[node] = result

        node = u >> 1
        p = pos_of(node)
        base = counts[node]
        if u & 1:
            base = (1 << (total - p)) - base
        return base << p

    def iter_models(self, u: int, variables: Iterable[int]) -> Iterator[Dict[int, bool]]:
        """Yield every satisfying assignment of ``u`` over ``variables`` as a dict.

        Intended for decoding *small* satisfying sets (tests, examples); the
        scalable counterpart is :meth:`sat_count`.
        """
        for var in set(variables):
            self._ensure_var(var)
        v2l = self._var2level
        order = sorted(set(variables), key=v2l.__getitem__)
        support = self.support(u)
        if not support <= set(order):
            raise BDDError(
                "iter_models variable set does not cover support variables %s"
                % sorted(support - set(order))
            )
        lvl = self._lvl
        lo_ = self._lo
        hi_ = self._hi

        def rec(e: int, index: int) -> Iterator[Dict[int, bool]]:
            if e == 0:
                return
            if index == len(order):
                yield {}
                return
            var = order[index]
            n = e >> 1
            if n and lvl[n] == v2l[var]:
                c = e & 1
                for model in rec(lo_[n] ^ c, index + 1):
                    model[var] = False
                    yield model
                for model in rec(hi_[n] ^ c, index + 1):
                    model[var] = True
                    yield model
            else:
                for model in rec(e, index + 1):
                    positive = dict(model)
                    model[var] = False
                    yield model
                    positive[var] = True
                    yield positive

        return rec(u, 0)

    # -- caches and garbage collection ---------------------------------------------

    def clear_caches(self) -> int:
        """Drop every operation-cache entry; returns the number dropped.

        The cube/tag interning tables are dropped too — their ids are
        embedded in (now gone) cache keys and their content is order-
        dependent.
        """
        dropped = sum(cache.clear() for cache in self._caches)
        self._cube_intern.clear()
        self._tag_intern.clear()
        return dropped

    def collect(self) -> int:
        """Mark-and-sweep garbage collection of the unique table.

        Operation caches are cleared first (they reference nodes without
        keeping them alive); the closure of the externally referenced nodes
        is marked; everything unmarked is freed and its slot recycled.
        Returns the number of nodes reclaimed.
        """
        self.clear_caches()
        lo_ = self._lo
        hi_ = self._hi
        marked = bytearray(len(self._varr))
        marked[0] = 1
        stack = [node for node in self._external if self._varr[node] >= 0]
        for node in stack:
            marked[node] = 1
        while stack:
            node = stack.pop()
            for child in (lo_[node] >> 1, hi_[node] >> 1):
                if not marked[child]:
                    marked[child] = 1
                    stack.append(child)
        freed = 0
        varr = self._varr
        ref = self._ref
        free = self._free
        for table in self._subtables:
            dead = [key for key, node in table.items() if not marked[node]]
            for key in dead:
                node = table.pop(key)
                varr[node] = -2
                free.append(node)
                freed += 1
        # Recompute internal parent counts from the survivors (self-healing).
        for node in range(len(varr)):
            ref[node] = 0
        for table in self._subtables:
            for (lo, hi) in table.keys():
                ref[lo >> 1] += 1
                ref[hi >> 1] += 1
        self._live -= freed
        self._gc_runs += 1
        self._gc_reclaimed += freed
        # GC is rare by construction, so event-time telemetry is cheap here.
        _metrics.counter("bdd.gc.runs").inc()
        _metrics.counter("bdd.gc.reclaimed").inc(freed)
        _metrics.gauge("bdd.nodes.peak").set_max(self._peak)
        _obs_event("bdd.gc", reclaimed=freed, live=self._live)
        _checkpoint("bdd.collect", bdd_nodes=self._live)
        if _sanitize.MODE:
            _sanitize.maybe_check_manager(self)
        return freed

    def stats(self) -> ManagerStats:
        """A snapshot of node, GC, reorder, and cache counters."""
        return ManagerStats(
            live_nodes=self._live,
            peak_live_nodes=self._peak,
            num_vars=self.num_vars,
            external_references=sum(self._external.values()),
            gc_runs=self._gc_runs,
            gc_reclaimed=self._gc_reclaimed,
            reorder_runs=self._reorder_runs,
            sift_swaps=self._sift_swaps,
            caches=tuple(cache.stats() for cache in self._caches),
        )

    def publish_metrics(self, **labels) -> None:
        """Snapshot :meth:`stats` into the process-global metrics registry.

        Cumulative totals are published as *gauges* (idempotent to
        re-publish at every phase boundary); event-time counters
        (``bdd.gc.runs`` etc.) are incremented where the event happens.
        ``labels`` tag the series (``engine=...``, ``system=...``).
        """
        stats = self.stats()
        gauge = _metrics.gauge
        gauge("bdd.live_nodes", **labels).set(stats.live_nodes)
        gauge("bdd.peak_live_nodes", **labels).set(stats.peak_live_nodes)
        gauge("bdd.num_vars", **labels).set(stats.num_vars)
        gauge("bdd.gc_runs", **labels).set(stats.gc_runs)
        gauge("bdd.gc_reclaimed", **labels).set(stats.gc_reclaimed)
        gauge("bdd.reorder_runs", **labels).set(stats.reorder_runs)
        gauge("bdd.sift_swaps", **labels).set(stats.sift_swaps)
        for cache in stats.caches:
            total = cache.hits + cache.misses
            gauge("bdd.cache.hits", cache=cache.name, **labels).set(cache.hits)
            gauge("bdd.cache.misses", cache=cache.name, **labels).set(cache.misses)
            gauge("bdd.cache.evictions", cache=cache.name, **labels).set(
                cache.evictions
            )
            gauge("bdd.cache.hit_rate", cache=cache.name, **labels).set(
                round(cache.hits / total, 6) if total else 0.0
            )

    #: Backwards-compatible aliases for the unified apply cache counters.
    @property
    def apply_cache_hits(self) -> int:
        return self._ite_cache.hits

    @property
    def apply_cache_misses(self) -> int:
        return self._ite_cache.misses

    # -- dynamic variable reordering ------------------------------------------------

    def variable_groups(self) -> Tuple[Tuple[int, ...], ...]:
        """The non-singleton sifting groups currently registered, in level order."""
        return tuple(
            tuple(block) for block in self._blocks if len(block) > 1
        )

    def set_variable_groups(self, groups: Sequence[Sequence[int]]) -> None:
        """Tie variables into blocks that sifting moves as units.

        Each group must consist of distinct, currently-adjacent variables
        (adjacent in the *current* level order); ungrouped variables form
        singleton blocks.  The previous grouping is replaced wholesale —
        callers sharing a manager merge :meth:`variable_groups` into their
        request (as the symbolic Kripke layer does) so one client cannot
        silently dissolve another's blocks.  The symbolic Kripke layer
        groups every current/next pair so its renames stay order-preserving
        under any reorder.
        """
        seen: set = set()
        v2l = self._var2level
        blocks: List[List[int]] = []
        for group in groups:
            group = list(group)
            if not group:
                continue
            for var in group:
                self._ensure_var(var)
                if var in seen:
                    raise BDDError("variable %d appears in more than one group" % var)
                seen.add(var)
            group.sort(key=v2l.__getitem__)
            levels = [v2l[var] for var in group]
            if levels != list(range(levels[0], levels[0] + len(levels))):
                raise BDDError(
                    "group %r is not contiguous in the current variable order" % (group,)
                )
            blocks.append(group)
        for var in range(self.num_vars):
            if var not in seen:
                blocks.append([var])
        blocks.sort(key=lambda block: v2l[block[0]])
        self._blocks = blocks

    def var_order(self) -> Tuple[int, ...]:
        """The current variable order, top level first (persistable)."""
        return tuple(self._level2var)

    def set_var_order(self, order: Sequence[int]) -> None:
        """Restore a saved variable order (e.g. from :meth:`var_order`).

        Implemented as a sequence of adjacent block swaps, so every live edge
        stays valid.  The target order must keep each sifting group
        contiguous.
        """
        order = list(order)
        if sorted(order) != list(range(self.num_vars)):
            raise BDDError("set_var_order needs a permutation of all variable ids")
        self.clear_caches()
        blocks = self._blocks
        # Target block sequence: blocks sorted by their first variable's
        # position in the requested order; each block must be contiguous there.
        position = {var: i for i, var in enumerate(order)}
        for block in blocks:
            positions = sorted(position[var] for var in block)
            if positions != list(range(positions[0], positions[0] + len(positions))):
                raise BDDError(
                    "target order splits the variable group %r" % (block,)
                )
        target = sorted(range(len(blocks)), key=lambda b: position[blocks[b][0]])
        # Selection sort with adjacent block swaps.
        sequence = list(range(len(blocks)))
        for goal_index, want in enumerate(target):
            at = sequence.index(want)
            while at > goal_index:
                self._swap_adjacent_blocks(at - 1)
                sequence[at - 1], sequence[at] = sequence[at], sequence[at - 1]
                at -= 1
        # Within-block order is preserved by construction; verify the result.
        if list(self._level2var) != [var for block in self._blocks for var in block]:
            raise BDDError("internal error: block swap sequence lost coherence")
        if _sanitize.MODE:
            _sanitize.maybe_check_manager(self)

    def reorder(self, max_growth: float = 1.2) -> int:
        """Rudell sifting over the variable blocks; returns live nodes after.

        Runs :meth:`collect` first (so decisions see only live nodes), then
        sifts blocks in decreasing-size order: each block is moved through
        every position by adjacent block swaps, abandoning a direction once
        the table grows past ``max_growth`` times the best size seen, and is
        parked at the best position.  Operation caches are invalid across a
        reorder and are cleared.
        """
        self._reorder_runs += 1
        with _obs_span("bdd.reorder") as sp:
            live_before = self._live
            swaps_before = self._sift_swaps
            self.collect()
            blocks = self._blocks
            if len(blocks) >= 2:
                sizes = []
                for index, block in enumerate(blocks):
                    sizes.append(
                        (-sum(len(self._subtables[var]) for var in block), index, block)
                    )
                sizes.sort()
                for _, _, block in sizes:
                    self._sift_block(block, max_growth)
                self.clear_caches()
                threshold = self.auto_reorder_threshold
                if threshold is not None and self._live >= threshold:
                    self.auto_reorder_threshold = max(threshold * 2, self._live * 2)
            swaps = self._sift_swaps - swaps_before
            _metrics.counter("bdd.reorder.runs").inc()
            _metrics.counter("bdd.reorder.swaps").inc(swaps)
            sp.set(live_before=live_before, live_after=self._live, swaps=swaps)
        if _sanitize.MODE:
            _sanitize.maybe_check_manager(self)
        return self._live

    def _maybe_reorder(self) -> None:
        threshold = self.auto_reorder_threshold
        if threshold is not None and self._live > threshold:
            self.reorder()

    def _sift_block(self, block: List[int], max_growth: float) -> None:
        blocks = self._blocks
        start = blocks.index(block)
        nb = len(blocks)
        best_size = self._live
        best_pos = start
        pos = start
        # Visit the nearer end first.
        directions = ("up", "down") if start < nb - 1 - start else ("down", "up")
        for direction in directions:
            if direction == "down":
                while pos < nb - 1:
                    self._swap_adjacent_blocks(pos)
                    pos += 1
                    if self._live < best_size:
                        best_size = self._live
                        best_pos = pos
                    elif self._live > max_growth * best_size:
                        break
            else:
                while pos > 0:
                    self._swap_adjacent_blocks(pos - 1)
                    pos -= 1
                    if self._live < best_size:
                        best_size = self._live
                        best_pos = pos
                    elif self._live > max_growth * best_size:
                        break
        while pos < best_pos:
            self._swap_adjacent_blocks(pos)
            pos += 1
        while pos > best_pos:
            self._swap_adjacent_blocks(pos - 1)
            pos -= 1

    def _swap_adjacent_blocks(self, index: int) -> None:
        """Exchange ``blocks[index]`` and ``blocks[index + 1]`` by level swaps."""
        blocks = self._blocks
        upper = blocks[index]
        lower = blocks[index + 1]
        top = self._var2level[upper[0]]
        s = len(upper)
        t = len(lower)
        for k in range(s):
            src = top + s - 1 - k
            for j in range(t):
                self._swap_levels(src + j)
        blocks[index], blocks[index + 1] = lower, upper

    def _swap_levels(self, level: int) -> None:
        """Swap the variables at ``level`` and ``level + 1`` in place.

        Every live node keeps its index (so every external edge stays
        valid); nodes at the upper level that depend on the lower variable
        are rewritten in place, dead upper-level nodes are reclaimed, and
        orphaned children are cascade-freed via the internal parent counts.
        """
        self._sift_swaps += 1
        l2v = self._level2var
        v2l = self._var2level
        x = l2v[level]
        y = l2v[level + 1]
        varr = self._varr
        lo_ = self._lo
        hi_ = self._hi
        ref = self._ref
        lvl = self._lvl
        external = self._external
        xtab = self._subtables[x]
        keep: Dict[Tuple[int, int], int] = {}
        rewrite: List[int] = []
        dead: List[int] = []
        for key, n in xtab.items():
            lo, hi = key
            if varr[lo >> 1] == y or varr[hi >> 1] == y:
                if ref[n] == 0 and n not in external:
                    dead.append(n)
                else:
                    rewrite.append(n)
            else:
                keep[key] = n
        # Commit the order change before creating nodes for the new x level.
        l2v[level] = y
        l2v[level + 1] = x
        v2l[x] = level + 1
        v2l[y] = level
        self._subtables[x] = keep
        ytab = self._subtables[y]
        for n in dead:
            # Already unlinked from the x subtable (it was replaced by `keep`);
            # release the children and recycle the slot directly.
            for child in (lo_[n] >> 1, hi_[n] >> 1):
                if child:
                    ref[child] -= 1
                    if not ref[child] and child not in external:
                        self._free_cascade(child)
            varr[n] = -2
            self._free.append(n)
            self._live -= 1
        for n in rewrite:
            lo = lo_[n]
            hi = hi_[n]
            ln = lo >> 1
            if varr[ln] == y:
                c = lo & 1
                f00 = lo_[ln] ^ c
                f01 = hi_[ln] ^ c
            else:
                f00 = f01 = lo
            hn = hi >> 1
            if varr[hn] == y:
                f10 = lo_[hn]
                f11 = hi_[hn]
            else:
                f10 = f11 = hi
            new_lo = self._mk(x, f00, f10)
            new_hi = self._mk(x, f01, f11)  # regular: f11 is a then-edge
            ref[new_lo >> 1] += 1
            ref[new_hi >> 1] += 1
            for old_child in (ln, hn):
                ref[old_child] -= 1
                if not ref[old_child] and old_child not in external:
                    self._free_cascade(old_child)
            varr[n] = y
            lo_[n] = new_lo
            hi_[n] = new_hi
            ytab[(new_lo, new_hi)] = n
        for n in keep.values():
            lvl[n] = level + 1
        for n in ytab.values():
            lvl[n] = level

    def _free_cascade(self, node: int) -> None:
        """Free ``node`` and, transitively, children left without parents."""
        varr = self._varr
        lo_ = self._lo
        hi_ = self._hi
        ref = self._ref
        external = self._external
        free = self._free
        stack = [node]
        while stack:
            n = stack.pop()
            del self._subtables[varr[n]][(lo_[n], hi_[n])]
            for child in (lo_[n] >> 1, hi_[n] >> 1):
                if child:
                    ref[child] -= 1
                    if not ref[child] and child not in external:
                        stack.append(child)
            varr[n] = -2
            free.append(n)
            self._live -= 1
