"""Resource budgets and cooperative cancellation for engine runs.

Every engine today runs to completion no matter what: a pathological BDD
blowup or a diverging k-induction holds the process hostage.  This module
gives a run four ceilings — a wall-clock deadline, an RSS memory ceiling,
a BDD peak-live-node ceiling, and a SAT conflict ceiling — bundled into a
:class:`ResourceBudget`, plus a cooperative cancellation token, enforced
at *checkpoints* threaded through the engine hot loops:

* the bitset worklist pop loops (every 256 pops),
* the symbolic fixpoint rounds and BDD ``collect()``/op-cache spill points,
* the CDCL conflict loop (every 256 conflicts) and every restart boundary,
* the IC3 proof-obligation queue (every pop),
* the BMC depth loop (every depth).

:func:`checkpoint` is the single entry point and follows the obs
discipline for hot-path hooks: while nothing is armed it is one
module-global load and an ``is None`` test (measured alongside the obs
overhead guard in ``benchmarks/test_bench_portfolio.py``).  When a budget
is active a checkpoint

1. raises :class:`~repro.errors.CancelledError` if the cancellation token
   is set (how a portfolio race stands its losers down),
2. raises :class:`~repro.errors.BudgetExceededError` if the deadline (read
   via the obs-sanctioned :func:`repro.obs.trace.monotonic_ns` clock) or a
   gauge ceiling (``bdd_nodes=...``, ``sat_conflicts=...``) is crossed,
3. pumps a rate-limited heartbeat through :mod:`repro.obs.progress`, which
   is what the worker supervisor's hang detection listens to, and
4. gives the chaos harness (:mod:`repro.runtime.chaos`) its declared
   injection site.

The RSS ceiling is enforced out-of-band: :func:`apply_memory_limit` sets
``RLIMIT_AS`` via :mod:`resource` in the worker process so a runaway
allocation fails with ``MemoryError`` instead of taking the machine down.
Budget semantics are documented in ``docs/RESILIENCE.md``.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Any, Callable, Dict, Iterator, Optional

from repro.errors import BudgetExceededError, CancelledError
from repro.obs.progress import heartbeat as _heartbeat
from repro.obs.trace import monotonic_ns

__all__ = [
    "ResourceBudget",
    "CancelToken",
    "activate",
    "deactivate",
    "active",
    "checkpoint",
    "current_budget",
    "apply_memory_limit",
    "set_chaos_hook",
]


class ResourceBudget:
    """Ceilings for one engine run; ``None`` means unlimited.

    ``deadline_s``
        Wall-clock seconds from activation (monotonic).
    ``memory_bytes``
        Address-space ceiling applied to worker processes via
        :func:`apply_memory_limit` (``resource.setrlimit``).
    ``bdd_nodes``
        Peak live BDD nodes, checked at manager checkpoints.
    ``sat_conflicts``
        Total CDCL conflicts, checked at solver checkpoints.
    """

    __slots__ = ("deadline_s", "memory_bytes", "bdd_nodes", "sat_conflicts")

    def __init__(
        self,
        deadline_s: Optional[float] = None,
        memory_bytes: Optional[int] = None,
        bdd_nodes: Optional[int] = None,
        sat_conflicts: Optional[int] = None,
    ) -> None:
        for name, value in (
            ("deadline_s", deadline_s),
            ("memory_bytes", memory_bytes),
            ("bdd_nodes", bdd_nodes),
            ("sat_conflicts", sat_conflicts),
        ):
            if value is not None and value <= 0:
                raise ValueError("%s must be positive when set; got %r" % (name, value))
        self.deadline_s = deadline_s
        self.memory_bytes = memory_bytes
        self.bdd_nodes = bdd_nodes
        self.sat_conflicts = sat_conflicts

    def is_unlimited(self) -> bool:
        """Whether every ceiling is ``None`` (heartbeat/cancel-only budget)."""
        return (
            self.deadline_s is None
            and self.memory_bytes is None
            and self.bdd_nodes is None
            and self.sat_conflicts is None
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "deadline_s": self.deadline_s,
            "memory_bytes": self.memory_bytes,
            "bdd_nodes": self.bdd_nodes,
            "sat_conflicts": self.sat_conflicts,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            "%s=%r" % (key, value)
            for key, value in self.as_dict().items()
            if value is not None
        )
        return "ResourceBudget(%s)" % parts


class CancelToken:
    """An in-process cancellation token (``multiprocessing.Event``-shaped).

    Workers receive a real ``multiprocessing.Event``; single-process users
    (the CLI's ``--timeout`` path, tests) use this thread-safe stand-in —
    anything with ``is_set()``/``set()`` works as a token.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def set(self) -> None:
        self._event.set()

    def is_set(self) -> bool:
        return self._event.is_set()


#: Nanoseconds between heartbeat pumps from checkpoints (rate limit on top
#: of the progress reporter's own per-source limit, so a disabled reporter
#: costs one comparison, not a function call, per checkpoint).
_HEARTBEAT_EVERY_NS = 50_000_000


class _ActiveBudget:
    """A :class:`ResourceBudget` armed against a cancellation token."""

    __slots__ = ("budget", "cancel", "deadline_ns", "started_ns", "_next_hb_ns")

    def __init__(self, budget: ResourceBudget, cancel=None) -> None:
        self.budget = budget
        self.cancel = cancel
        self.started_ns = monotonic_ns()
        self.deadline_ns = (
            None
            if budget.deadline_s is None
            else self.started_ns + int(budget.deadline_s * 1e9)
        )
        self._next_hb_ns = self.started_ns

    def poll(self, site: str, gauges: Dict[str, int]) -> None:
        cancel = self.cancel
        if cancel is not None and cancel.is_set():
            raise CancelledError(
                "run cancelled at checkpoint %r" % site, site=site
            )
        now = monotonic_ns()
        if self.deadline_ns is not None and now > self.deadline_ns:
            budget = self.budget
            raise BudgetExceededError(
                "deadline of %.3fs exceeded at checkpoint %r"
                % (budget.deadline_s, site),
                resource="deadline",
                limit=budget.deadline_s,
                observed=(now - self.started_ns) / 1e9,
                site=site,
            )
        if gauges:
            budget = self.budget
            for resource_name, ceiling in (
                ("bdd_nodes", budget.bdd_nodes),
                ("sat_conflicts", budget.sat_conflicts),
            ):
                observed = gauges.get(resource_name)
                if ceiling is not None and observed is not None and observed > ceiling:
                    raise BudgetExceededError(
                        "%s ceiling %d exceeded (%d) at checkpoint %r"
                        % (resource_name, ceiling, observed, site),
                        resource=resource_name,
                        limit=ceiling,
                        observed=observed,
                        site=site,
                    )
        if now >= self._next_hb_ns:
            self._next_hb_ns = now + _HEARTBEAT_EVERY_NS
            _heartbeat("runtime", site=site, **gauges)


#: The armed budget, or ``None``.  Module global on purpose: the disabled
#: checkpoint fast path must be a single load (same discipline as
#: ``repro.obs.trace``).
_ACTIVE: Optional[_ActiveBudget] = None

#: The chaos harness's injection hook (``callable(site)``), or ``None``.
#: Installed by :func:`repro.runtime.chaos.install`; kept separate from the
#: budget so chaos can fire in workers whose budget is unlimited.
_CHAOS_HOOK: Optional[Callable[[str], None]] = None

#: Armed sentinel: non-``None`` iff a budget or a chaos hook is installed.
#: This is the only global the disabled fast path reads.
_ARMED: Optional[bool] = None


def _refresh_armed() -> None:
    global _ARMED
    _ARMED = True if (_ACTIVE is not None or _CHAOS_HOOK is not None) else None


def checkpoint(site: str = "", **gauges: int) -> None:
    """Cooperative cancellation / budget / chaos checkpoint.

    Engines call this from their hot loops with whatever gauges are free to
    read (``bdd_nodes=...``, ``sat_conflicts=...``).  A strict no-op while
    nothing is armed; see the module docstring for the armed behaviour.
    """
    if _ARMED is None:
        return
    chaos_hook = _CHAOS_HOOK
    if chaos_hook is not None:
        chaos_hook(site)
    active_budget = _ACTIVE
    if active_budget is not None:
        active_budget.poll(site, gauges)


def activate(budget: ResourceBudget, cancel=None) -> None:
    """Arm ``budget`` (with an optional cancellation token) process-globally.

    Raises :class:`RuntimeError` when a budget is already armed — budgets
    deliberately do not nest; one run, one budget (the supervisor arms one
    per worker process).
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError(
            "a ResourceBudget is already active; budgets do not nest"
        )
    _ACTIVE = _ActiveBudget(budget, cancel=cancel)
    _refresh_armed()


def deactivate() -> Optional[ResourceBudget]:
    """Disarm the active budget (if any) and return it."""
    global _ACTIVE
    previous, _ACTIVE = _ACTIVE, None
    _refresh_armed()
    return None if previous is None else previous.budget


@contextlib.contextmanager
def active(budget: ResourceBudget, cancel=None) -> Iterator[ResourceBudget]:
    """Arm ``budget`` for the duration of a ``with`` block."""
    activate(budget, cancel=cancel)
    try:
        yield budget
    finally:
        deactivate()


def current_budget() -> Optional[ResourceBudget]:
    """The armed budget, or ``None``."""
    return None if _ACTIVE is None else _ACTIVE.budget


def set_chaos_hook(hook: Optional[Callable[[str], None]]) -> None:
    """Install (or clear, with ``None``) the chaos injection hook.

    Reserved for :mod:`repro.runtime.chaos`; exposed as a function so the
    two modules stay import-decoupled.
    """
    global _CHAOS_HOOK
    _CHAOS_HOOK = hook
    _refresh_armed()


def apply_memory_limit(memory_bytes: int) -> bool:
    """Cap this process's address space at ``memory_bytes`` (best effort).

    Uses ``resource.setrlimit(RLIMIT_AS)`` so allocations past the ceiling
    raise ``MemoryError`` inside the worker instead of triggering the OS
    OOM killer.  Returns ``False`` on platforms without :mod:`resource`
    (Windows) or where the limit cannot be lowered; the budget then rests
    on the cooperative checkpoints alone.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - POSIX-only module
        return False
    try:
        soft, hard = resource.getrlimit(resource.RLIMIT_AS)
        new_hard = hard if hard != resource.RLIM_INFINITY and hard < memory_bytes else memory_bytes
        resource.setrlimit(resource.RLIMIT_AS, (min(memory_bytes, new_hard), new_hard))
    except (ValueError, OSError):  # pragma: no cover - platform dependent
        return False
    return True
