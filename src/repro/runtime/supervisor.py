"""Supervised ``multiprocessing`` worker pool with crash/hang recovery.

The :class:`Supervisor` runs :class:`WorkerTask`\\ s in child processes and
watches them the way the paper's networks of processes must watch their
peers: it assumes workers *will* die mid-solve, wedge without making
progress, run out of memory, or return corrupted payloads, and turns each
of those into a structured, observable outcome instead of a hang or a
wrong answer.

Detection machinery, per worker:

``crash``
    The process exited without delivering a result; the exit code (or
    ``-signal``) is recorded.  Detected by polling ``Process.is_alive``.
``hang``
    The process is alive but its heartbeats stopped.  Workers pipe every
    progress heartbeat (:mod:`repro.obs.progress`, pumped by the
    checkpoints in :mod:`repro.runtime.limits`) back over their result
    connection; silence beyond ``hang_timeout`` seconds gets the worker
    killed and counted as hung.
``garble``
    The result payload's SHA-256 digest does not match the digest the
    worker computed over the true payload before sending — the result is
    discarded, never deserialised.  (This is the detection path the chaos
    harness's ``garble`` fault exercises.)
``oom`` / structured failures
    The worker caught ``MemoryError`` (the ``RLIMIT_AS`` ceiling) or a
    structured library error (:class:`~repro.errors.InconclusiveError`,
    :class:`~repro.errors.BudgetExceededError`, ...) and reported it as a
    typed failure message rather than dying.

Crashed / hung / garbled / out-of-memory workers are restarted with
capped exponential backoff, up to ``max_restarts`` times per task; each
attempt re-derives its own chaos schedule, so an injected crash does not
doom every retry.  The caller can stop the pool early (``stop_when`` —
how a portfolio race returns as soon as one engine is conclusive) and
cancel stragglers cooperatively with a grace window before escalating to
``SIGTERM``/``SIGKILL``.  Every supervisor registers itself so
:func:`shutdown_all` (the CLI's Ctrl-C path) can guarantee no orphaned
worker processes outlive the run.

Supervision events are published as ``worker.*`` counters in the global
metrics registry (vocabulary in ``docs/OBSERVABILITY.md``); the state
machine is documented in ``docs/RESILIENCE.md``.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import pickle
import time  # only time.sleep (poll loop); no clock reads (lint R002)
import weakref
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    BudgetExceededError,
    CancelledError,
    FragmentError,
    InconclusiveError,
    ReproError,
)
from repro.obs import collect as _collect
from repro.obs.metrics import counter as _counter
from repro.obs.progress import enable_progress
from repro.obs.trace import monotonic_ns
from repro.runtime import chaos as _chaos
from repro.runtime import limits as _limits

__all__ = [
    "WorkerTask",
    "TaskOutcome",
    "Supervisor",
    "shutdown_all",
    "RESTARTABLE_STATUSES",
]

try:
    #: Fork keeps worker launch cheap and lets tasks reference module-level
    #: callables without import gymnastics; fall back to the platform
    #: default where fork does not exist (Windows).
    _MP = multiprocessing.get_context("fork")
except ValueError:  # pragma: no cover - non-POSIX platforms
    _MP = multiprocessing.get_context()


#: Outcome statuses that earn a restart: the failure was environmental
#: (process death, wedge, corrupted payload, memory exhaustion), not a
#: deterministic structured verdict from the engine.
RESTARTABLE_STATUSES = frozenset({"crashed", "hung", "garbled", "oom"})


class WorkerTask:
    """One unit of supervised work: a picklable callable plus its policy.

    ``fn`` must be a module-level callable (pickled by reference under the
    fork start method).  ``budget`` ceilings are armed inside the worker;
    ``chaos`` overrides the environment's ``REPRO_CHAOS`` config for this
    task (pass a disabled ``ChaosConfig()`` to force chaos off even under
    a chaos environment — the chaos lane's own tests need that).
    ``label`` tags the task's metrics/outcome provenance (the portfolio
    uses the engine name).
    """

    __slots__ = ("id", "fn", "args", "kwargs", "budget", "chaos", "label")

    def __init__(
        self,
        id: str,
        fn: Callable[..., Any],
        args: Tuple = (),
        kwargs: Optional[Dict[str, Any]] = None,
        budget: Optional[_limits.ResourceBudget] = None,
        chaos: Optional[_chaos.ChaosConfig] = None,
        label: str = "",
    ) -> None:
        self.id = id
        self.fn = fn
        self.args = tuple(args)
        self.kwargs = dict(kwargs or {})
        self.budget = budget
        self.chaos = chaos
        self.label = label or id


class TaskOutcome:
    """What finally became of one task, after restarts.

    ``status`` is one of ``"ok"`` (``result`` holds the return value),
    ``"error"`` (structured failure: ``error_kind``/``message``/``fields``),
    ``"budget"`` (a :class:`~repro.errors.BudgetExceededError`),
    ``"fragment"``, ``"inconclusive"``, ``"cancelled"``, ``"oom"``,
    ``"crashed"``, ``"hung"``, or ``"garbled"``.  ``history`` lists every attempt's fate in order, so a
    final ``"ok"`` after two chaos kills still shows the crashes.
    """

    __slots__ = (
        "task_id",
        "label",
        "status",
        "result",
        "error_kind",
        "message",
        "fields",
        "attempts",
        "exitcode",
        "history",
        "late",
    )

    def __init__(self, task_id: str, label: str) -> None:
        self.task_id = task_id
        self.label = label
        self.status = "pending"
        self.result: Any = None
        self.error_kind = ""
        self.message = ""
        self.fields: Dict[str, Any] = {}
        self.attempts = 0
        self.exitcode: Optional[int] = None
        self.history: List[str] = []
        #: Whether the final result arrived after cancellation was requested
        #: (a portfolio loser finishing in the grace window).
        self.late = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def describe(self) -> str:
        """One-line diagnostic, e.g. ``"crashed (signal 9) after 3 attempts"``."""
        if self.status == "ok":
            text = "ok"
        elif self.status == "crashed":
            if self.exitcode is not None and self.exitcode < 0:
                text = "crashed (signal %d)" % -self.exitcode
            else:
                text = "crashed (exit code %r)" % self.exitcode
        elif self.status == "hung":
            text = "hung (heartbeats stopped)"
        elif self.status == "garbled":
            text = "garbled (payload digest mismatch)"
        else:
            text = self.status
            if self.message:
                text = "%s: %s" % (text, self.message)
        if self.attempts > 1:
            text += " after %d attempts" % self.attempts
        return text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "TaskOutcome(%r, %s)" % (self.task_id, self.describe())


class _ConnStream:
    """A write-only text stream that turns progress lines into heartbeats.

    Installed as the worker's progress stream, so every rate-limited
    ``[progress]`` line an engine (or a budget checkpoint) emits becomes a
    liveness message on the result pipe instead of stderr noise.
    """

    __slots__ = ("_conn", "_task_id")

    def __init__(self, conn, task_id: str) -> None:
        self._conn = conn
        self._task_id = task_id

    def write(self, text: str) -> int:
        if text.strip():
            try:
                self._conn.send(("heartbeat", self._task_id, text.strip()))
            except (BrokenPipeError, OSError):
                pass  # supervisor gone; the worker is about to die anyway
        return len(text)

    def flush(self) -> None:
        return None


def _worker_main(
    conn,
    cancel,
    task: WorkerTask,
    attempt: int,
    context: Optional[_collect.TraceContext] = None,
) -> None:
    """Worker-process entry point: arm policy, run the task, report once.

    The *terminal* message (``result`` or ``fail``) is computed first and
    sent last, from ``finally`` — after the telemetry exporter has flushed
    its remaining span buffer and final metrics snapshot.  The supervisor
    reaps the connection as soon as it reads a terminal message, so any
    telemetry sent after one would be lost; and if the task body dies on an
    unexpected exception (no terminal message at all — the crash path), the
    ``finally`` flush still ships whatever the worker had buffered, which
    is what makes partial traces survive crashes and cancellations.
    """
    if task.budget is not None and task.budget.memory_bytes is not None:
        _limits.apply_memory_limit(task.budget.memory_bytes)
    chaos_config = task.chaos if task.chaos is not None else _chaos.from_env()
    injector = None
    if chaos_config is not None and chaos_config.is_enabled():
        injector = _chaos.enable(chaos_config, scope="%s#%d" % (task.id, attempt))
    telemetry = _collect.WorkerTelemetry(context, conn, task.id, injector=injector)
    # Heartbeats flow through the result pipe; the interval is the floor of
    # the supervisor's hang-detection resolution.
    enable_progress(interval=0.05, stream=_ConnStream(conn, task.id))
    budget = task.budget if task.budget is not None else _limits.ResourceBudget()
    terminal: Optional[Tuple] = None
    try:
        conn.send(("started", task.id, attempt))
        with _limits.active(budget, cancel=cancel):
            result = task.fn(*task.args, **task.kwargs)
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(payload).hexdigest()
        if injector is not None and injector.should_garble():
            payload = injector.garble_payload(payload)
        terminal = ("result", task.id, payload, digest)
    except BudgetExceededError as exc:
        terminal = (
            "fail",
            task.id,
            "BudgetExceededError",
            str(exc),
            {
                "resource": exc.resource,
                "limit": exc.limit,
                "observed": exc.observed,
                "site": exc.site,
            },
        )
    except CancelledError as exc:
        terminal = ("fail", task.id, "CancelledError", str(exc), {"site": exc.site})
    except InconclusiveError as exc:
        terminal = ("fail", task.id, "InconclusiveError", str(exc), exc.progress())
    except FragmentError as exc:
        terminal = ("fail", task.id, "FragmentError", str(exc), {})
    except MemoryError as exc:
        terminal = ("fail", task.id, "MemoryError", str(exc), {})
    except ReproError as exc:
        terminal = ("fail", task.id, type(exc).__name__, str(exc), {})
    finally:
        # Anything else (a genuine bug) propagates and the non-zero exit
        # code surfaces as a crash in the supervisor — after the flush.
        telemetry.close()
        if terminal is not None:
            try:
                conn.send(terminal)
            except (BrokenPipeError, OSError):  # pragma: no cover - gone
                pass
        try:
            conn.close()
        except OSError:  # pragma: no cover - already torn down
            pass


#: Failure kinds that map to non-"error" outcome statuses.
_FAIL_STATUS = {
    "BudgetExceededError": "budget",
    "CancelledError": "cancelled",
    "MemoryError": "oom",
    "FragmentError": "fragment",
    "InconclusiveError": "inconclusive",
}


class _WorkerState:
    """Supervisor-side bookkeeping for one task's current attempt."""

    __slots__ = (
        "task",
        "process",
        "conn",
        "cancel",
        "attempt",
        "last_seen_ns",
        "retry_at_ns",
        "context",
    )

    def __init__(self, task: WorkerTask) -> None:
        self.task = task
        self.process = None
        self.conn = None
        self.cancel = None
        self.attempt = 0
        self.last_seen_ns = 0
        self.retry_at_ns: Optional[int] = None  # set while waiting out backoff
        self.context: Optional[_collect.TraceContext] = None  # per-attempt


#: Every live supervisor, for shutdown_all() on Ctrl-C.
_LIVE_SUPERVISORS: "weakref.WeakSet[Supervisor]" = weakref.WeakSet()


def shutdown_all() -> int:
    """Tear down every live supervisor's workers (the CLI interrupt path).

    Returns the number of supervisors shut down.  Idempotent and safe to
    call from a ``KeyboardInterrupt`` handler.
    """
    count = 0
    for supervisor in list(_LIVE_SUPERVISORS):
        supervisor.shutdown()
        count += 1
    return count


class Supervisor:
    """Runs tasks in worker processes; detects, restarts, never hangs.

    ``hang_timeout``
        Seconds of heartbeat silence before a live worker is declared hung
        and killed.
    ``max_restarts``
        Restarts per task (on top of the first attempt) for
        :data:`RESTARTABLE_STATUSES` failures.
    ``backoff_base`` / ``backoff_cap``
        Restart ``n`` waits ``min(backoff_base * 2**(n-1), backoff_cap)``
        seconds before relaunching.
    ``grace``
        Seconds cooperatively-cancelled workers get to deliver a late
        result (how a portfolio race catches a loser that disagrees)
        before ``SIGTERM``/``SIGKILL``.
    """

    def __init__(
        self,
        hang_timeout: float = 5.0,
        max_restarts: int = 2,
        backoff_base: float = 0.05,
        backoff_cap: float = 1.0,
        grace: float = 0.25,
        poll_interval: float = 0.02,
    ) -> None:
        self.hang_timeout = hang_timeout
        self.max_restarts = max_restarts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.grace = grace
        self.poll_interval = poll_interval
        self.outcomes: Dict[str, TaskOutcome] = {}
        #: Ingests worker telemetry (spans re-parented into the live trace,
        #: metrics merged under ``worker=<label>``) — see repro.obs.collect.
        self.collector = _collect.TelemetryCollector()
        self._states: Dict[str, _WorkerState] = {}
        self._cancelling = False
        _LIVE_SUPERVISORS.add(self)

    # -- lifecycle ---------------------------------------------------------
    def _launch(self, state: _WorkerState) -> None:
        state.attempt += 1
        state.retry_at_ns = None
        # Captured per attempt, at the launch site: whatever span is open
        # right now (for a portfolio race, the ``portfolio.race`` span)
        # becomes the parent of this attempt's re-ingested worker spans.
        state.context = _collect.TraceContext.capture()
        parent_conn, child_conn = _MP.Pipe(duplex=False)
        cancel = _MP.Event()
        process = _MP.Process(
            target=_worker_main,
            args=(child_conn, cancel, state.task, state.attempt, state.context),
            name="repro-worker-%s" % state.task.id,
            daemon=True,
        )
        process.start()
        child_conn.close()
        state.process = process
        state.conn = parent_conn
        state.cancel = cancel
        state.last_seen_ns = monotonic_ns()
        outcome = self.outcomes[state.task.id]
        outcome.attempts = state.attempt
        if state.attempt == 1:
            _counter("worker.launched", task=state.task.label).inc()
        else:
            _counter("worker.restarts", task=state.task.label).inc()

    def _reap(self, state: _WorkerState) -> None:
        """Close the connection and join the (already dead) process."""
        if state.conn is not None:
            try:
                state.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
            state.conn = None
        if state.process is not None:
            state.process.join(timeout=1.0)
            state.process = None

    def _record_attempt_failure(self, state: _WorkerState, status: str, **extra: Any) -> bool:
        """Record a failed attempt; returns whether a restart was scheduled."""
        task = state.task
        outcome = self.outcomes[task.id]
        outcome.history.append(status)
        if status == "crashed":
            _counter("worker.crashes", task=task.label).inc()
        elif status == "hung":
            _counter("worker.hangs", task=task.label).inc()
        elif status == "garbled":
            _counter("worker.garbled", task=task.label).inc()
        elif status == "oom":
            _counter("worker.oom", task=task.label).inc()
        self._reap(state)
        if (
            status in RESTARTABLE_STATUSES
            and state.attempt <= self.max_restarts
            and not self._cancelling
        ):
            backoff = min(
                self.backoff_base * (2 ** (state.attempt - 1)), self.backoff_cap
            )
            state.retry_at_ns = monotonic_ns() + int(backoff * 1e9)
            return True
        outcome.status = status
        for key, value in extra.items():
            setattr(outcome, key, value)
        return False

    # -- message handling --------------------------------------------------
    def _handle_message(self, state: _WorkerState, message: Tuple) -> None:
        kind = message[0]
        outcome = self.outcomes[state.task.id]
        if kind == "started":
            return
        if kind == "heartbeat":
            pid = None if state.process is None else state.process.pid
            self.collector.ingest_heartbeat(
                state.task.label, pid, message[2], state.context
            )
            return
        if kind == "telemetry":
            _, _, blob, digest = message
            self.collector.ingest(state.task.label, state.context, blob, digest)
            return
        if kind == "result":
            _, _, payload, digest = message
            if hashlib.sha256(payload).hexdigest() != digest:
                # Corrupted payload: discard without deserialising; the
                # attempt is treated like a crash (restartable).
                self._record_attempt_failure(state, "garbled")
                return
            outcome.status = "ok"
            outcome.result = pickle.loads(payload)
            outcome.history.append("ok")
            outcome.late = self._cancelling
            self._reap(state)
            return
        if kind == "fail":
            _, _, error_kind, text, fields = message
            status = _FAIL_STATUS.get(error_kind, "error")
            if status in RESTARTABLE_STATUSES:
                if self._record_attempt_failure(
                    state, status, error_kind=error_kind, message=text, fields=dict(fields)
                ):
                    return
            else:
                outcome.status = status
                outcome.history.append(status)
            outcome.error_kind = error_kind
            outcome.message = text
            outcome.fields = dict(fields)
            self._reap(state)

    def _drain(self, state: _WorkerState) -> bool:
        """Pump all pending messages from one worker; returns liveness."""
        saw_message = False
        conn = state.conn
        while conn is not None and state.conn is not None:
            try:
                if not conn.poll(0):
                    break
                message = conn.recv()
            except (EOFError, OSError):
                break  # worker side closed; exit status decides the fate
            saw_message = True
            state.last_seen_ns = monotonic_ns()
            self._handle_message(state, message)
        return saw_message

    # -- the supervision loop ----------------------------------------------
    def run(
        self,
        tasks: Sequence[WorkerTask],
        stop_when: Optional[Callable[[Dict[str, TaskOutcome]], bool]] = None,
    ) -> Dict[str, TaskOutcome]:
        """Supervise ``tasks`` to completion (or early ``stop_when`` exit).

        Always returns with every worker process dead and reaped — the
        all-paths-terminate guarantee the chaos property tests pin down.
        """
        seen_ids = set()
        for task in tasks:
            if task.id in seen_ids:
                raise ValueError("duplicate task id %r" % task.id)
            seen_ids.add(task.id)
            self.outcomes[task.id] = TaskOutcome(task.id, task.label)
            self._states[task.id] = _WorkerState(task)
        try:
            for state in self._states.values():
                self._launch(state)
            while True:
                progressed = self._poll_once()
                if stop_when is not None and stop_when(self.outcomes):
                    # Early exit: stand the stragglers down cooperatively
                    # (with the grace window, so a loser that already
                    # finished can still deliver a disagreeing verdict).
                    self.cancel_stragglers()
                    break
                if not any(self._is_open(s) for s in self._states.values()):
                    break
                if not progressed:
                    time.sleep(self.poll_interval)
        finally:
            self.shutdown()
        return self.outcomes

    def _is_open(self, state: _WorkerState) -> bool:
        return state.process is not None or state.retry_at_ns is not None

    def _poll_once(self) -> bool:
        progressed = False
        now = monotonic_ns()
        hang_ns = int(self.hang_timeout * 1e9)
        for state in self._states.values():
            if state.process is None:
                if state.retry_at_ns is not None and now >= state.retry_at_ns:
                    self._launch(state)
                    progressed = True
                continue
            if self._drain(state):
                progressed = True
            if state.process is None:
                continue  # a drained message finished the task
            if not state.process.is_alive():
                # Final drain: the worker may have sent its result and died
                # before we read it.
                self._drain(state)
                if state.process is None:
                    progressed = True
                    continue
                exitcode = state.process.exitcode
                self._record_attempt_failure(state, "crashed", exitcode=exitcode)
                progressed = True
            elif monotonic_ns() - state.last_seen_ns > hang_ns:
                self._kill(state)
                self._record_attempt_failure(state, "hung")
                progressed = True
        return progressed

    def _kill(self, state: _WorkerState) -> None:
        process = state.process
        if process is None:
            return
        process.terminate()
        process.join(timeout=0.5)
        if process.is_alive():  # pragma: no cover - SIGTERM blocked
            process.kill()
            process.join(timeout=0.5)

    # -- cancellation and teardown -----------------------------------------
    def cancel_stragglers(self) -> None:
        """Ask every still-running worker to stand down cooperatively.

        Workers get ``grace`` seconds to act on their cancellation token —
        long enough for one that already finished solving to deliver its
        (possibly disagreeing) result — then are terminated.  Pending
        backoff restarts are abandoned.
        """
        self._cancelling = True
        deadline = monotonic_ns() + int(self.grace * 1e9)
        for state in self._states.values():
            state.retry_at_ns = None
            if state.cancel is not None and state.process is not None:
                state.cancel.set()
        while monotonic_ns() < deadline:
            if not any(state.process is not None for state in self._states.values()):
                break
            if not self._poll_once():
                time.sleep(self.poll_interval)
        for state in self._states.values():
            if state.process is not None:
                self._kill(state)
                outcome = self.outcomes[state.task.id]
                if outcome.status == "pending":
                    outcome.status = "cancelled"
                    outcome.history.append("cancelled")
                self._reap(state)

    def shutdown(self) -> None:
        """Unconditional teardown: no worker survives this call."""
        self._cancelling = True
        for state in self._states.values():
            state.retry_at_ns = None
            if state.cancel is not None:
                state.cancel.set()
            if state.process is not None:
                # One last drain so a finished-but-unread result is kept.
                self._drain(state)
            if state.process is not None:
                self._kill(state)
            self._reap(state)
        for outcome in self.outcomes.values():
            # Anything still undecided (killed mid-run or torn down while
            # waiting out a restart backoff) was cancelled.
            if outcome.status == "pending":
                outcome.status = "cancelled"
                outcome.history.append("cancelled")
        _LIVE_SUPERVISORS.discard(self)

    def live_pids(self) -> List[int]:
        """PIDs of still-alive workers (empty after shutdown — pinned by tests)."""
        pids = []
        for state in self._states.values():
            if state.process is not None and state.process.is_alive():
                pid = state.process.pid
                if pid is not None:
                    pids.append(pid)
        return pids

    def __enter__(self) -> "Supervisor":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False
