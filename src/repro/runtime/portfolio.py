"""The ``portfolio`` meta-engine: race the solvers, keep the first verdict.

No single engine dominates this codebase's workloads: the explicit bitset
fixpoints win on small reachable graphs, the symbolic engine on blown-up
ones, bounded model checking on shallow counterexamples, IC3 on deep
invariants.  :class:`PortfolioModelChecker` registers as the sixth engine
(``engine="portfolio"`` in :func:`repro.mc.bitset.make_ctl_checker` and the
CLI) and, per property, races a configurable subset of the other engines in
supervised worker processes (:mod:`repro.runtime.supervisor`):

* the **first conclusive verdict wins**; the losers are cancelled
  cooperatively (their checkpoints observe the token) with a grace window,
* a loser that already finished and *disagrees* with the winner raises
  :class:`~repro.errors.EngineDisagreementError` — a cross-engine soundness
  bug must never be masked by the race,
* crashed / hung / out-of-memory / garbled workers are restarted with
  backoff and the race **degrades gracefully** onto the survivors,
* if *every* worker fails, the failure is structured and diagnostic —
  :class:`~repro.errors.FragmentError` when the property is outside every
  raced engine's fragment, :class:`~repro.errors.BudgetExceededError` when
  the budget felled them, :class:`~repro.errors.EngineCrashError` with a
  per-engine post-mortem when they all died, and
  :class:`~repro.errors.InconclusiveError` otherwise — never a hang, never
  a silent wrong answer.

Per-engine outcomes land in the verdict provenance (:attr:`last_outcomes`,
:attr:`last_detail`) and the ``portfolio.races`` / ``portfolio.wins``
counters; the whole race runs under a ``portfolio.race`` span, beneath
which every worker's own spans are re-parented and every worker's metrics
merged under a ``worker=<engine>`` label (:mod:`repro.obs.collect`), so a
``--trace`` of a portfolio run opens in Perfetto as one multi-process
timeline and ``repro-obs report`` can autopsy the losers.  Failure
semantics and chaos-testing knobs are documented in ``docs/RESILIENCE.md``.
"""

from __future__ import annotations

import importlib
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.errors import (
    BudgetExceededError,
    EngineCrashError,
    EngineDisagreementError,
    FragmentError,
    InconclusiveError,
    ModelCheckingError,
)
from repro.obs.metrics import counter as _counter
from repro.obs.trace import span as _obs_span
from repro.runtime.chaos import ChaosConfig
from repro.runtime.limits import ResourceBudget
from repro.runtime.supervisor import Supervisor, TaskOutcome, WorkerTask

__all__ = [
    "DEFAULT_RACE_ENGINES",
    "PortfolioModelChecker",
    "builder_source",
    "structure_source",
]

#: The engines a portfolio races by default: every registered engine except
#: the ``naive`` differential-testing oracle (redundant with ``bitset`` and
#: strictly slower) and ``portfolio`` itself.
DEFAULT_RACE_ENGINES = ("bitset", "bdd", "bmc", "ic3")

#: Race engines that decide verdicts via the SAT stack (get ``bound`` and a
#: ``last_detail``); kept in sync with ``repro.cli._SAT_ENGINES``.
_SAT_RACE_ENGINES = ("bmc", "ic3")


def builder_source(module: str, function: str, *args: Any, **kwargs: Any) -> Tuple:
    """A worker-side structure recipe: import ``module`` and call ``function``.

    Building inside the worker keeps the parent light and lets every engine
    race on its natural encoding (explicit graph for ``bitset``, direct
    symbolic encoding for ``bdd``, the free domain for the SAT engines) —
    the CLI's portfolio path uses one of these per engine.
    """
    return ("builder", module, function, tuple(args), dict(kwargs))


def structure_source(structure: Any) -> Tuple:
    """A worker-side source that pickles an already-built structure."""
    return ("structure", structure)


def _materialise(source: Tuple) -> Any:
    kind = source[0]
    if kind == "structure":
        return source[1]
    if kind == "builder":
        _, module_name, function_name, args, kwargs = source
        module = importlib.import_module(module_name)
        return getattr(module, function_name)(*args, **kwargs)
    raise ModelCheckingError("unknown portfolio source kind %r" % (kind,))


def run_engine_check(
    engine: str, source: Tuple, formula: Any, bound: Optional[int] = None
) -> Dict[str, Any]:
    """Worker entry point: build the structure, run one engine, one check.

    Module-level (picklable by reference) and returning a plain dict so the
    supervisor's payload digesting stays engine-agnostic.  Fragment and
    inconclusive outcomes propagate as their structured exceptions — the
    supervisor reports them as typed failures, not crashes.
    """
    structure = _materialise(source)
    from repro.kripke.symbolic import SymbolicKripkeStructure

    if engine in _SAT_RACE_ENGINES:
        from repro.mc.bitset import make_ctl_checker

        checker = make_ctl_checker(structure, engine=engine, bound=bound)
        try:
            verdict = checker.check(formula)
        finally:
            # Publish on every exit path: a cancelled loser's partial
            # solver statistics (sat.* gauges) still reach the registry
            # snapshot the worker's telemetry exporter ships on teardown —
            # the data the supervisor merges under worker=<engine>.
            checker.publish_metrics()
        detail = checker.last_detail
    elif engine == "bdd" and isinstance(structure, SymbolicKripkeStructure):
        # A direct symbolic encoding has no explicit state graph to hand
        # to the indexed wrapper; check it with the symbolic engine as-is.
        from repro.mc.symbolic import SymbolicCTLModelChecker

        checker = SymbolicCTLModelChecker(structure)
        verdict = checker.check(formula)
        detail = ""
    else:
        # Same construction as the CLI's explicit path: concrete-index
        # property families are already instantiated, which the Section 4
        # closedness restriction would reject.
        from repro.mc.indexed import ICTLStarModelChecker

        checker = ICTLStarModelChecker(
            structure, engine=engine, enforce_restrictions=False
        )
        verdict = checker.check(formula)
        detail = ""
    return {"engine": engine, "verdict": bool(verdict), "detail": detail}


class PortfolioModelChecker:
    """Race engines per property in supervised workers; first verdict wins.

    ``structure``
        An explicit or symbolic structure every raced engine can accept
        (the :func:`~repro.mc.bitset.make_ctl_checker` path).  Mutually
        exclusive with ``sources``.
    ``sources``
        Mapping from engine name to a worker-side structure recipe
        (:func:`builder_source` / :func:`structure_source`) so each engine
        races on its natural encoding; its keys select the raced engines.
    ``engines``
        The engines to race when ``structure`` is given (default
        :data:`DEFAULT_RACE_ENGINES`).
    ``workers``
        Cap on raced engines: only the first ``workers`` entries launch
        (the CLI's ``--workers``).
    ``budget`` / ``chaos``
        Per-worker :class:`~repro.runtime.limits.ResourceBudget` and
        :class:`~repro.runtime.chaos.ChaosConfig` override (``None``:
        inherit ``REPRO_CHAOS`` from the environment).
    ``bound``
        Depth/frame ceiling forwarded to the SAT engines.

    Like the SAT engines, the portfolio answers verdicts only
    (``supports_satisfaction_sets`` is false) and rejects
    fairness-constrained semantics.
    """

    supports_satisfaction_sets = False

    def __init__(
        self,
        structure: Any = None,
        *,
        sources: Optional[Dict[str, Tuple]] = None,
        engines: Optional[Sequence[str]] = None,
        workers: Optional[int] = None,
        bound: Optional[int] = None,
        budget: Optional[ResourceBudget] = None,
        chaos: Optional[ChaosConfig] = None,
        fairness: Any = None,
        validate_structure: bool = True,
        hang_timeout: float = 10.0,
        max_restarts: int = 2,
        grace: float = 0.25,
    ) -> None:
        if fairness is not None:
            raise FragmentError(
                "the portfolio engine races the SAT engines, which do not "
                "implement fairness-constrained semantics; use bitset, "
                "naive, or bdd"
            )
        if (structure is None) == (sources is None):
            raise ModelCheckingError(
                "PortfolioModelChecker needs exactly one of structure= or sources="
            )
        if sources is not None:
            race: Dict[str, Tuple] = dict(sources)
        else:
            names = tuple(engines) if engines is not None else DEFAULT_RACE_ENGINES
            race = {name: structure_source(structure) for name in names}
        unknown = [name for name in race if name not in DEFAULT_RACE_ENGINES]
        if unknown:
            raise ModelCheckingError(
                "portfolio cannot race %s; raceable engines: %s"
                % (", ".join(sorted(unknown)), ", ".join(DEFAULT_RACE_ENGINES))
            )
        if workers is not None:
            if workers < 1:
                raise ModelCheckingError("portfolio needs at least one worker")
            race = dict(list(race.items())[:workers])
        self._race = race
        self.bound = bound
        self.budget = budget
        self.chaos = chaos
        self.hang_timeout = hang_timeout
        self.max_restarts = max_restarts
        self.grace = grace
        self._ignored_validate = validate_structure  # workers re-validate
        #: Provenance of the most recent check: engine name -> one-line fate.
        self.last_outcomes: Dict[str, str] = {}
        #: How the most recent verdict was decided ("won by bmc (...)").
        self.last_detail: str = ""

    @property
    def engines(self) -> Tuple[str, ...]:
        """The engines this portfolio races, in launch order."""
        return tuple(self._race)

    # -- the race ----------------------------------------------------------
    def check(self, formula: Any, state: Any = None) -> bool:
        """Decide ``M ⊨ formula`` by racing the engines (initial state only)."""
        if state is not None:
            raise ModelCheckingError(
                "the portfolio engine only decides the initial state"
            )
        tasks = [
            WorkerTask(
                id=name,
                fn=run_engine_check,
                args=(name, source, formula),
                kwargs={"bound": self.bound},
                budget=self.budget,
                chaos=self.chaos,
                label=name,
            )
            for name, source in self._race.items()
        ]
        _counter("portfolio.races").inc()
        supervisor = Supervisor(
            hang_timeout=self.hang_timeout,
            max_restarts=self.max_restarts,
            grace=self.grace,
        )

        def first_verdict(outcomes: Dict[str, TaskOutcome]) -> bool:
            return any(outcome.ok for outcome in outcomes.values())

        with _obs_span("portfolio.race", engines=",".join(self._race)) as sp:
            outcomes = supervisor.run(tasks, stop_when=first_verdict)
            # Telemetry bookkeeping lands on the race span *before* merge —
            # a disagreement/degraded raise must not lose the provenance.
            collector = supervisor.collector
            sp.set(
                outcomes=",".join(
                    "%s=%s" % (o.label, o.status) for o in outcomes.values()
                ),
                worker_spans=collector.spans_ingested,
                worker_series=collector.series_merged,
                telemetry_dropped=collector.dropped,
            )
            verdict = self._merge(formula, outcomes)
            sp.set(winner=self.last_detail)
        return verdict

    def check_batch(self, formulas, state: Any = None) -> Dict:
        """Race each formula of a family in turn (mapping- or list-keyed)."""
        try:
            items = list(formulas.items())
        except AttributeError:
            items = [(formula, formula) for formula in formulas]
        return {key: self.check(formula, state) for key, formula in items}

    # -- merging -----------------------------------------------------------
    def _merge(self, formula: Any, outcomes: Dict[str, TaskOutcome]) -> bool:
        self.last_outcomes = {
            outcome.label: outcome.describe() for outcome in outcomes.values()
        }
        finished = [outcome for outcome in outcomes.values() if outcome.ok]
        if finished:
            verdicts = {
                outcome.label: bool(outcome.result["verdict"]) for outcome in finished
            }
            if len(set(verdicts.values())) > 1:
                raise EngineDisagreementError(
                    "portfolio race produced conflicting verdicts: %s"
                    % ", ".join(
                        "%s=%s" % (name, verdicts[name]) for name in sorted(verdicts)
                    ),
                    formula=formula,
                    verdicts=verdicts,
                )
            # The winner is the verdict that stopped the race (non-late);
            # fall back to any finisher if all arrived in the grace window.
            winner = next(
                (outcome for outcome in finished if not outcome.late), finished[0]
            )
            _counter("portfolio.wins", engine=winner.label).inc()
            detail = winner.result.get("detail") or ""
            self.last_detail = (
                "won by %s (%s)" % (winner.label, detail)
                if detail
                else "won by %s" % winner.label
            )
            return bool(winner.result["verdict"])
        return self._raise_degraded(outcomes)

    def _raise_degraded(self, outcomes: Dict[str, TaskOutcome]) -> bool:
        """No engine finished: raise the most diagnostic structured failure."""
        statuses = {outcome.label: outcome.status for outcome in outcomes.values()}
        post_mortem = {
            outcome.label: outcome.describe() for outcome in outcomes.values()
        }
        summary = "; ".join(
            "%s: %s" % (name, post_mortem[name]) for name in sorted(post_mortem)
        )
        self.last_detail = "no conclusive verdict (%s)" % summary
        dead = {"crashed", "hung", "garbled", "oom", "cancelled"}
        if all(status == "fragment" for status in statuses.values()):
            raise FragmentError(
                "property is outside every raced engine's fragment (%s)" % summary
            )
        if all(status in dead for status in statuses.values()):
            raise EngineCrashError(
                "every portfolio worker died without a verdict (%s)" % summary,
                outcomes=post_mortem,
            )
        if all(status in dead or status == "budget" for status in statuses.values()):
            raise BudgetExceededError(
                "every surviving portfolio worker exhausted its budget (%s)" % summary,
                resource=self._budget_resource(outcomes),
                site="portfolio.race",
            )
        progress = []
        for outcome in outcomes.values():
            if outcome.status == "inconclusive" and outcome.fields:
                spent = ", ".join(
                    "%s=%s" % (key, outcome.fields[key])
                    for key in sorted(outcome.fields)
                )
                progress.append("%s spent %s" % (outcome.label, spent))
        message = "portfolio race was inconclusive (%s)" % summary
        if progress:
            message += " — budget consumed: " + "; ".join(progress)
        raise InconclusiveError(message)

    def _budget_resource(self, outcomes: Dict[str, TaskOutcome]) -> str:
        for outcome in outcomes.values():
            if outcome.status == "budget":
                resource = outcome.fields.get("resource")
                if resource:
                    return str(resource)
        return "deadline"
