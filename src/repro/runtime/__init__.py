"""Fault-tolerant execution runtime: budgets, supervision, chaos testing.

``repro.runtime`` is the layer between the engines and the operating
system.  It owns everything about *how* a check runs rather than *what*
it decides:

``repro.runtime.limits``
    :class:`~repro.runtime.limits.ResourceBudget` ceilings (wall-clock
    deadline, RSS, BDD peak nodes, SAT conflicts) and the cooperative
    :func:`~repro.runtime.limits.checkpoint` hooks threaded through the
    engine hot loops.

``repro.runtime.supervisor``
    A supervised ``multiprocessing`` worker pool with heartbeat-based
    hang detection, crash detection, payload integrity checking, and
    capped exponential-backoff restarts.

``repro.runtime.portfolio``
    The ``portfolio`` meta-engine racing the other engines per property;
    first conclusive verdict wins, losers cancelled, graceful degradation
    when workers die.

``repro.runtime.chaos``
    Deterministic seeded fault injection (``REPRO_CHAOS``) that kills,
    hangs, OOMs, and garbles workers so the recovery guarantees stay
    tested.

Only ``limits`` and ``chaos`` are imported eagerly: the engine modules
import :func:`repro.runtime.limits.checkpoint` from their hot paths, and
pulling the supervisor/portfolio (which import the engines back) here
would create an import cycle.  Semantics are documented in
``docs/RESILIENCE.md``.
"""

from repro.runtime.chaos import ChaosConfig
from repro.runtime.limits import (
    CancelToken,
    ResourceBudget,
    active,
    activate,
    apply_memory_limit,
    checkpoint,
    current_budget,
    deactivate,
)

__all__ = [
    "CancelToken",
    "ChaosConfig",
    "ResourceBudget",
    "activate",
    "active",
    "apply_memory_limit",
    "checkpoint",
    "current_budget",
    "deactivate",
]
