"""Deterministic, seeded fault injection for the worker runtime.

The supervisor's recovery guarantees (restart on crash, hang detection,
graceful portfolio degradation) are only worth having if they are
*exercised*, the same way PR 8's sanitizers exercise the engine
invariants.  This module injects four fault kinds into worker processes
at the cooperative checkpoints declared in :mod:`repro.runtime.limits`:

``kill``
    The worker sends itself ``SIGKILL`` mid-solve — an abrupt crash the
    supervisor must notice via the exit code and restart with backoff.
``hang``
    The worker stops making progress (a long sleep at a checkpoint) —
    heartbeats cease and the supervisor's hang detector must fire.
``oom``
    The worker allocates until ``MemoryError`` — exercising the
    ``RLIMIT_AS`` ceiling and the structured out-of-memory failure path.
``garble``
    The worker's result payload is corrupted after its integrity digest
    was computed — the supervisor must detect the mismatch and discard
    the answer rather than report a wrong verdict.

Faults are **deterministic given a seed**: each worker attempt derives
its own :class:`random.Random` from ``(seed, scope)`` where ``scope``
identifies the task and attempt number, then decides up front which
fault (if any) fires and at which checkpoint count.  Re-running the same
schedule reproduces the same failure, which is what makes the chaos
property tests (``tests/unit/test_runtime_chaos.py``) debuggable.

Configuration comes from the environment —

.. code-block:: shell

    REPRO_CHAOS="kill:0.2,hang:0.1,oom:0.1,garble:0.05" REPRO_CHAOS_SEED=7 \
        repro-mc --engine portfolio --system mutex --size 4

— or programmatically via :func:`enable` / :class:`ChaosConfig`.  The
knobs are documented in ``docs/RESILIENCE.md``.
"""

from __future__ import annotations

import os
import random
import signal
import time  # only time.sleep (hang injection); no clock reads (lint R002)
from typing import Dict, Optional

from repro.runtime import limits as _limits

__all__ = [
    "FAULT_KINDS",
    "ChaosConfig",
    "ChaosInjector",
    "enable",
    "disable",
    "current_injector",
    "from_env",
]

#: The recognised fault kinds, in the order probabilities are evaluated.
FAULT_KINDS = ("kill", "hang", "oom", "garble")

#: How long an injected hang sleeps, in seconds.  Far beyond any sane
#: supervisor hang timeout; bounded so an un-supervised test process
#: still terminates eventually.
HANG_SECONDS = 600.0

#: Checkpoint window within which a triggered fault fires: the injector
#: picks a trigger point uniformly from ``[1, TRIGGER_WINDOW]`` so faults
#: land at different depths of the solve, not always on the first step.
TRIGGER_WINDOW = 64


class ChaosConfig:
    """Per-fault-kind probabilities plus the deterministic seed."""

    __slots__ = ("rates", "seed")

    def __init__(self, rates: Optional[Dict[str, float]] = None, seed: int = 0) -> None:
        self.rates = {kind: 0.0 for kind in FAULT_KINDS}
        for kind, rate in (rates or {}).items():
            if kind not in self.rates:
                raise ValueError(
                    "unknown chaos fault kind %r (expected one of %s)"
                    % (kind, ", ".join(FAULT_KINDS))
                )
            if not 0.0 <= rate <= 1.0:
                raise ValueError("chaos rate for %r must be in [0, 1]; got %r" % (kind, rate))
            self.rates[kind] = rate
        self.seed = seed

    def is_enabled(self) -> bool:
        """Whether any fault kind has a non-zero probability."""
        return any(rate > 0.0 for rate in self.rates.values())

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "ChaosConfig":
        """Parse a ``"kill:0.2,hang:0.1,oom:0.1,garble:0.05"`` spec string.

        An empty spec yields a disabled config (all rates zero); malformed
        entries raise :class:`ValueError` with the offending fragment.
        """
        rates: Dict[str, float] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            kind, sep, rate_text = part.partition(":")
            if not sep:
                raise ValueError(
                    "malformed chaos spec entry %r (expected 'kind:rate')" % part
                )
            try:
                rate = float(rate_text)
            except ValueError:
                raise ValueError(
                    "malformed chaos rate %r in entry %r" % (rate_text, part)
                ) from None
            rates[kind.strip()] = rate
        return cls(rates, seed=seed)

    def as_spec(self) -> str:
        """The inverse of :meth:`parse` (only non-zero rates)."""
        return ",".join(
            "%s:%g" % (kind, self.rates[kind])
            for kind in FAULT_KINDS
            if self.rates[kind] > 0.0
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "ChaosConfig(%r, seed=%d)" % (self.as_spec(), self.seed)


def from_env(environ=None) -> Optional[ChaosConfig]:
    """Build a config from ``REPRO_CHAOS`` / ``REPRO_CHAOS_SEED``.

    Returns ``None`` when ``REPRO_CHAOS`` is unset or empty — the
    distinction between "no env config" and "explicitly disabled config"
    matters to the supervisor (a task's explicit empty config overrides
    the environment).
    """
    environ = os.environ if environ is None else environ
    spec = environ.get("REPRO_CHAOS", "").strip()
    if not spec:
        return None
    seed = int(environ.get("REPRO_CHAOS_SEED", "0"))
    return ChaosConfig.parse(spec, seed=seed)


class ChaosInjector:
    """One attempt's fault schedule, derived deterministically from the seed.

    ``scope`` identifies the attempt (the supervisor uses
    ``"<task_id>#<attempt>"``), so restarted attempts draw fresh faults —
    a kill schedule that re-killed every restart would make the backoff
    loop spin forever at rate 1.0, which is exactly what the
    never-wrong/never-deadlock property test wants to be possible, while
    typical rates let a restart succeed.
    """

    def __init__(self, config: ChaosConfig, scope: str = "") -> None:
        self.config = config
        self.scope = scope
        rng = random.Random("%s|%s" % (config.seed, scope))
        self.fault: Optional[str] = None
        self.trigger_at = 0
        for kind in FAULT_KINDS:
            if rng.random() < config.rates[kind]:
                self.fault = kind
                self.trigger_at = rng.randint(1, TRIGGER_WINDOW)
                break
        self.checkpoints_seen = 0
        self.fired: Optional[str] = None

    # -- checkpoint hook ---------------------------------------------------
    def __call__(self, site: str) -> None:
        """The hook :mod:`repro.runtime.limits` invokes at every checkpoint."""
        if self.fault is None or self.fired is not None:
            return
        self.checkpoints_seen += 1
        if self.checkpoints_seen < self.trigger_at:
            return
        if self.fault == "garble":
            # Garbling happens to the result payload, not at a checkpoint;
            # mark it armed so garble_payload() (called by the worker's
            # send path) knows to corrupt the bytes.
            self.fired = "garble"
            return
        self.fired = self.fault
        if self.fault == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif self.fault == "hang":
            time.sleep(HANG_SECONDS)
        elif self.fault == "oom":
            hog = []
            while True:  # terminated by MemoryError under RLIMIT_AS
                hog.append(bytearray(16 * 1024 * 1024))

    # -- payload corruption ------------------------------------------------
    def should_garble(self) -> bool:
        """Whether the armed garble fault should corrupt this payload."""
        if self.fault != "garble":
            return False
        # A garble armed but never reached by a checkpoint still corrupts
        # the payload: short solves must not dodge the fault entirely.
        self.fired = "garble"
        return True

    def garble_payload(self, payload: bytes) -> bytes:
        """Flip one byte of ``payload`` (position chosen from the seed).

        Called by the worker *after* the integrity digest was computed over
        the true payload, so the supervisor sees a digest mismatch and
        discards the result — corruption must surface as a detected fault,
        never as a silently wrong verdict.
        """
        if not payload:
            return payload
        rng = random.Random("%s|%s|garble" % (self.config.seed, self.scope))
        index = rng.randrange(len(payload))
        corrupted = bytearray(payload)
        corrupted[index] ^= 0xFF
        return bytes(corrupted)


#: The installed injector, or ``None`` while chaos is off.
_injector: Optional[ChaosInjector] = None


def enable(config: ChaosConfig, scope: str = "") -> ChaosInjector:
    """Install an injector for ``config`` and hook it into the checkpoints."""
    global _injector
    _injector = ChaosInjector(config, scope=scope)
    _limits.set_chaos_hook(_injector)
    return _injector


def disable() -> Optional[ChaosInjector]:
    """Uninstall the injector (if any) and return it."""
    global _injector
    injector, _injector = _injector, None
    _limits.set_chaos_hook(None)
    return injector


def current_injector() -> Optional[ChaosInjector]:
    """The installed injector, or ``None``."""
    return _injector
