"""repro — a reproduction of Browne, Clarke & Grumberg (1986/1989):
*Reasoning about Networks with Many Identical Finite State Processes*.

The library provides, as reusable components:

* the temporal logics **CTL\\***, **CTL**, **LTL** and **indexed CTL\\***
  (:mod:`repro.logic`);
* **Kripke structures** and **indexed Kripke structures** with products,
  reductions and reachability (:mod:`repro.kripke`);
* **model checkers** for CTL — the naive labelling algorithm, the compiled
  bitset engine, and the symbolic BDD engine — plus CTL* (via an LTL tableau
  core) and ICTL* (:mod:`repro.mc`);
* a pure-Python **ROBDD package** with hash-consed nodes and memoized
  apply/ite/quantification/relational-product operations (:mod:`repro.bdd`);
* the paper's **correspondence** relation (a block bisimulation with degrees),
  a decision algorithm, and the indexed correspondence / parameterized
  verification workflow (:mod:`repro.correspondence`);
* **process families** and their compositions (:mod:`repro.network`);
* the paper's **example systems** — the Section 5 token ring, the Fig. 3.1 /
  Fig. 4.1 illustrations, and two additional identical-process families
  (:mod:`repro.systems`);
* **experiment drivers** regenerating every figure and claim
  (:mod:`repro.analysis`).

Quick start::

    from repro.systems import token_ring
    from repro.correspondence import ParameterizedVerifier

    small = token_ring.build_token_ring(2)
    large = token_ring.build_token_ring(5)
    verifier = ParameterizedVerifier(small, large, token_ring.section5_index_relation(5))
    result = verifier.check(token_ring.property_eventual_entry())
    assert result.holds          # verified on M_2, valid for M_5 by Theorem 5
"""

from repro import analysis, bdd, correspondence, kripke, logic, mc, network, systems
from repro.errors import (
    CompositionError,
    CorrespondenceError,
    FormulaError,
    FragmentError,
    ModelCheckingError,
    ParseError,
    ReproError,
    RestrictionError,
    StructureError,
    ValidationError,
)

__version__ = "1.0.0"

__all__ = [
    "logic",
    "bdd",
    "kripke",
    "mc",
    "correspondence",
    "network",
    "systems",
    "analysis",
    "ReproError",
    "FormulaError",
    "ParseError",
    "FragmentError",
    "RestrictionError",
    "StructureError",
    "ValidationError",
    "ModelCheckingError",
    "CorrespondenceError",
    "CompositionError",
    "__version__",
]
