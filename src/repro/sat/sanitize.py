"""Opt-in runtime auditor for the CDCL solver's internal invariants.

A structural audit of a :class:`~repro.sat.solver.Solver` at its stable
points (end of :meth:`~repro.sat.solver.Solver.solve` and of
:meth:`~repro.sat.solver.Solver.inprocess`): two-watched-literal
bookkeeping, trail/decision-level consistency, implication-reason
validity, VSIDS heap shape, and learnt-database/LBD accounting.

Mirrors :mod:`repro.bdd.sanitize`: disabled by default, hook sites test
one module global (:data:`MODE`), enable with ``REPRO_SANITIZE=1`` /
:func:`enable` / the ``sanitizers`` pytest fixture.  ``MODE == 2`` is
the count-only mode the overhead benchmark uses.
"""

from __future__ import annotations

import os
from typing import Dict, List

from repro.errors import SanitizerError

__all__ = [
    "MODE",
    "CALLS",
    "enable",
    "enabled",
    "check_solver",
    "maybe_check_solver",
]

#: 0 = off, 1 = audit at every hook site, 2 = count hook firings only.
MODE = 1 if os.environ.get("REPRO_SANITIZE", "") not in ("", "0") else 0

#: Number of hook firings observed in count-only mode (``MODE == 2``).
CALLS = 0


def enable(on: bool = True) -> None:
    """Switch the sanitizer hooks on or off for this process."""
    global MODE
    MODE = 1 if on else 0


def enabled() -> bool:
    return MODE == 1


def maybe_check_solver(solver) -> None:
    """Hook target: audit ``solver`` when enabled, count when counting."""
    global CALLS
    if MODE == 2:
        CALLS += 1
        return
    if MODE:
        check_solver(solver)


def _fail(solver, message: str) -> None:
    raise SanitizerError(
        "SAT sanitizer: %s (solver: %d vars, %d clauses, %d learnts, level %d)"
        % (
            message,
            solver.num_vars,
            len(solver._clauses),
            len(solver._learnts),
            len(solver._trail_lim),
        )
    )


def check_solver(solver) -> None:
    """Audit every structural invariant of ``solver``; raise on the first hole.

    What the CDCL loop promises at a stable (fully propagated) point:

    * array sizes track ``num_vars``; assignments are in ``{-1, 0, +1}``;
    * the trail holds each assigned variable exactly once, as a currently
      true literal, with decision levels matching the ``_trail_lim``
      segmentation; implied literals carry a reason clause that really
      implies them (all other literals false at no higher level);
    * every non-deleted clause of two or more literals is watched exactly
      once under each of ``lits[0]``/``lits[1]`` and nowhere else, every
      watch-list blocker belongs to its clause (or went stale through
      top-level stripping and is permanently false, which cannot mislead),
      and no dangling (unknown, non-deleted) clause hides in a watch list;
    * two-watch semantics: a clause with no true literal has no false
      watched literal (otherwise a propagation or conflict was missed) —
      checked only when the trail is fully propagated and the database is
      still satisfiable as far as the solver knows (``_ok``);
    * the VSIDS heap is a well-formed max-heap consistent with its
      position map, and (at decision level zero) contains every
      unassigned variable — a variable missing from the heap could never
      be branched on again;
    * learnt-database bookkeeping: ``learnt`` flags match the list a
      clause lives in, LBD values are sane, no duplicate or complementary
      literals inside a clause.
    """
    num_vars = solver.num_vars
    assign = solver._assign
    level = solver._level
    reason = solver._reason
    trail = solver._trail
    trail_lim = solver._trail_lim

    # -- array shapes ------------------------------------------------------
    if not (
        len(assign) == len(level) == len(reason) == len(solver._activity) == num_vars + 1
    ):
        _fail(solver, "per-variable arrays disagree with num_vars")
    if len(solver._watches) != 2 * num_vars + 2:
        _fail(solver, "watch-list array has wrong length")
    for var in range(1, num_vars + 1):
        if assign[var] not in (-1, 0, 1):
            _fail(solver, "assignment of var %d is %r" % (var, assign[var]))

    # -- trail / levels ----------------------------------------------------
    decision_level = len(trail_lim)
    if not 0 <= solver._qhead <= len(trail):
        _fail(solver, "qhead %d outside the trail" % solver._qhead)
    previous = 0
    for lim in trail_lim:
        if not previous <= lim <= len(trail):
            _fail(solver, "trail_lim %r is not a monotone segmentation" % (trail_lim,))
        previous = lim
    seen_vars = set()
    segment = 0
    for index, literal in enumerate(trail):
        var = abs(literal)
        if var in seen_vars:
            _fail(solver, "var %d assigned twice on the trail" % var)
        seen_vars.add(var)
        while segment < decision_level and trail_lim[segment] <= index:
            segment += 1
        value = assign[var] if literal > 0 else -assign[var]
        if value != 1:
            _fail(solver, "trail literal %d is not currently true" % literal)
        if level[var] != segment:
            _fail(
                solver,
                "trail literal %d sits in level-%d segment but level[] says %d"
                % (literal, segment, level[var]),
            )
    for var in range(1, num_vars + 1):
        if assign[var] != 0 and var not in seen_vars:
            _fail(solver, "var %d assigned but missing from the trail" % var)
        if assign[var] != 0 and level[var] > decision_level:
            _fail(
                solver,
                "var %d carries level %d above the current decision level %d"
                % (var, level[var], decision_level),
            )

    # -- reasons -----------------------------------------------------------
    for var in range(1, num_vars + 1):
        clause = reason[var]
        if clause is None:
            continue
        if assign[var] == 0:
            _fail(solver, "unassigned var %d still has a reason clause" % var)
        if clause.removed:
            _fail(solver, "reason clause of var %d was deleted" % var)
        literal = var if assign[var] > 0 else -var
        if literal not in clause.lits:
            _fail(solver, "reason clause of var %d does not contain its literal" % var)
        for other in clause.lits:
            if other == literal:
                continue
            other_var = abs(other)
            value = assign[other_var] if other > 0 else -assign[other_var]
            if value != -1:
                _fail(
                    solver,
                    "reason clause of var %d has non-false co-literal %d" % (var, other),
                )
            if level[other_var] > level[var]:
                _fail(
                    solver,
                    "reason clause of var %d uses literal %d from a higher level"
                    % (var, other),
                )

    # -- clause database ---------------------------------------------------
    database: List = []
    for learnt_flag, clauses in ((False, solver._clauses), (True, solver._learnts)):
        for clause in clauses:
            if clause.removed:
                continue
            database.append(clause)
            if clause.learnt != learnt_flag:
                _fail(
                    solver,
                    "clause %r has learnt=%r but lives in the %s list"
                    % (clause.lits, clause.learnt, "learnt" if learnt_flag else "problem"),
                )
            lits = clause.lits
            if len(lits) < 2:
                _fail(solver, "stored clause %r has fewer than two literals" % (lits,))
            vars_here = set()
            for literal in lits:
                var = abs(literal)
                if literal == 0 or var > num_vars:
                    _fail(solver, "clause %r holds invalid literal %d" % (lits, literal))
                if var in vars_here:
                    _fail(
                        solver,
                        "clause %r mentions var %d twice (duplicate or tautology)"
                        % (lits, var),
                    )
                vars_here.add(var)
            if clause.learnt and not 0 <= clause.lbd <= len(lits):
                _fail(solver, "clause %r has implausible LBD %d" % (lits, clause.lbd))

    # -- watch lists -------------------------------------------------------
    known = {id(clause) for clause in database}
    watched_under: Dict[int, List[int]] = {}
    for index in range(2, len(solver._watches)):
        literal = index // 2 if index % 2 == 0 else -(index // 2)
        watchers = solver._watches[index]
        if len(watchers) % 2:
            _fail(solver, "watch list of %d has odd length" % literal)
        for position in range(0, len(watchers), 2):
            blocker = watchers[position]
            clause = watchers[position + 1]
            if clause.removed:
                continue  # lazily purged later; fine
            if id(clause) not in known:
                _fail(
                    solver,
                    "watch list of %d holds a clause missing from the database: %r"
                    % (literal, clause.lits),
                )
            if blocker not in clause.lits:
                # Top-level simplification strips level-0-false literals
                # from lits[2:] in place without touching the watch lists,
                # so a blocker may go stale.  That is benign — a literal
                # false at level 0 can never become true, so the blocker
                # hint can never wrongly skip the clause.  Anything else
                # loose in a watch entry is a real corruption.
                blocker_var = abs(blocker)
                if not 1 <= blocker_var <= num_vars:
                    _fail(solver, "blocker %d is not a literal at all" % blocker)
                value = assign[blocker_var] if blocker > 0 else -assign[blocker_var]
                if not (value == -1 and level[blocker_var] == 0):
                    _fail(
                        solver,
                        "blocker %d is not a literal of the watched clause %r "
                        "(and is not permanently false)" % (blocker, clause.lits),
                    )
            watched_under.setdefault(id(clause), []).append(literal)
    for clause in database:
        expected = sorted(clause.lits[:2])
        actual = sorted(watched_under.get(id(clause), []))
        if actual != expected:
            _fail(
                solver,
                "clause %r should be watched under %r but is watched under %r"
                % (clause.lits, expected, actual),
            )

    # -- two-watch semantics ----------------------------------------------
    fully_propagated = solver._qhead == len(trail) and solver._ok
    if fully_propagated:
        def lit_value(literal: int) -> int:
            value = assign[abs(literal)]
            return -value if literal < 0 else value

        for clause in database:
            if any(lit_value(literal) == 1 for literal in clause.lits):
                continue
            for literal in clause.lits[:2]:
                if lit_value(literal) == -1:
                    _fail(
                        solver,
                        "unsatisfied clause %r has false watched literal %d "
                        "(missed propagation)" % (clause.lits, literal),
                    )

    # -- VSIDS heap --------------------------------------------------------
    order = solver._order
    heap = order._heap
    position = order._position
    activity = solver._activity
    if len(heap) != len(position):
        _fail(solver, "VSIDS heap and position map sizes differ")
    for index, var in enumerate(heap):
        if not 1 <= var <= num_vars:
            _fail(solver, "VSIDS heap holds invalid var %r" % (var,))
        if position.get(var) != index:
            _fail(solver, "VSIDS position map is stale for var %d" % var)
        if index:
            parent = heap[(index - 1) // 2]
            if activity[parent] < activity[var]:
                _fail(
                    solver,
                    "VSIDS max-heap violated: parent %d (%.3g) < child %d (%.3g)"
                    % (parent, activity[parent], var, activity[var]),
                )
    if decision_level == 0 and fully_propagated:
        for var in range(1, num_vars + 1):
            if assign[var] == 0 and var not in position:
                _fail(solver, "unassigned var %d fell out of the VSIDS heap" % var)
