"""SAT subsystem: a pure-Python CDCL solver and CNF/circuit tooling.

Two layers:

* :mod:`repro.sat.cnf` — the formula side: DIMACS-convention literals, a
  growable :class:`~repro.sat.cnf.CNF` clause database, Tseitin gate
  encoding (shared with the solver through the
  :class:`~repro.sat.cnf.ClauseSink` mixin), BDD-to-CNF lowering
  (:func:`~repro.sat.cnf.tseitin_bdd`), DIMACS import/export, and the
  brute-force reference semantics used for differential testing;
* :mod:`repro.sat.solver` — :class:`~repro.sat.solver.Solver`, an
  incremental CDCL solver (two-watched-literal propagation, first-UIP
  clause learning with database reduction, VSIDS + phase saving, Luby
  restarts, assumptions).

The bounded model checker (:mod:`repro.mc.bmc`) is the primary in-repo
client: it unrolls BDD transition relations into a solver frame by frame.
"""

from repro.sat.cnf import (
    CNF,
    ClauseSink,
    SatError,
    enumerate_models,
    evaluate_clauses,
    naive_satisfiable,
    parse_dimacs,
    to_dimacs,
    tseitin_bdd,
)
from repro.sat.solver import Solver, SolverStats, luby

__all__ = [
    "CNF",
    "ClauseSink",
    "SatError",
    "Solver",
    "SolverStats",
    "luby",
    "tseitin_bdd",
    "to_dimacs",
    "parse_dimacs",
    "evaluate_clauses",
    "enumerate_models",
    "naive_satisfiable",
]
