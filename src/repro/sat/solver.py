"""A CDCL SAT solver in pure Python (MiniSat lineage).

The solver implements the standard modern architecture:

* **two-watched-literal propagation** — each clause watches two of its
  literals; only clauses watching a literal that just became false are ever
  visited, so unit propagation touches a small fraction of the database;
* **first-UIP conflict analysis** — every conflict is resolved backwards
  along the implication graph to the first unique implication point, the
  learned clause is minimized by self-subsumption against the reason graph,
  and the solver backjumps (not backtracks) to the second-highest decision
  level in the clause;
* **clause learning with database reduction** — learned clauses carry an
  activity (bumped when they participate in conflict analysis, decayed
  geometrically); when the learnt database outgrows its budget the
  least-active half is deleted (binary and reason ("locked") clauses are
  kept) and the budget grows;
* **VSIDS branching with phase saving** — variable activities are bumped
  during analysis and decayed per conflict; decisions pick the most active
  unassigned variable from an indexed max-heap and re-use the polarity the
  variable last had (phase saving), which preserves progress across
  restarts;
* **Luby restarts** — search is abandoned and restarted from decision level
  zero on the reluctant-doubling schedule, keeping all learned clauses;
* **incremental solving under assumptions** — :meth:`solve` takes a list of
  assumption literals decided before any free decision; clauses may be added
  between calls and everything learned in one call speeds up the next.  This
  is the interface the bounded model checker drives: one solver per
  unrolling, one ``solve([¬P@k])`` per bound.

Literals use the DIMACS convention of :mod:`repro.sat.cnf` (positive ints
are variables, negation is arithmetic negation), and the solver exposes the
same ``new_var`` / ``add_clause`` sink protocol as :class:`repro.sat.cnf.CNF`
so Tseitin encodings can stream straight into it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sat.cnf import ClauseSink, SatError

__all__ = ["Solver", "SolverStats", "luby"]


def luby(index: int, base: int = 1) -> int:
    """The reluctant-doubling (Luby) sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 …

    ``index`` is zero-based; the result is multiplied by ``base``.
    """
    # Find the finite subsequence containing `index` and its position in it.
    size, sequence = 1, 0
    while size < index + 1:
        sequence += 1
        size = 2 * size + 1
    while size - 1 != index:
        size = (size - 1) >> 1
        sequence -= 1
        index = index % size
    return base * (1 << sequence)


@dataclass
class SolverStats:
    """Cumulative search counters (exposed via ``repro-mc --profile``)."""

    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    restarts: int = 0
    learned_clauses: int = 0
    deleted_clauses: int = 0
    solve_calls: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Flatten into a JSON-serialisable dictionary."""
        return {
            "conflicts": self.conflicts,
            "decisions": self.decisions,
            "propagations": self.propagations,
            "restarts": self.restarts,
            "learned_clauses": self.learned_clauses,
            "deleted_clauses": self.deleted_clauses,
            "solve_calls": self.solve_calls,
        }

    def accumulate(self, other: "SolverStats") -> None:
        """Add another stats record into this one (for multi-solver aggregation)."""
        self.conflicts += other.conflicts
        self.decisions += other.decisions
        self.propagations += other.propagations
        self.restarts += other.restarts
        self.learned_clauses += other.learned_clauses
        self.deleted_clauses += other.deleted_clauses
        self.solve_calls += other.solve_calls


class _Clause:
    """A clause of the database; ``lits[0]`` and ``lits[1]`` are watched."""

    __slots__ = ("lits", "learnt", "activity")

    def __init__(self, lits: List[int], learnt: bool) -> None:
        self.lits = lits
        self.learnt = learnt
        self.activity = 0.0


class _VarOrder:
    """Indexed max-heap over variable activities (the VSIDS decision order)."""

    __slots__ = ("_heap", "_position", "_activity")

    def __init__(self, activity: List[float]) -> None:
        self._heap: List[int] = []
        self._position: Dict[int, int] = {}
        self._activity = activity

    def __contains__(self, var: int) -> bool:
        return var in self._position

    def insert(self, var: int) -> None:
        if var in self._position:
            return
        self._heap.append(var)
        self._position[var] = len(self._heap) - 1
        self._up(len(self._heap) - 1)

    def bump(self, var: int) -> None:
        position = self._position.get(var)
        if position is not None:
            self._up(position)

    def pop(self) -> Optional[int]:
        if not self._heap:
            return None
        top = self._heap[0]
        last = self._heap.pop()
        del self._position[top]
        if self._heap:
            self._heap[0] = last
            self._position[last] = 0
            self._down(0)
        return top

    def _up(self, index: int) -> None:
        heap, position, activity = self._heap, self._position, self._activity
        var = heap[index]
        score = activity[var]
        while index > 0:
            parent = (index - 1) >> 1
            if activity[heap[parent]] >= score:
                break
            heap[index] = heap[parent]
            position[heap[index]] = index
            index = parent
        heap[index] = var
        position[var] = index

    def _down(self, index: int) -> None:
        heap, position, activity = self._heap, self._position, self._activity
        size = len(heap)
        var = heap[index]
        score = activity[var]
        while True:
            child = 2 * index + 1
            if child >= size:
                break
            if child + 1 < size and activity[heap[child + 1]] > activity[heap[child]]:
                child += 1
            if activity[heap[child]] <= score:
                break
            heap[index] = heap[child]
            position[heap[index]] = index
            index = child
        heap[index] = var
        position[var] = index


class Solver(ClauseSink):
    """An incremental CDCL SAT solver.

    Usage::

        solver = Solver()
        x, y = solver.new_var(), solver.new_var()
        solver.add_clause([x, y])
        solver.add_clause([-x, y])
        assert solver.solve()
        assert solver.model_value(y)
        assert not solver.solve(assumptions=[-y])

    Clauses may be added between :meth:`solve` calls; learned clauses,
    activities and saved phases persist, which is what makes the
    bound-by-bound BMC loop cheap.
    """

    _RESTART_BASE = 100
    _RESCALE_LIMIT = 1e100

    def __init__(self, var_decay: float = 0.95, clause_decay: float = 0.999) -> None:
        self.stats = SolverStats()
        self._ok = True
        self._num_vars = 0
        # Per-variable state, 1-indexed (slot 0 unused).
        self._assign: List[int] = [0]  # 0 unassigned, +1 true, -1 false
        self._level: List[int] = [0]
        self._reason: List[Optional[_Clause]] = [None]
        self._phase: List[bool] = [False]
        self._activity: List[float] = [0.0]
        self._seen: List[bool] = [False]
        # Watches indexed by literal: 2*var for the positive literal, 2*var+1
        # for the negative one.
        self._watches: List[List[_Clause]] = [[], []]
        self._clauses: List[_Clause] = []
        self._learnts: List[_Clause] = []
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._order = _VarOrder(self._activity)
        self._var_inc = 1.0
        self._var_decay = var_decay
        self._cla_inc = 1.0
        self._cla_decay = clause_decay
        self._max_learnts = 1000.0
        self._model: Dict[int, bool] = {}
        self._true_literal = None

    # -- the clause-sink protocol (shared with repro.sat.cnf.CNF) -------------

    @property
    def num_vars(self) -> int:
        """The number of allocated variables."""
        return self._num_vars

    def new_var(self) -> int:
        """Allocate a fresh variable and return it (a positive integer)."""
        self._num_vars += 1
        self._assign.append(0)
        self._level.append(0)
        self._reason.append(None)
        self._phase.append(False)
        self._activity.append(0.0)
        self._seen.append(False)
        self._watches.append([])
        self._watches.append([])
        self._order.insert(self._num_vars)
        return self._num_vars

    def _ensure_var(self, var: int) -> None:
        while self._num_vars < var:
            self.new_var()

    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a clause; returns ``False`` when the database became unsatisfiable.

        The clause is simplified against the top-level assignment: satisfied
        clauses are dropped, false literals removed, duplicate literals
        merged, and tautologies ignored.  Adding a clause cancels any
        in-progress assignment back to decision level zero (the incremental
        contract: clauses arrive between :meth:`solve` calls).
        """
        self._cancel_until(0)
        if not self._ok:
            return False
        seen_here: Dict[int, int] = {}
        simplified: List[int] = []
        for literal in literals:
            if literal == 0:
                raise SatError("0 is not a literal (it terminates DIMACS clauses)")
            var = abs(literal)
            self._ensure_var(var)
            value = self._value(literal)
            if value == 1:
                return True  # satisfied at level 0
            if value == -1:
                continue  # false at level 0; drop the literal
            previous = seen_here.get(var)
            if previous is None:
                seen_here[var] = literal
                simplified.append(literal)
            elif previous != literal:
                return True  # p ∨ ¬p: tautology
        if not simplified:
            self._ok = False
            return False
        if len(simplified) == 1:
            self._enqueue(simplified[0], None)
            if self._propagate() is not None:
                self._ok = False
                return False
            return True
        clause = _Clause(simplified, learnt=False)
        self._clauses.append(clause)
        self._attach(clause)
        return True

    # -- assignments -----------------------------------------------------------

    @staticmethod
    def _watch_index(literal: int) -> int:
        return 2 * literal if literal > 0 else -2 * literal + 1

    def _value(self, literal: int) -> int:
        """+1 when ``literal`` is true, -1 when false, 0 when unassigned."""
        value = self._assign[abs(literal)]
        return -value if literal < 0 else value

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _enqueue(self, literal: int, reason: Optional[_Clause]) -> None:
        var = abs(literal)
        self._assign[var] = 1 if literal > 0 else -1
        self._level[var] = self._decision_level()
        self._reason[var] = reason
        self._phase[var] = literal > 0
        self._trail.append(literal)

    def _cancel_until(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        bound = self._trail_lim[level]
        order = self._order
        for index in range(len(self._trail) - 1, bound - 1, -1):
            var = abs(self._trail[index])
            self._assign[var] = 0
            self._reason[var] = None
            order.insert(var)
        del self._trail[bound:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    def _attach(self, clause: _Clause) -> None:
        self._watches[self._watch_index(clause.lits[0])].append(clause)
        self._watches[self._watch_index(clause.lits[1])].append(clause)

    def _detach(self, clause: _Clause) -> None:
        self._watches[self._watch_index(clause.lits[0])].remove(clause)
        self._watches[self._watch_index(clause.lits[1])].remove(clause)

    # -- propagation -----------------------------------------------------------

    def _propagate(self) -> Optional[_Clause]:
        """Unit propagation; returns the conflicting clause, if any."""
        stats = self.stats
        while self._qhead < len(self._trail):
            literal = self._trail[self._qhead]
            self._qhead += 1
            stats.propagations += 1
            false_literal = -literal
            watchers = self._watches[self._watch_index(false_literal)]
            index = 0
            kept = 0
            size = len(watchers)
            while index < size:
                clause = watchers[index]
                index += 1
                lits = clause.lits
                # Normalise: the false literal sits at position 1.
                if lits[0] == false_literal:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                if self._value(first) == 1:
                    watchers[kept] = clause
                    kept += 1
                    continue
                for position in range(2, len(lits)):
                    if self._value(lits[position]) != -1:
                        lits[1], lits[position] = lits[position], lits[1]
                        self._watches[self._watch_index(lits[1])].append(clause)
                        break
                else:
                    watchers[kept] = clause
                    kept += 1
                    if self._value(first) == -1:
                        # Conflict: keep the unvisited suffix watched, too.
                        while index < size:
                            watchers[kept] = watchers[index]
                            kept += 1
                            index += 1
                        del watchers[kept:]
                        self._qhead = len(self._trail)
                        return clause
                    self._enqueue(first, clause)
            del watchers[kept:]
        return None

    # -- activities ---------------------------------------------------------------

    def _var_bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > self._RESCALE_LIMIT:
            for index in range(1, self._num_vars + 1):
                self._activity[index] *= 1e-100
            self._var_inc *= 1e-100
        self._order.bump(var)

    def _var_decay_tick(self) -> None:
        self._var_inc /= self._var_decay

    def _cla_bump(self, clause: _Clause) -> None:
        clause.activity += self._cla_inc
        if clause.activity > 1e20:
            for learnt in self._learnts:
                learnt.activity *= 1e-20
            self._cla_inc *= 1e-20

    def _cla_decay_tick(self) -> None:
        self._cla_inc /= self._cla_decay

    # -- conflict analysis --------------------------------------------------------

    def _analyze(self, conflict: _Clause) -> Tuple[List[int], int]:
        """First-UIP learning; returns ``(learnt_clause, backjump_level)``.

        ``learnt_clause[0]`` is the asserting literal.  The clause is
        minimized by removing every literal whose reason clause is subsumed
        by the remaining literals (self-subsumption against the implication
        graph).
        """
        seen = self._seen
        level = self._level
        trail = self._trail
        current_level = self._decision_level()
        learnt: List[int] = [0]  # placeholder for the asserting literal
        to_clear: List[int] = []
        path_count = 0
        literal = 0  # 0 = conflict clause itself (take every literal)
        index = len(trail)
        clause: Optional[_Clause] = conflict
        while True:
            assert clause is not None
            self._cla_bump(clause)
            start = 0 if literal == 0 else 1
            for position in range(start, len(clause.lits)):
                other = clause.lits[position]
                var = abs(other)
                if not seen[var] and level[var] > 0:
                    seen[var] = True
                    to_clear.append(var)
                    self._var_bump(var)
                    if level[var] >= current_level:
                        path_count += 1
                    else:
                        learnt.append(other)
            while True:
                index -= 1
                if seen[abs(trail[index])]:
                    break
            literal = trail[index]
            var = abs(literal)
            clause = self._reason[var]
            seen[var] = False
            path_count -= 1
            if path_count == 0:
                break
        learnt[0] = -literal
        # Self-subsumption minimization: a non-asserting literal is redundant
        # when its reason exists and every reason literal is already seen (or
        # fixed at level 0).
        kept = [learnt[0]]
        for other in learnt[1:]:
            reason = self._reason[abs(other)]
            if reason is None:
                kept.append(other)
                continue
            for reason_literal in reason.lits:
                var = abs(reason_literal)
                if reason_literal != -other and not seen[var] and level[var] > 0:
                    kept.append(other)
                    break
        learnt = kept
        for var in to_clear:
            seen[var] = False
        if len(learnt) == 1:
            return learnt, 0
        # Backjump to the second-highest level; put that literal at watch 1.
        best = 1
        for position in range(2, len(learnt)):
            if level[abs(learnt[position])] > level[abs(learnt[best])]:
                best = position
        learnt[1], learnt[best] = learnt[best], learnt[1]
        return learnt, level[abs(learnt[1])]

    # -- learnt-database reduction ------------------------------------------------

    def _reduce_db(self) -> None:
        """Delete the least-active half of the learnt clauses.

        Binary clauses and clauses currently acting as a reason ("locked")
        survive; the rest go in activity order.
        """
        locked = {id(reason) for reason in self._reason if reason is not None}
        self._learnts.sort(key=lambda clause: clause.activity)
        keep: List[_Clause] = []
        removable = len(self._learnts) // 2
        removed = 0
        for clause in self._learnts:
            if removed < removable and len(clause.lits) > 2 and id(clause) not in locked:
                self._detach(clause)
                removed += 1
            else:
                keep.append(clause)
        self._learnts = keep
        self.stats.deleted_clauses += removed

    # -- search --------------------------------------------------------------------

    def _pick_branch_literal(self) -> Optional[int]:
        order = self._order
        while True:
            var = order.pop()
            if var is None:
                return None
            if self._assign[var] == 0:
                return var if self._phase[var] else -var

    def _record_learnt(self, learnt: List[int]) -> None:
        if len(learnt) == 1:
            self._enqueue(learnt[0], None)
            return
        clause = _Clause(learnt, learnt=True)
        self._learnts.append(clause)
        self._attach(clause)
        self._cla_bump(clause)
        self.stats.learned_clauses += 1
        self._enqueue(learnt[0], clause)

    def _search(self, budget: int, assumptions: Sequence[int]) -> Optional[bool]:
        """Search until SAT/UNSAT or ``budget`` conflicts (``None`` = restart)."""
        conflicts_here = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_here += 1
                if self._decision_level() == 0:
                    self._ok = False
                    return False
                learnt, backjump_level = self._analyze(conflict)
                self._cancel_until(backjump_level)
                self._record_learnt(learnt)
                self._var_decay_tick()
                self._cla_decay_tick()
                continue
            if conflicts_here >= budget:
                self._cancel_until(0)
                self.stats.restarts += 1
                return None
            if len(self._learnts) >= self._max_learnts + len(self._trail):
                self._reduce_db()
            literal: Optional[int] = None
            while self._decision_level() < len(assumptions):
                assumption = assumptions[self._decision_level()]
                value = self._value(assumption)
                if value == 1:
                    self._trail_lim.append(len(self._trail))  # dummy level
                elif value == -1:
                    return False  # UNSAT under the assumptions
                else:
                    literal = assumption
                    break
            if literal is None:
                literal = self._pick_branch_literal()
                if literal is None:
                    self._model = {
                        var: self._assign[var] > 0 for var in range(1, self._num_vars + 1)
                    }
                    return True
                self.stats.decisions += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(literal, None)

    def solve(self, assumptions: Sequence[int] = ()) -> bool:
        """Decide satisfiability of the database under ``assumptions``.

        Returns ``True`` and stores a model (see :meth:`model_value`) when
        satisfiable; ``False`` when the clauses are unsatisfiable under the
        assumptions (or outright).  The solver state persists across calls.
        """
        assumptions = [int(literal) for literal in assumptions]
        for literal in assumptions:
            if literal == 0:
                raise SatError("0 is not a literal")
            self._ensure_var(abs(literal))
        self.stats.solve_calls += 1
        self._model = {}  # a stale model must not survive an UNSAT answer
        self._cancel_until(0)
        if not self._ok:
            return False
        if self._propagate() is not None:
            self._ok = False
            return False
        restarts = 0
        while True:
            budget = luby(restarts, self._RESTART_BASE)
            status = self._search(budget, assumptions)
            if status is not None:
                self._cancel_until(0)
                return status
            restarts += 1
            self._max_learnts *= 1.05

    # -- models ---------------------------------------------------------------------

    def model_value(self, literal: int) -> bool:
        """The last model's value of ``literal`` (only valid after a SAT answer)."""
        if not self._model:
            raise SatError("no model available; the last solve() did not return SAT")
        value = self._model.get(abs(literal))
        if value is None:
            raise SatError("variable %d was not part of the last model" % abs(literal))
        return (not value) if literal < 0 else value

    def model(self) -> Dict[int, bool]:
        """The last model as a ``{variable: truth value}`` dictionary."""
        if not self._model:
            raise SatError("no model available; the last solve() did not return SAT")
        return dict(self._model)

    # -- introspection ---------------------------------------------------------------

    @property
    def num_clauses(self) -> int:
        """The number of problem (non-learnt) clauses currently attached."""
        return len(self._clauses)

    @property
    def num_learnts(self) -> int:
        """The number of learnt clauses currently attached."""
        return len(self._learnts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<Solver: %d vars, %d clauses, %d learnts, %d conflicts>" % (
            self._num_vars,
            len(self._clauses),
            len(self._learnts),
            self.stats.conflicts,
        )
