"""A CDCL SAT solver in pure Python (MiniSat lineage).

The solver implements the standard modern architecture:

* **two-watched-literal propagation with blockers** — each clause watches two
  of its literals; the watch lists are flat interleaved arrays of
  ``blocker, clause`` pairs, so a clause whose cached blocker literal is
  already true is skipped without ever dereferencing the clause body, and
  only clauses watching a literal that just became false are visited at all;
* **first-UIP conflict analysis** — every conflict is resolved backwards
  along the implication graph to the first unique implication point, the
  learned clause is minimized by self-subsumption against the reason graph,
  and the solver backjumps (not backtracks) to the second-highest decision
  level in the clause;
* **LBD-aware clause learning with database reduction** — every learned
  clause is tagged with its literal-block distance (LBD, the number of
  distinct decision levels it spans — "glue"); when the learnt database
  outgrows its budget, binary, reason-locked and low-LBD ("glue") clauses
  are kept and the worst half of the rest (high LBD, low activity) is
  deleted.  A clause revisited during conflict analysis has its LBD
  re-measured and keeps the minimum;
* **on-the-fly subsumption** — when a freshly minimized learnt clause
  subsumes the conflicting clause it was derived from, the conflict clause
  is dropped from the database (and the learnt clause promoted to a problem
  clause when the subsumed clause was one);
* **inprocessing** (:meth:`Solver.inprocess`, also auto-triggered every few
  thousand conflicts) — top-level simplification, signature-filtered
  backward subsumption and self-subsumption strengthening, and bounded
  vivification (probing each clause's literals under unit propagation to
  shorten it);
* **VSIDS branching with phase saving** — variable activities are bumped
  during analysis and decayed per conflict; decisions pick the most active
  unassigned variable from an indexed max-heap and re-use the polarity the
  variable last had (phase saving), which preserves progress across
  restarts;
* **Luby restarts** — search is abandoned and restarted from decision level
  zero on the reluctant-doubling schedule, keeping all learned clauses;
* **incremental solving under assumptions** — :meth:`solve` takes a list of
  assumption literals decided before any free decision; clauses may be added
  between calls and everything learned in one call speeds up the next.
  After an UNSAT answer under assumptions, :meth:`unsat_core` names the
  subset of the assumptions that the refutation actually used (the
  ``analyze_final`` walk of MiniSat).  This is the interface the SAT-based
  model checkers drive: the bounded model checker issues one
  ``solve([¬P@k])`` per bound, and the IC3 engine issues relative-induction
  queries whose cores seed cube generalization.

Literals use the DIMACS convention of :mod:`repro.sat.cnf` (positive ints
are variables, negation is arithmetic negation), and the solver exposes the
same ``new_var`` / ``add_clause`` sink protocol as :class:`repro.sat.cnf.CNF`
so Tseitin encodings can stream straight into it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import repro.sat.sanitize as _sanitize
from repro.obs import metrics as _metrics
from repro.obs.trace import span as _span
from repro.runtime.limits import checkpoint as _checkpoint
from repro.sat.cnf import ClauseSink, SatError
from repro.sat.drat import ProofLog

__all__ = ["Solver", "SolverStats", "luby"]


def luby(index: int, base: int = 1) -> int:
    """The reluctant-doubling (Luby) sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 …

    ``index`` is zero-based; the result is multiplied by ``base``.
    """
    # Find the finite subsequence containing `index` and its position in it.
    size, sequence = 1, 0
    while size < index + 1:
        sequence += 1
        size = 2 * size + 1
    while size - 1 != index:
        size = (size - 1) >> 1
        sequence -= 1
        index = index % size
    return base * (1 << sequence)


@dataclass
class SolverStats:
    """Cumulative search counters (exposed via ``repro-mc --profile``)."""

    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    restarts: int = 0
    learned_clauses: int = 0
    deleted_clauses: int = 0
    solve_calls: int = 0
    subsumed_clauses: int = 0
    strengthened_clauses: int = 0
    inprocessings: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Flatten into a JSON-serialisable dictionary."""
        return {
            "conflicts": self.conflicts,
            "decisions": self.decisions,
            "propagations": self.propagations,
            "restarts": self.restarts,
            "learned_clauses": self.learned_clauses,
            "deleted_clauses": self.deleted_clauses,
            "solve_calls": self.solve_calls,
            "subsumed_clauses": self.subsumed_clauses,
            "strengthened_clauses": self.strengthened_clauses,
            "inprocessings": self.inprocessings,
        }

    def accumulate(self, other: "SolverStats") -> None:
        """Add another stats record into this one (for multi-solver aggregation)."""
        self.conflicts += other.conflicts
        self.decisions += other.decisions
        self.propagations += other.propagations
        self.restarts += other.restarts
        self.learned_clauses += other.learned_clauses
        self.deleted_clauses += other.deleted_clauses
        self.solve_calls += other.solve_calls
        self.subsumed_clauses += other.subsumed_clauses
        self.strengthened_clauses += other.strengthened_clauses
        self.inprocessings += other.inprocessings


class _Clause:
    """A clause of the database; ``lits[0]`` and ``lits[1]`` are watched.

    ``lbd`` is the literal-block distance measured when the clause was
    learned (lowered whenever a re-measure during conflict analysis comes
    out smaller); ``removed`` marks the clause as logically deleted — watch
    lists purge such entries lazily during propagation.
    """

    __slots__ = ("lits", "learnt", "activity", "lbd", "removed")

    def __init__(self, lits: List[int], learnt: bool, lbd: int = 0) -> None:
        self.lits = lits
        self.learnt = learnt
        self.activity = 0.0
        self.lbd = lbd
        self.removed = False


class _VarOrder:
    """Indexed max-heap over variable activities (the VSIDS decision order)."""

    __slots__ = ("_heap", "_position", "_activity")

    def __init__(self, activity: List[float]) -> None:
        self._heap: List[int] = []
        self._position: Dict[int, int] = {}
        self._activity = activity

    def __contains__(self, var: int) -> bool:
        return var in self._position

    def insert(self, var: int) -> None:
        if var in self._position:
            return
        self._heap.append(var)
        self._position[var] = len(self._heap) - 1
        self._up(len(self._heap) - 1)

    def bump(self, var: int) -> None:
        position = self._position.get(var)
        if position is not None:
            self._up(position)

    def pop(self) -> Optional[int]:
        if not self._heap:
            return None
        top = self._heap[0]
        last = self._heap.pop()
        del self._position[top]
        if self._heap:
            self._heap[0] = last
            self._position[last] = 0
            self._down(0)
        return top

    def _up(self, index: int) -> None:
        heap, position, activity = self._heap, self._position, self._activity
        var = heap[index]
        score = activity[var]
        while index > 0:
            parent = (index - 1) >> 1
            if activity[heap[parent]] >= score:
                break
            heap[index] = heap[parent]
            position[heap[index]] = index
            index = parent
        heap[index] = var
        position[var] = index

    def _down(self, index: int) -> None:
        heap, position, activity = self._heap, self._position, self._activity
        size = len(heap)
        var = heap[index]
        score = activity[var]
        while True:
            child = 2 * index + 1
            if child >= size:
                break
            if child + 1 < size and activity[heap[child + 1]] > activity[heap[child]]:
                child += 1
            if activity[heap[child]] <= score:
                break
            heap[index] = heap[child]
            position[heap[index]] = index
            index = child
        heap[index] = var
        position[var] = index


class Solver(ClauseSink):
    """An incremental CDCL SAT solver.

    Usage::

        solver = Solver()
        x, y = solver.new_var(), solver.new_var()
        solver.add_clause([x, y])
        solver.add_clause([-x, y])
        assert solver.solve()
        assert solver.model_value(y)
        assert not solver.solve(assumptions=[-y])
        assert solver.unsat_core() == frozenset({-y})

    Clauses may be added between :meth:`solve` calls; learned clauses,
    activities and saved phases persist, which is what makes the
    bound-by-bound BMC loop and the frame-by-frame IC3 loop cheap.
    """

    _RESTART_BASE = 100
    _RESCALE_LIMIT = 1e100
    _INPROCESS_INTERVAL = 4000
    _VIVIFY_CLAUSE_LIMIT = 300
    _VIVIFY_LENGTH_LIMIT = 16

    def __init__(self, var_decay: float = 0.95, clause_decay: float = 0.999) -> None:
        self.stats = SolverStats()
        self._ok = True
        self._num_vars = 0
        # Per-variable state, 1-indexed (slot 0 unused).
        self._assign: List[int] = [0]  # 0 unassigned, +1 true, -1 false
        self._level: List[int] = [0]
        self._reason: List[Optional[_Clause]] = [None]
        self._phase: List[bool] = [False]
        self._activity: List[float] = [0.0]
        self._seen: List[bool] = [False]
        # Watches indexed by literal (2*var for positive, 2*var+1 for
        # negative); each entry is a flat interleaved array
        # ``[blocker, clause, blocker, clause, …]``.
        self._watches: List[List[object]] = [[], []]
        self._clauses: List[_Clause] = []
        self._learnts: List[_Clause] = []
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._order = _VarOrder(self._activity)
        self._var_inc = 1.0
        self._var_decay = var_decay
        self._cla_inc = 1.0
        self._cla_decay = clause_decay
        self._max_learnts = 1000.0
        self._model: Dict[int, bool] = {}
        self._conflict_core: Optional[FrozenSet[int]] = None
        self._next_inprocess = self._INPROCESS_INTERVAL
        self._true_literal = None
        self._proof: Optional[ProofLog] = None

    # -- the clause-sink protocol (shared with repro.sat.cnf.CNF) -------------

    @property
    def num_vars(self) -> int:
        """The number of allocated variables."""
        return self._num_vars

    def new_var(self) -> int:
        """Allocate a fresh variable and return it (a positive integer)."""
        self._num_vars += 1
        self._assign.append(0)
        self._level.append(0)
        self._reason.append(None)
        self._phase.append(False)
        self._activity.append(0.0)
        self._seen.append(False)
        self._watches.append([])
        self._watches.append([])
        self._order.insert(self._num_vars)
        return self._num_vars

    def _ensure_var(self, var: int) -> None:
        while self._num_vars < var:
            self.new_var()

    # -- proof logging -----------------------------------------------------

    @property
    def proof(self) -> Optional[ProofLog]:
        """The attached :class:`~repro.sat.drat.ProofLog`, if any."""
        return self._proof

    def start_proof(self) -> ProofLog:
        """Attach a fresh DRAT-style proof log and return it.

        From this point on, every input clause, derived clause, deletion
        and UNSAT verdict is recorded; :func:`repro.sat.drat.check_proof`
        certifies the transcript independently of the solver.  Clauses
        (and level-zero units) already in the database are snapshotted as
        inputs, so a proof can be started mid-life on an incremental
        solver.  Attaching a new log replaces any previous one.
        """
        log = ProofLog()
        if not self._ok:
            log.input(())
        else:
            level0 = self._trail[: self._trail_lim[0]] if self._trail_lim else self._trail
            for literal in level0:
                log.input((literal,))
            for store in (self._clauses, self._learnts):
                for clause in store:
                    if not clause.removed:
                        log.input(tuple(clause.lits))
        self._proof = log
        return log

    def stop_proof(self) -> None:
        """Detach the proof log; subsequent derivations are not recorded."""
        self._proof = None

    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a clause; returns ``False`` when the database became unsatisfiable.

        The clause is simplified against the top-level assignment: satisfied
        clauses are dropped, false literals removed, duplicate literals
        merged, and tautologies ignored.  Adding a clause cancels any
        in-progress assignment back to decision level zero (the incremental
        contract: clauses arrive between :meth:`solve` calls).
        """
        self._cancel_until(0)
        if not self._ok:
            return False
        literals = list(literals)
        if self._proof is not None:
            self._proof.input(literals)
        seen_here: Dict[int, int] = {}
        simplified: List[int] = []
        for literal in literals:
            if literal == 0:
                raise SatError("0 is not a literal (it terminates DIMACS clauses)")
            var = abs(literal)
            self._ensure_var(var)
            value = self._value(literal)
            if value == 1:
                return True  # satisfied at level 0
            if value == -1:
                continue  # false at level 0; drop the literal
            previous = seen_here.get(var)
            if previous is None:
                seen_here[var] = literal
                simplified.append(literal)
            elif previous != literal:
                return True  # p ∨ ¬p: tautology
        if self._proof is not None and sorted(simplified) != sorted(literals):
            # The simplified clause (false literals stripped, duplicates
            # merged) is RUP against the input clause plus the level-0
            # units, so it earns a derivation step of its own.
            self._proof.add(simplified)
        if not simplified:
            self._ok = False
            return False
        if len(simplified) == 1:
            self._enqueue(simplified[0], None)
            if self._propagate() is not None:
                self._ok = False
                return False
            return True
        clause = _Clause(simplified, learnt=False)
        self._clauses.append(clause)
        self._attach(clause)
        return True

    # -- assignments -----------------------------------------------------------

    @staticmethod
    def _watch_index(literal: int) -> int:
        return 2 * literal if literal > 0 else -2 * literal + 1

    def _value(self, literal: int) -> int:
        """+1 when ``literal`` is true, -1 when false, 0 when unassigned."""
        value = self._assign[abs(literal)]
        return -value if literal < 0 else value

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _enqueue(self, literal: int, reason: Optional[_Clause]) -> None:
        var = abs(literal)
        self._assign[var] = 1 if literal > 0 else -1
        self._level[var] = self._decision_level()
        self._reason[var] = reason
        self._phase[var] = literal > 0
        self._trail.append(literal)

    def _cancel_until(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        bound = self._trail_lim[level]
        order = self._order
        for index in range(len(self._trail) - 1, bound - 1, -1):
            var = abs(self._trail[index])
            self._assign[var] = 0
            self._reason[var] = None
            order.insert(var)
        del self._trail[bound:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    def _attach(self, clause: _Clause) -> None:
        lits = clause.lits
        watchers = self._watches[self._watch_index(lits[0])]
        watchers.append(lits[1])
        watchers.append(clause)
        watchers = self._watches[self._watch_index(lits[1])]
        watchers.append(lits[0])
        watchers.append(clause)

    def _detach(self, clause: _Clause) -> None:
        for literal in clause.lits[:2]:
            watchers = self._watches[self._watch_index(literal)]
            for index in range(1, len(watchers), 2):
                if watchers[index] is clause:
                    del watchers[index - 1 : index + 1]
                    break

    # -- propagation -----------------------------------------------------------

    def _propagate(self) -> Optional[_Clause]:
        """Unit propagation; returns the conflicting clause, if any.

        Watch lists are flat interleaved ``blocker, clause`` arrays: a true
        blocker satisfies the clause without touching it, and entries whose
        clause was logically deleted (``removed``) are purged in passing.
        """
        stats = self.stats
        while self._qhead < len(self._trail):
            literal = self._trail[self._qhead]
            self._qhead += 1
            stats.propagations += 1
            false_literal = -literal
            watchers = self._watches[self._watch_index(false_literal)]
            index = 0
            kept = 0
            size = len(watchers)
            while index < size:
                blocker = watchers[index]
                clause = watchers[index + 1]
                index += 2
                if self._value(blocker) == 1:
                    watchers[kept] = blocker
                    watchers[kept + 1] = clause
                    kept += 2
                    continue
                if clause.removed:
                    continue  # lazy purge of deleted clauses
                lits = clause.lits
                # Normalise: the false literal sits at position 1.
                if lits[0] == false_literal:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                if first != blocker and self._value(first) == 1:
                    watchers[kept] = first
                    watchers[kept + 1] = clause
                    kept += 2
                    continue
                for position in range(2, len(lits)):
                    if self._value(lits[position]) != -1:
                        lits[1], lits[position] = lits[position], lits[1]
                        moved = self._watches[self._watch_index(lits[1])]
                        moved.append(first)
                        moved.append(clause)
                        break
                else:
                    watchers[kept] = first
                    watchers[kept + 1] = clause
                    kept += 2
                    if self._value(first) == -1:
                        # Conflict: keep the unvisited suffix watched, too.
                        while index < size:
                            watchers[kept] = watchers[index]
                            watchers[kept + 1] = watchers[index + 1]
                            kept += 2
                            index += 2
                        del watchers[kept:]
                        self._qhead = len(self._trail)
                        return clause
                    self._enqueue(first, clause)
            del watchers[kept:]
        return None

    # -- activities ---------------------------------------------------------------

    def _var_bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > self._RESCALE_LIMIT:
            for index in range(1, self._num_vars + 1):
                self._activity[index] *= 1e-100
            self._var_inc *= 1e-100
        self._order.bump(var)

    def _var_decay_tick(self) -> None:
        self._var_inc /= self._var_decay

    def _cla_bump(self, clause: _Clause) -> None:
        clause.activity += self._cla_inc
        if clause.activity > 1e20:
            for learnt in self._learnts:
                learnt.activity *= 1e-20
            self._cla_inc *= 1e-20

    def _cla_decay_tick(self) -> None:
        self._cla_inc /= self._cla_decay

    # -- conflict analysis --------------------------------------------------------

    def _clause_lbd(self, lits: Sequence[int]) -> int:
        """The literal-block distance: distinct decision levels spanned."""
        level = self._level
        return len({level[abs(literal)] for literal in lits if level[abs(literal)] > 0})

    def _analyze(self, conflict: _Clause) -> Tuple[List[int], int, int]:
        """First-UIP learning; returns ``(learnt_clause, backjump_level, lbd)``.

        ``learnt_clause[0]`` is the asserting literal.  The clause is
        minimized by removing every literal whose reason clause is subsumed
        by the remaining literals (self-subsumption against the implication
        graph), and its LBD is measured before backjumping while the levels
        are still live.  Learnt clauses revisited on the resolution path get
        their stored LBD lowered when the re-measure comes out smaller.
        """
        seen = self._seen
        level = self._level
        trail = self._trail
        current_level = self._decision_level()
        learnt: List[int] = [0]  # placeholder for the asserting literal
        to_clear: List[int] = []
        path_count = 0
        literal = 0  # 0 = conflict clause itself (take every literal)
        index = len(trail)
        clause: Optional[_Clause] = conflict
        while True:
            assert clause is not None
            if clause.learnt:
                self._cla_bump(clause)
                fresh_lbd = self._clause_lbd(clause.lits)
                if 0 < fresh_lbd < clause.lbd:
                    clause.lbd = fresh_lbd
            start = 0 if literal == 0 else 1
            for position in range(start, len(clause.lits)):
                other = clause.lits[position]
                var = abs(other)
                if not seen[var] and level[var] > 0:
                    seen[var] = True
                    to_clear.append(var)
                    self._var_bump(var)
                    if level[var] >= current_level:
                        path_count += 1
                    else:
                        learnt.append(other)
            while True:
                index -= 1
                if seen[abs(trail[index])]:
                    break
            literal = trail[index]
            var = abs(literal)
            clause = self._reason[var]
            seen[var] = False
            path_count -= 1
            if path_count == 0:
                break
        learnt[0] = -literal
        # Self-subsumption minimization: a non-asserting literal is redundant
        # when its reason exists and every reason literal is already seen (or
        # fixed at level 0).
        kept = [learnt[0]]
        for other in learnt[1:]:
            reason = self._reason[abs(other)]
            if reason is None:
                kept.append(other)
                continue
            for reason_literal in reason.lits:
                var = abs(reason_literal)
                if reason_literal != -other and not seen[var] and level[var] > 0:
                    kept.append(other)
                    break
        learnt = kept
        for var in to_clear:
            seen[var] = False
        lbd = self._clause_lbd(learnt)
        if len(learnt) == 1:
            return learnt, 0, lbd
        # Backjump to the second-highest level; put that literal at watch 1.
        best = 1
        for position in range(2, len(learnt)):
            if level[abs(learnt[position])] > level[abs(learnt[best])]:
                best = position
        learnt[1], learnt[best] = learnt[best], learnt[1]
        return learnt, level[abs(learnt[1])], lbd

    def _analyze_final(self, failing: int) -> FrozenSet[int]:
        """The subset of the assumptions that forced ``¬failing`` (MiniSat's
        ``analyzeFinal``): walk the trail from the top, expanding reasons,
        and collect every assumption decision reached.  Together with
        ``failing`` itself the result is an unsatisfiable core over the
        assumption literals."""
        core = {failing}
        if self._decision_level() == 0:
            return frozenset(core)
        seen = self._seen
        level = self._level
        to_clear: List[int] = []
        var = abs(failing)
        if level[var] > 0:
            seen[var] = True
            to_clear.append(var)
        bottom = self._trail_lim[0]
        for index in range(len(self._trail) - 1, bottom - 1, -1):
            literal = self._trail[index]
            var = abs(literal)
            if not seen[var]:
                continue
            reason = self._reason[var]
            if reason is None:
                core.add(literal)  # an assumption decision
            else:
                for other in reason.lits:
                    other_var = abs(other)
                    if not seen[other_var] and level[other_var] > 0:
                        seen[other_var] = True
                        to_clear.append(other_var)
        for var in to_clear:
            seen[var] = False
        return frozenset(core)

    # -- learnt-database reduction ------------------------------------------------

    def _reduce_db(self) -> None:
        """Delete the worst half of the reducible learnt clauses.

        Binary clauses, clauses currently acting as a reason ("locked") and
        glue clauses (LBD ≤ 2) survive; the rest go in (high LBD, low
        activity) order — the glue-aware policy of Glucose-style solvers.
        """
        locked = {id(reason) for reason in self._reason if reason is not None}
        protected: List[_Clause] = []
        reducible: List[_Clause] = []
        for clause in self._learnts:
            if clause.removed:
                continue
            if len(clause.lits) <= 2 or clause.lbd <= 2 or id(clause) in locked:
                protected.append(clause)
            else:
                reducible.append(clause)
        reducible.sort(key=lambda clause: (-clause.lbd, clause.activity))
        removable = len(reducible) // 2
        for clause in reducible[:removable]:
            clause.removed = True
            if self._proof is not None:
                self._proof.delete(clause.lits)
        self._learnts = protected + reducible[removable:]
        self.stats.deleted_clauses += removable
        # Learnt-DB reductions are rare (one per _max_learnts overflow).
        _metrics.counter("sat.reduce_db.runs").inc()
        _metrics.counter("sat.reduce_db.deleted").inc(removable)

    # -- search --------------------------------------------------------------------

    def _pick_branch_literal(self) -> Optional[int]:
        order = self._order
        while True:
            var = order.pop()
            if var is None:
                return None
            if self._assign[var] == 0:
                return var if self._phase[var] else -var

    def _record_learnt(self, learnt: List[int], lbd: int, promote: bool = False) -> None:
        if self._proof is not None:
            self._proof.add(learnt)
        if len(learnt) == 1:
            self._enqueue(learnt[0], None)
            return
        clause = _Clause(learnt, learnt=not promote, lbd=lbd)
        if promote:
            self._clauses.append(clause)
        else:
            self._learnts.append(clause)
            self._cla_bump(clause)
        self._attach(clause)
        self.stats.learned_clauses += 1
        self._enqueue(learnt[0], clause)

    def _search(self, budget: int, assumptions: Sequence[int]) -> Optional[bool]:
        """Search until SAT/UNSAT or ``budget`` conflicts (``None`` = restart)."""
        conflicts_here = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_here += 1
                if not self.stats.conflicts & 255:
                    _checkpoint("sat.conflict", sat_conflicts=self.stats.conflicts)
                if self._decision_level() == 0:
                    self._ok = False
                    self._conflict_core = frozenset()
                    return False
                learnt, backjump_level, lbd = self._analyze(conflict)
                # On-the-fly subsumption: the minimized learnt clause may
                # subsume the very clause that conflicted.  The conflict
                # clause is falsified, hence never a reason, hence safe to
                # drop; when it was a problem clause the learnt clause is
                # promoted so the constraint cannot later be reduced away.
                promote = False
                subsumed_lits: Optional[List[int]] = None
                if (
                    not conflict.removed
                    and 1 < len(learnt) < len(conflict.lits)
                    and set(learnt) <= set(conflict.lits)
                ):
                    conflict.removed = True
                    subsumed_lits = list(conflict.lits)
                    promote = not conflict.learnt
                    self.stats.subsumed_clauses += 1
                self._cancel_until(backjump_level)
                self._record_learnt(learnt, lbd, promote=promote)
                if subsumed_lits is not None and self._proof is not None:
                    # Deleted only after the learnt clause that subsumes it
                    # was derived, so the checker never loses the clause a
                    # pending step depends on.
                    self._proof.delete(subsumed_lits)
                self._var_decay_tick()
                self._cla_decay_tick()
                continue
            if conflicts_here >= budget:
                self._cancel_until(0)
                self.stats.restarts += 1
                _checkpoint("sat.restart", sat_conflicts=self.stats.conflicts)
                return None
            if len(self._learnts) >= self._max_learnts + len(self._trail):
                self._reduce_db()
            literal: Optional[int] = None
            while self._decision_level() < len(assumptions):
                assumption = assumptions[self._decision_level()]
                value = self._value(assumption)
                if value == 1:
                    self._trail_lim.append(len(self._trail))  # dummy level
                elif value == -1:
                    self._conflict_core = self._analyze_final(assumption)
                    return False  # UNSAT under the assumptions
                else:
                    literal = assumption
                    break
            if literal is None:
                literal = self._pick_branch_literal()
                if literal is None:
                    self._model = {
                        var: self._assign[var] > 0 for var in range(1, self._num_vars + 1)
                    }
                    return True
                self.stats.decisions += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(literal, None)

    def solve(self, assumptions: Sequence[int] = ()) -> bool:
        """Decide satisfiability of the database under ``assumptions``.

        Returns ``True`` and stores a model (see :meth:`model_value`) when
        satisfiable; ``False`` when the clauses are unsatisfiable under the
        assumptions (or outright) — in which case :meth:`unsat_core` exposes
        the assumption subset the refutation used.  The solver state
        persists across calls.
        """
        stats = self.stats
        with _span("sat.solve") as sp:
            conflicts_before = stats.conflicts
            propagations_before = stats.propagations
            result = self._solve(assumptions)
            sp.set(
                result=result,
                assumptions=len(assumptions),
                conflicts=stats.conflicts - conflicts_before,
                propagations=stats.propagations - propagations_before,
            )
        if _sanitize.MODE:
            _sanitize.maybe_check_solver(self)
        if result is False and self._proof is not None:
            self._proof.unsat([int(literal) for literal in assumptions])
        return result

    def _solve(self, assumptions: Sequence[int]) -> bool:
        assumptions = [int(literal) for literal in assumptions]
        for literal in assumptions:
            if literal == 0:
                raise SatError("0 is not a literal")
            self._ensure_var(abs(literal))
        self.stats.solve_calls += 1
        self._model = {}  # a stale model must not survive an UNSAT answer
        self._conflict_core = None
        self._cancel_until(0)
        if not self._ok:
            self._conflict_core = frozenset()
            return False
        if self.stats.conflicts >= self._next_inprocess:
            self.inprocess()
            self._next_inprocess = self.stats.conflicts + self._INPROCESS_INTERVAL
            if not self._ok:
                self._conflict_core = frozenset()
                return False
        if self._propagate() is not None:
            self._ok = False
            self._conflict_core = frozenset()
            return False
        restarts = 0
        while True:
            budget = luby(restarts, self._RESTART_BASE)
            status = self._search(budget, assumptions)
            if status is not None:
                self._cancel_until(0)
                return status
            restarts += 1
            self._max_learnts *= 1.05

    def unsat_core(self) -> FrozenSet[int]:
        """The assumption literals the last UNSAT answer actually used.

        Only valid straight after a :meth:`solve` call that returned
        ``False``; the result is a subset ``core`` of the assumptions such
        that the clause database conjoined with ``core`` is unsatisfiable
        (empty when the database is unsatisfiable on its own).  This is what
        the IC3 engine's cube generalization seeds from.
        """
        if self._conflict_core is None:
            raise SatError("no unsat core available; the last solve() did not return UNSAT")
        return self._conflict_core

    # -- inprocessing ----------------------------------------------------------------

    def inprocess(self) -> bool:
        """Simplify the clause database at decision level zero.

        Three passes, each sound with respect to the incremental contract
        (no new variables, the database only gets logically stronger or
        equivalent): top-level simplification against the fixed assignment,
        signature-filtered backward subsumption with self-subsumption
        strengthening, and bounded vivification.  Runs automatically every
        few thousand conflicts; returns ``False`` when simplification
        discovered the database to be unsatisfiable.
        """
        with _span("sat.inprocess") as sp:
            subsumed_before = self.stats.subsumed_clauses
            strengthened_before = self.stats.strengthened_clauses
            self._cancel_until(0)
            if not self._ok:
                return False
            if self._propagate() is not None:
                self._ok = False
                return False
            if self._proof is not None:
                # Pin every level-0 fact as a derived unit before any
                # satisfied clause is deleted: deletion would otherwise
                # strip the checker of the propagation support later
                # strengthening steps rely on.  Each unit is RUP (it is
                # exactly what unit propagation derives).
                for literal in self._trail:
                    self._proof.add((literal,))
            # Level-0 reasons are never dereferenced (analysis guards on
            # level > 0), but null them so removed clauses cannot linger as
            # locked.
            for index in range(len(self._trail)):
                self._reason[abs(self._trail[index])] = None
            self._simplify_top_level()
            if self._ok:
                self._backward_subsume()
            if self._ok:
                self._vivify()
            # Units propagated by _readd during the passes acquired reasons
            # whose clauses may since have been removed; null them too.
            for index in range(len(self._trail)):
                self._reason[abs(self._trail[index])] = None
            self._clauses = [clause for clause in self._clauses if not clause.removed]
            self._learnts = [clause for clause in self._learnts if not clause.removed]
            self.stats.inprocessings += 1
            _metrics.counter("sat.inprocess.runs").inc()
            sp.set(
                subsumed=self.stats.subsumed_clauses - subsumed_before,
                strengthened=self.stats.strengthened_clauses - strengthened_before,
            )
            if _sanitize.MODE:
                _sanitize.maybe_check_solver(self)
            return self._ok

    def publish_metrics(self, **labels) -> None:
        """Snapshot the cumulative :class:`SolverStats` into the registry.

        Published as gauges (idempotent at every phase boundary); see
        ``docs/OBSERVABILITY.md`` for the counter-vs-gauge convention.
        """
        for field, value in self.stats.as_dict().items():
            _metrics.gauge("sat." + field, **labels).set(value)

    def _simplify_top_level(self) -> None:
        """Drop satisfied clauses and strip level-0-false literals in place.

        After full propagation an unsatisfied clause never has a false
        watched literal (the watch invariant), so stripping only touches
        positions ≥ 2 and the watches stay valid.
        """
        for store in (self._clauses, self._learnts):
            for clause in store:
                if clause.removed:
                    continue
                lits = clause.lits
                satisfied = False
                has_false = False
                for literal in lits:
                    value = self._value(literal)
                    if value == 1:
                        satisfied = True
                        break
                    if value == -1:
                        has_false = True
                if satisfied:
                    clause.removed = True
                    if self._proof is not None:
                        self._proof.delete(lits)
                    continue
                if has_false:
                    original = list(lits) if self._proof is not None else None
                    lits[2:] = [
                        literal for literal in lits[2:] if self._value(literal) != -1
                    ]
                    if original is not None and len(lits) < len(original):
                        self._proof.add(lits)
                        self._proof.delete(original)

    @staticmethod
    def _signature(lits: Sequence[int]) -> int:
        """A 64-bit Bloom signature over the clause's variables."""
        signature = 0
        for literal in lits:
            signature |= 1 << (abs(literal) & 63)
        return signature

    def _backward_subsume(self) -> None:
        """Backward subsumption + self-subsumption over the whole database.

        Each clause is checked against the occurrence list of its rarest
        variable; a candidate whose variable signature is not a superset is
        skipped without touching its literals.  ``C ⊆ D`` removes ``D``
        (promoting ``C`` when ``D`` was a problem clause); ``C`` matching
        ``D`` except for one negated literal strengthens ``D`` by removing
        that literal.
        """
        clauses = [
            clause
            for store in (self._clauses, self._learnts)
            for clause in store
            if not clause.removed
        ]
        occurrences: Dict[int, List[_Clause]] = {}
        signatures: Dict[int, int] = {}
        for clause in clauses:
            signatures[id(clause)] = self._signature(clause.lits)
            for literal in clause.lits:
                occurrences.setdefault(abs(literal), []).append(clause)
        clauses.sort(key=lambda clause: len(clause.lits))
        strengthened: List[Tuple[_Clause, List[int]]] = []
        for clause in clauses:
            if clause.removed:
                continue
            lits = clause.lits
            rarest = min(lits, key=lambda literal: len(occurrences.get(abs(literal), ())))
            own_signature = signatures[id(clause)]
            own_set = set(lits)
            for candidate in occurrences.get(abs(rarest), ()):
                if candidate is clause or candidate.removed:
                    continue
                if len(candidate.lits) < len(lits):
                    continue
                if own_signature & ~signatures[id(candidate)]:
                    continue
                negated = 0  # the one literal of C occurring negated in D, if any
                missing = False
                candidate_set = set(candidate.lits)
                for literal in own_set:
                    if literal in candidate_set:
                        continue
                    if -literal in candidate_set and negated == 0:
                        negated = -literal
                        continue
                    missing = True
                    break
                if missing:
                    continue
                if negated == 0:
                    candidate.removed = True
                    if self._proof is not None:
                        self._proof.delete(candidate.lits)
                    if clause.learnt and not candidate.learnt:
                        clause.learnt = False  # promoted: now carries a problem constraint
                        self._learnts = [c for c in self._learnts if c is not clause]
                        self._clauses.append(clause)
                    self.stats.subsumed_clauses += 1
                elif len(candidate.lits) > 1:
                    shrunk = [literal for literal in candidate.lits if literal != negated]
                    strengthened.append((candidate, shrunk))
                    candidate.removed = True
                    self.stats.strengthened_clauses += 1
        for original, shrunk in strengthened:
            # _readd logs the strengthened clause as a derivation first; the
            # original is deleted after, while the checker can still resolve
            # against it.
            ok = self._readd(shrunk, original.learnt, original.lbd)
            if self._proof is not None:
                self._proof.delete(original.lits)
            if not ok:
                return

    def _readd(self, lits: List[int], learnt: bool, lbd: int) -> bool:
        """Attach a rewritten clause (after strengthening or vivification)."""
        lits = [literal for literal in lits if self._value(literal) != -1]
        if any(self._value(literal) == 1 for literal in lits):
            return True
        if self._proof is not None:
            self._proof.add(lits)
        if not lits:
            self._ok = False
            return False
        if len(lits) == 1:
            trail_before = len(self._trail)
            self._enqueue(lits[0], None)
            if self._propagate() is not None:
                self._ok = False
                return False
            if self._proof is not None:
                # Pin the level-0 consequences right away: the ongoing
                # inprocessing pass may delete the (now satisfied) clauses
                # that propagated them before anything else records them.
                for literal in self._trail[trail_before + 1 :]:
                    self._proof.add((literal,))
            return True
        clause = _Clause(lits, learnt=learnt, lbd=min(lbd, len(lits)) if lbd else 0)
        (self._learnts if learnt else self._clauses).append(clause)
        self._attach(clause)
        return True

    def _vivify(self) -> None:
        """Bounded vivification: shorten clauses by unit-propagation probing.

        For a clause ``l₁ ∨ … ∨ lₖ`` (detached first, so it cannot feed its
        own probe), assert ``¬l₁, ¬l₂, …`` one decision level at a time.  A
        propagation conflict after ``i`` literals proves the prefix
        ``l₁ ∨ … ∨ lᵢ`` is itself implied; a probe literal found already
        true ends the clause there; one found already false is redundant
        and dropped.  The pass is bounded by clause count and length.
        """
        candidates = [
            clause
            for store in (self._clauses, self._learnts)
            for clause in store
            if not clause.removed and 3 <= len(clause.lits) <= self._VIVIFY_LENGTH_LIMIT
        ]
        for clause in candidates[: self._VIVIFY_CLAUSE_LIMIT]:
            if clause.removed:
                continue
            if any(self._value(literal) == 1 for literal in clause.lits):
                clause.removed = True
                if self._proof is not None:
                    self._proof.delete(clause.lits)
                continue
            lits = [literal for literal in clause.lits if self._value(literal) == 0]
            clause.removed = True  # detached: the probe must not use the clause itself
            shortened: List[int] = []
            conflicted = False
            for literal in lits:
                value = self._value(literal)
                if value == 1:
                    # The negated prefix already implies this literal.
                    shortened.append(literal)
                    conflicted = True
                    break
                if value == -1:
                    continue  # implied false under the prefix: redundant
                shortened.append(literal)
                self._trail_lim.append(len(self._trail))
                self._enqueue(-literal, None)
                if self._propagate() is not None:
                    conflicted = True
                    break
            self._cancel_until(0)
            if len(shortened) < len(clause.lits):
                self.stats.strengthened_clauses += 1
            # As in _backward_subsume: derive the shortened clause before
            # deleting the one it replaces.
            ok = self._readd(shortened, clause.learnt, clause.lbd)
            if self._proof is not None:
                self._proof.delete(clause.lits)
            if not ok:
                return

    # -- models ---------------------------------------------------------------------

    def model_value(self, literal: int) -> bool:
        """The last model's value of ``literal`` (only valid after a SAT answer)."""
        if not self._model:
            raise SatError("no model available; the last solve() did not return SAT")
        value = self._model.get(abs(literal))
        if value is None:
            raise SatError("variable %d was not part of the last model" % abs(literal))
        return (not value) if literal < 0 else value

    def model(self) -> Dict[int, bool]:
        """The last model as a ``{variable: truth value}`` dictionary."""
        if not self._model:
            raise SatError("no model available; the last solve() did not return SAT")
        return dict(self._model)

    # -- introspection ---------------------------------------------------------------

    @property
    def num_clauses(self) -> int:
        """The number of problem (non-learnt) clauses currently attached."""
        return sum(1 for clause in self._clauses if not clause.removed)

    @property
    def num_learnts(self) -> int:
        """The number of learnt clauses currently attached."""
        return sum(1 for clause in self._learnts if not clause.removed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<Solver: %d vars, %d clauses, %d learnts, %d conflicts>" % (
            self._num_vars,
            self.num_clauses,
            self.num_learnts,
            self.stats.conflicts,
        )
