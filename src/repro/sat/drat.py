"""DRAT proof logging and an independent forward RUP/DRAT checker.

Every UNSAT answer of the CDCL solver can be *certified*: with a
:class:`ProofLog` attached (``solver.start_proof()``), the solver
records every input clause (``i``), every derived clause (``a`` — each
one checkable by reverse unit propagation), every deletion (``d``), and
every UNSAT verdict (``u``, with the assumption literals it was made
under).  :func:`check_proof` then replays the log on a tiny,
self-contained unit propagator that shares no code with the solver: an
``a`` step is accepted only if unit-propagating its negation over the
clauses accumulated so far yields a conflict (RUP), falling back to the
resolution-candidate check on the first literal (RAT); a ``u`` step is
accepted only if the empty clause is RUP once the assumptions are added
as units.

This extends textbook DRAT in one practical direction: the solver is
*incremental* (clauses arrive between solves, UNSAT verdicts are
relative to assumptions), so the log interleaves inputs with
derivations and can contain several ``u`` verdicts — each independently
certified against the database at that point.  :meth:`ProofLog.to_drat_text`
serialises the derivation steps in the standard textual DRAT format for
interoperability.

Why the learnt clauses are always RUP: CDCL conflict analysis resolves
the conflicting clause only against *reason* clauses, never against
decisions — so the learnt clause follows from the database by input
resolution, which forward RUP checks one step at a time.  Strengthened
and vivified clauses are resolvents/propagation consequences and are
logged *before* the clause they replace is deleted, keeping every step
checkable in order.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.sat.cnf import SatError

__all__ = ["ProofError", "ProofLog", "check_proof"]


class ProofError(SatError):
    """A proof step failed certification (or the log is malformed)."""


class ProofLog:
    """An in-memory DRAT-style proof transcript.

    Steps are ``(kind, payload)`` pairs, in derivation order:

    ``("i", lits)``
        an input clause, exactly as handed to :meth:`Solver.add_clause`
        (not checked, only recorded);
    ``("a", lits)``
        a derived clause the checker must certify (RUP, RAT fallback);
    ``("d", lits)``
        deletion of one clause with these literals (multiset match);
    ``("u", assumptions)``
        an UNSAT verdict under these assumption literals — the empty
        clause must be RUP with the assumptions added as unit clauses.
    """

    __slots__ = ("steps",)

    def __init__(self) -> None:
        self.steps: List[Tuple[str, Tuple[int, ...]]] = []

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self) -> Iterator[Tuple[str, Tuple[int, ...]]]:
        return iter(self.steps)

    def clear(self) -> None:
        self.steps.clear()

    # -- recording (called by the solver) ----------------------------------

    def input(self, lits: Iterable[int]) -> None:
        self.steps.append(("i", tuple(lits)))

    def add(self, lits: Iterable[int]) -> None:
        self.steps.append(("a", tuple(lits)))

    def delete(self, lits: Iterable[int]) -> None:
        self.steps.append(("d", tuple(lits)))

    def unsat(self, assumptions: Iterable[int] = ()) -> None:
        self.steps.append(("u", tuple(assumptions)))

    # -- introspection -----------------------------------------------------

    def inputs(self) -> List[Tuple[int, ...]]:
        """Every input clause recorded so far, in order."""
        return [payload for kind, payload in self.steps if kind == "i"]

    def unsat_verdicts(self) -> List[Tuple[int, ...]]:
        """The assumption tuples of every recorded UNSAT verdict."""
        return [payload for kind, payload in self.steps if kind == "u"]

    def to_drat_text(self) -> str:
        """The derivation steps in standard textual DRAT.

        Input clauses are omitted (a DRAT file is checked against the
        original CNF); assumption-relative verdicts, which plain DRAT
        cannot express, become comment lines.
        """
        lines: List[str] = []
        for kind, payload in self.steps:
            body = " ".join(str(literal) for literal in payload)
            if kind == "a":
                lines.append((body + " 0").strip())
            elif kind == "d":
                lines.append(("d " + body + " 0").replace("  ", " "))
            elif kind == "u" and not payload:
                lines.append("0")
            elif kind == "u":
                lines.append("c unsat under assumptions: " + body)
        return "\n".join(lines) + ("\n" if lines else "")


class _ForwardChecker:
    """A minimal, solver-independent clause database with unit propagation."""

    def __init__(self) -> None:
        self.clauses: List[Optional[Tuple[int, ...]]] = []  # None = deleted
        self.occurrences: Dict[int, List[int]] = {}
        self.by_key: Dict[Tuple[int, ...], List[int]] = {}
        self.units: List[int] = []
        self.has_empty = False

    def add(self, lits: Sequence[int]) -> None:
        clause = tuple(lits)
        cid = len(self.clauses)
        self.clauses.append(clause)
        for literal in set(clause):
            self.occurrences.setdefault(literal, []).append(cid)
        self.by_key.setdefault(tuple(sorted(clause)), []).append(cid)
        if not clause:
            self.has_empty = True
        elif len(set(clause)) == 1:
            self.units.append(cid)

    def delete(self, lits: Sequence[int]) -> bool:
        key = tuple(sorted(lits))
        for cid in self.by_key.get(key, ()):
            if self.clauses[cid] is not None:
                self.clauses[cid] = None
                return True
        return False

    def rup(self, lits: Sequence[int], extra_units: Sequence[int] = ()) -> bool:
        """True iff asserting ``¬lits`` (plus ``extra_units``) propagates to a conflict."""
        if self.has_empty:
            return True
        assignment: Dict[int, bool] = {}
        queue: deque = deque()

        def assume(literal: int) -> bool:
            """Make ``literal`` true; False signals an immediate conflict."""
            var = abs(literal)
            want = literal > 0
            current = assignment.get(var)
            if current is None:
                assignment[var] = want
                queue.append(literal)
                return True
            return current == want

        for literal in lits:
            if not assume(-literal):
                return True
        for literal in extra_units:
            if not assume(literal):
                return True
        for cid in self.units:
            clause = self.clauses[cid]
            if clause is not None and not assume(clause[0]):
                return True
        while queue:
            literal = queue.popleft()
            for cid in self.occurrences.get(-literal, ()):
                clause = self.clauses[cid]
                if clause is None:
                    continue
                satisfied = False
                unassigned: set = set()
                for other in clause:
                    value = assignment.get(abs(other))
                    if value is None:
                        unassigned.add(other)
                    elif value == (other > 0):
                        satisfied = True
                        break
                if satisfied:
                    continue
                if not unassigned:
                    return True  # conflict
                if len(unassigned) == 1:
                    if not assume(unassigned.pop()):
                        return True
        return False

    def rat(self, lits: Sequence[int]) -> bool:
        """Resolution-asymmetric-tautology check on the first literal."""
        if not lits:
            return False
        pivot = lits[0]
        rest = [literal for literal in lits if literal != pivot]
        for cid, clause in enumerate(self.clauses):
            if clause is None or -pivot not in clause:
                continue
            resolvent = rest + [literal for literal in clause if literal != -pivot]
            if any(-literal in resolvent for literal in resolvent):
                continue  # tautological resolvent
            if not self.rup(resolvent):
                return False
        return True


def check_proof(log: ProofLog) -> Dict[str, int]:
    """Forward-check an entire proof transcript; raise :class:`ProofError`.

    Replays the log in order on a fresh :class:`_ForwardChecker`.  Returns
    counters (``inputs``, ``added``, ``deleted``, ``unsat_checks``) on
    success; raises on the first step that fails certification, naming
    the step index and payload.
    """
    checker = _ForwardChecker()
    counts = {"inputs": 0, "added": 0, "deleted": 0, "unsat_checks": 0}
    for index, (kind, payload) in enumerate(log.steps):
        if kind == "i":
            checker.add(payload)
            counts["inputs"] += 1
        elif kind == "a":
            if not checker.rup(payload) and not checker.rat(payload):
                raise ProofError(
                    "proof step %d: derived clause %r is neither RUP nor RAT"
                    % (index, list(payload))
                )
            checker.add(payload)
            counts["added"] += 1
        elif kind == "d":
            if not checker.delete(payload):
                raise ProofError(
                    "proof step %d: deletion of %r matches no active clause"
                    % (index, list(payload))
                )
            counts["deleted"] += 1
        elif kind == "u":
            if not checker.rup((), extra_units=payload):
                raise ProofError(
                    "proof step %d: UNSAT verdict under assumptions %r is not "
                    "certified (no propagation conflict)" % (index, list(payload))
                )
            counts["unsat_checks"] += 1
        else:
            raise ProofError("proof step %d: unknown kind %r" % (index, kind))
    return counts
