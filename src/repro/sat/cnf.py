"""CNF formulas: variable pools, Tseitin encoding, BDD-to-CNF, DIMACS I/O.

Literals follow the DIMACS convention used by every SAT tool: variables are
positive integers ``1, 2, 3, …`` and a negative integer denotes the negation
of its variable, so ``-5`` is ``¬x5``.  A *clause* is a sequence of literals
read as their disjunction, and a CNF formula is the conjunction of its
clauses.

:class:`CNF` is both a variable pool and a clause database.  It is the
*builder* side of the SAT subsystem: circuits are lowered onto it through the
Tseitin ``gate_*`` methods (each gate allocates one definition variable and
emits the clauses making it equivalent to the gate's function), and
:func:`tseitin_bdd` lowers a whole :mod:`repro.bdd` decision diagram — one
definition variable per BDD node, four clauses per node, complement edges
becoming negated literals for free.  Anything accepting ``new_var`` /
``add_clause`` (notably :class:`repro.sat.solver.Solver`) can serve as the
sink of the ``gate_*`` helpers through :class:`ClauseSink` duck typing, which
is how the bounded model checker streams its unrolling straight into an
incremental solver.

:func:`to_dimacs` / :func:`parse_dimacs` round-trip the standard exchange
format, and :func:`naive_satisfiable` / :func:`enumerate_models` provide the
brute-force reference semantics the test-suite and the CI fuzz smoke check
the CDCL solver against.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ReproError

__all__ = [
    "SatError",
    "ClauseSink",
    "CNF",
    "tseitin_bdd",
    "to_dimacs",
    "parse_dimacs",
    "evaluate_clauses",
    "enumerate_models",
    "naive_satisfiable",
]


class SatError(ReproError):
    """A CNF/SAT operation was used incorrectly (bad literal, malformed DIMACS, …)."""


class ClauseSink:
    """Mixin giving any ``new_var``/``add_clause`` provider the Tseitin gates.

    Both :class:`CNF` (the stored formula) and
    :class:`repro.sat.solver.Solver` (the incremental solver) inherit it, so
    circuit encodings can be written once and streamed into either.
    """

    _true_literal: Optional[int] = None

    def new_var(self) -> int:  # pragma: no cover - always overridden
        raise NotImplementedError

    def add_clause(self, literals: Iterable[int]):  # pragma: no cover - overridden
        raise NotImplementedError

    def true_literal(self) -> int:
        """A literal constrained to be true (allocated and asserted once per sink).

        Tseitin encodings of functions with constant sub-circuits need a
        constant; its negation is the false literal.
        """
        if self._true_literal is None:
            self._true_literal = self.new_var()
            self.add_clause((self._true_literal,))
        return self._true_literal

    # -- Tseitin gates -------------------------------------------------------
    #
    # Every gate allocates one definition variable `o` and emits the clauses
    # of `o ↔ gate(inputs)`, returning `o` as a literal.  Both directions are
    # always encoded so gate outputs can be used under either polarity.

    def gate_and(self, literals: Sequence[int]) -> int:
        """``o ↔ ∧ literals`` (the empty conjunction is the true literal)."""
        if not literals:
            return self.true_literal()
        if len(literals) == 1:
            return literals[0]
        output = self.new_var()
        for literal in literals:
            self.add_clause((-output, literal))
        self.add_clause((output,) + tuple(-literal for literal in literals))
        return output

    def gate_or(self, literals: Sequence[int]) -> int:
        """``o ↔ ∨ literals`` (the empty disjunction is the false literal)."""
        if not literals:
            return -self.true_literal()
        if len(literals) == 1:
            return literals[0]
        return -self.gate_and([-literal for literal in literals])

    def gate_xor(self, left: int, right: int) -> int:
        """``o ↔ left ⊕ right``."""
        output = self.new_var()
        self.add_clause((-output, left, right))
        self.add_clause((-output, -left, -right))
        self.add_clause((output, -left, right))
        self.add_clause((output, left, -right))
        return output

    def gate_iff(self, left: int, right: int) -> int:
        """``o ↔ (left ↔ right)``."""
        return -self.gate_xor(left, right)

    def gate_ite(self, condition: int, then: int, orelse: int) -> int:
        """``o ↔ (condition ? then : orelse)`` — the BDD node gate."""
        output = self.new_var()
        self.add_clause((-output, -condition, then))
        self.add_clause((-output, condition, orelse))
        self.add_clause((output, -condition, -then))
        self.add_clause((output, condition, -orelse))
        return output


class CNF(ClauseSink):
    """A growable CNF formula: a variable pool plus a clause database.

    The canonical :class:`ClauseSink`: every ``gate_*`` helper targets
    ``self``, and :meth:`copy_into` replays the stored clauses into any other
    sink (e.g. a fresh solver).
    """

    def __init__(self, num_vars: int = 0) -> None:
        if num_vars < 0:
            raise SatError("a CNF cannot have a negative number of variables")
        self.num_vars = num_vars
        self.clauses: List[Tuple[int, ...]] = []
        self._true_literal = None

    # -- variable pool -------------------------------------------------------

    def new_var(self) -> int:
        """Allocate a fresh variable and return it (a positive integer)."""
        self.num_vars += 1
        return self.num_vars

    def new_vars(self, count: int) -> List[int]:
        """Allocate ``count`` fresh variables."""
        return [self.new_var() for _ in range(count)]

    def add_clause(self, literals: Iterable[int]) -> None:
        """Append one clause (the disjunction of ``literals``)."""
        clause = tuple(literals)
        for literal in clause:
            if literal == 0:
                raise SatError("0 is not a literal (it terminates DIMACS clauses)")
            if abs(literal) > self.num_vars:
                self.num_vars = abs(literal)
        self.clauses.append(clause)

    # -- interop -------------------------------------------------------------

    def copy_into(self, sink: "CNF") -> None:
        """Replay this formula into another clause sink (variables must align)."""
        for clause in self.clauses:
            sink.add_clause(clause)

    def __len__(self) -> int:
        return len(self.clauses)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<CNF: %d vars, %d clauses>" % (self.num_vars, len(self.clauses))


# ---------------------------------------------------------------------------
# BDD -> CNF
# ---------------------------------------------------------------------------


def tseitin_bdd(
    manager,
    edge: int,
    var_literals: Mapping[int, int],
    sink,
    cache: Optional[Dict[int, int]] = None,
) -> int:
    """Tseitin-encode the function of a BDD ``edge`` into ``sink``, returning a literal.

    ``var_literals`` maps every BDD *variable id* in the edge's support to the
    CNF literal carrying it (this is how the bounded model checker points the
    same transition-relation BDD at different time frames).  One definition
    variable and four clauses are emitted per BDD node; complement edges cost
    nothing — they negate the returned literal.  ``cache`` (node → definition
    literal) may be shared across calls that use the *same* ``var_literals``
    mapping, so the shared sub-DAGs of a clustered transition relation are
    encoded once per time frame.
    """
    if cache is None:
        cache = {}

    def literal_of(e: int) -> int:
        # Resolve an edge whose node is already encoded (or terminal).
        if e == 0:
            return -sink.true_literal()
        if e == 1:
            return sink.true_literal()
        base = cache[e >> 1]
        return -base if e & 1 else base

    # Explicit-stack post-order walk — BDDs over many variables must not hit
    # Python's recursion limit (the manager's own operations are iterative
    # for the same reason).
    stack = [edge]
    while stack:
        current = stack[-1]
        node = current >> 1
        if node == 0 or node in cache:
            stack.pop()
            continue
        regular = node << 1
        high = manager.high_of(regular)
        low = manager.low_of(regular)
        pending = [
            child for child in (high, low) if child >> 1 and (child >> 1) not in cache
        ]
        if pending:
            stack.extend(pending)
            continue
        stack.pop()
        var = manager.var_of(regular)
        try:
            condition = var_literals[var]
        except KeyError:
            raise SatError(
                "BDD variable %d has no CNF literal in the frame mapping" % var
            ) from None
        cache[node] = sink.gate_ite(condition, literal_of(high), literal_of(low))
    return literal_of(edge)


# ---------------------------------------------------------------------------
# DIMACS
# ---------------------------------------------------------------------------


def to_dimacs(cnf: CNF, comments: Sequence[str] = ()) -> str:
    """Serialise ``cnf`` in the standard DIMACS CNF exchange format."""
    lines = ["c %s" % comment for comment in comments]
    lines.append("p cnf %d %d" % (cnf.num_vars, len(cnf.clauses)))
    for clause in cnf.clauses:
        lines.append(" ".join(str(literal) for literal in clause) + " 0")
    return "\n".join(lines) + "\n"


def parse_dimacs(text: str) -> CNF:
    """Parse a DIMACS CNF document into a :class:`CNF`.

    Comment lines (``c …``) are skipped; the ``p cnf V C`` header fixes the
    variable count (clauses may not mention variables beyond it); clauses are
    whitespace-separated literal runs terminated by ``0`` and may span lines.
    """
    num_vars: Optional[int] = None
    num_clauses: Optional[int] = None
    clauses: List[Tuple[int, ...]] = []
    pending: List[int] = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            if num_vars is not None:
                raise SatError("line %d: duplicate DIMACS header" % line_number)
            fields = line.split()
            if len(fields) != 4 or fields[1] != "cnf":
                raise SatError("line %d: malformed DIMACS header %r" % (line_number, line))
            try:
                num_vars, num_clauses = int(fields[2]), int(fields[3])
            except ValueError:
                raise SatError(
                    "line %d: non-numeric DIMACS header %r" % (line_number, line)
                ) from None
            continue
        if num_vars is None:
            raise SatError("line %d: clause before the DIMACS header" % line_number)
        for token in line.split():
            try:
                literal = int(token)
            except ValueError:
                raise SatError(
                    "line %d: %r is not a DIMACS literal" % (line_number, token)
                ) from None
            if literal == 0:
                clauses.append(tuple(pending))
                pending = []
            else:
                if abs(literal) > num_vars:
                    raise SatError(
                        "line %d: literal %d exceeds the declared %d variables"
                        % (line_number, literal, num_vars)
                    )
                pending.append(literal)
    if num_vars is None:
        raise SatError("no DIMACS header found")
    if pending:
        raise SatError("last clause is not terminated by 0")
    if num_clauses is not None and num_clauses != len(clauses):
        raise SatError(
            "header declares %d clauses but %d were read" % (num_clauses, len(clauses))
        )
    cnf = CNF(num_vars)
    for clause in clauses:
        cnf.add_clause(clause)
    return cnf


# ---------------------------------------------------------------------------
# Reference semantics (brute force)
# ---------------------------------------------------------------------------


def evaluate_clauses(clauses: Iterable[Sequence[int]], assignment: Mapping[int, bool]) -> bool:
    """Decide whether ``assignment`` (variable → truth value) satisfies every clause."""
    for clause in clauses:
        for literal in clause:
            value = assignment.get(abs(literal))
            if value is None:
                continue
            if value == (literal > 0):
                break
        else:
            return False
    return True


def enumerate_models(cnf: CNF, limit: Optional[int] = None) -> Iterator[Dict[int, bool]]:
    """Yield every satisfying total assignment of ``cnf`` by exhaustive enumeration.

    Exponential in the variable count — this is the *reference semantics* the
    solver is differentially tested against, not a solver.
    """
    count = 0
    for pattern in range(1 << cnf.num_vars):
        assignment = {
            var: bool(pattern >> (var - 1) & 1) for var in range(1, cnf.num_vars + 1)
        }
        if evaluate_clauses(cnf.clauses, assignment):
            yield assignment
            count += 1
            if limit is not None and count >= limit:
                return


def naive_satisfiable(cnf: CNF) -> bool:
    """Brute-force satisfiability (the oracle for the fuzz smoke and the unit tests)."""
    for _ in enumerate_models(cnf, limit=1):
        return True
    return False
