"""Random-CNF fuzz smoke for the CDCL solver (``python -m repro.sat.fuzz``).

Generates random 3-CNF instances around the satisfiability phase transition,
solves each with :class:`repro.sat.solver.Solver`, and checks the verdict:

* a SAT answer must come with a model that satisfies every clause;
* an UNSAT answer is re-checked against the brute-force enumerator of
  :mod:`repro.sat.cnf` (which is why the variable count is kept small);
* each instance is additionally round-tripped through DIMACS before solving,
  so the serialiser and parser are fuzzed along the way;
* a second solver for the same instance runs :meth:`Solver.inprocess`
  (subsumption, strengthening, vivification) before solving and must reach
  the same verdict — the differential check for the inprocessing passes;
* each instance is re-queried under random assumptions; an UNSAT answer
  there must come with an :meth:`Solver.unsat_core` that is a subset of the
  assumptions and is itself sufficient (the formula conjoined with just the
  core stays unsatisfiable under the enumerator);
* every solver runs with a :mod:`repro.sat.drat` proof log attached, and the
  full transcript — covering *every* UNSAT verdict the round produced — must
  pass the independent forward RUP/DRAT checker.

With ``--sanitize`` the :mod:`repro.sat.sanitize` and
:mod:`repro.bdd.sanitize` runtime auditors are switched on for the whole
batch, so every solver stability point is structurally audited as the fuzz
runs.

The exit status is non-zero on any mismatch, which lets CI run the module
directly as a smoke step.  Deterministic under ``--seed``.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional

from repro.sat.cnf import (
    CNF,
    evaluate_clauses,
    naive_satisfiable,
    parse_dimacs,
    to_dimacs,
)
from repro.sat.drat import ProofError, check_proof
from repro.sat.solver import Solver

__all__ = ["random_3cnf", "run_fuzz", "main"]


def random_3cnf(rng: random.Random, num_vars: int, num_clauses: int) -> CNF:
    """A uniform random 3-CNF with ``num_vars`` variables and ``num_clauses`` clauses."""
    cnf = CNF(num_vars)
    for _ in range(num_clauses):
        variables = rng.sample(range(1, num_vars + 1), k=min(3, num_vars))
        cnf.add_clause(
            [var if rng.random() < 0.5 else -var for var in variables]
        )
    return cnf


def run_fuzz(
    count: int = 50,
    max_vars: int = 12,
    seed: int = 0,
    out=None,
) -> int:
    """Run ``count`` random instances; returns the number of failures."""
    if out is None:
        out = sys.stdout  # bound at call time so capture/redirection works
    rng = random.Random(seed)
    failures = 0
    sat_count = 0
    certified_verdicts = 0
    for round_number in range(count):
        num_vars = rng.randint(3, max_vars)
        # Clause/variable ratios straddling the ~4.26 phase transition keep
        # the mix of SAT and UNSAT instances roughly balanced.
        ratio = rng.uniform(2.0, 6.0)
        num_clauses = max(1, int(round(ratio * num_vars)))
        cnf = parse_dimacs(to_dimacs(random_3cnf(rng, num_vars, num_clauses)))

        def fresh() -> Solver:
            solver = Solver()
            solver.start_proof()
            for _ in range(cnf.num_vars):
                solver.new_var()
            for clause in cnf.clauses:
                solver.add_clause(clause)
            return solver

        solver = fresh()
        verdict = solver.solve()
        if verdict:
            sat_count += 1
            model = solver.model()
            if not evaluate_clauses(cnf.clauses, model):
                failures += 1
                print(
                    "FAIL round %d: SAT model does not satisfy the formula" % round_number,
                    file=out,
                )
        elif naive_satisfiable(cnf):
            failures += 1
            print(
                "FAIL round %d: solver says UNSAT but the enumerator found a model"
                % round_number,
                file=out,
            )

        # Differential inprocessing: simplify first, the verdict must agree.
        simplified = fresh()
        simplified.inprocess()
        if simplified.solve() != verdict:
            failures += 1
            print(
                "FAIL round %d: inprocessing changed the verdict" % round_number,
                file=out,
            )

        # Assumption/core check on the already-solved incremental solver.
        assumptions = [
            var if rng.random() < 0.5 else -var
            for var in rng.sample(range(1, cnf.num_vars + 1), k=min(3, cnf.num_vars))
        ]
        if solver.solve(assumptions):
            model = solver.model()
            if not evaluate_clauses(cnf.clauses, model) or not all(
                model[abs(lit)] == (lit > 0) for lit in assumptions
            ):
                failures += 1
                print(
                    "FAIL round %d: assumption model is invalid" % round_number,
                    file=out,
                )
        else:
            core = solver.unsat_core()
            hardened = CNF(cnf.num_vars)
            for clause in cnf.clauses:
                hardened.add_clause(clause)
            for literal in core:
                hardened.add_clause([literal])
            if not core <= set(assumptions):
                failures += 1
                print(
                    "FAIL round %d: unsat core is not a subset of the assumptions"
                    % round_number,
                    file=out,
                )
            elif naive_satisfiable(hardened):
                failures += 1
                print(
                    "FAIL round %d: unsat core is not sufficient for UNSAT"
                    % round_number,
                    file=out,
                )

        # Certify every proof transcript: each UNSAT verdict above (plain,
        # inprocessed, or under assumptions) must survive the independent
        # RUP/DRAT checker.
        for name, proved in (("main", solver), ("inprocessed", simplified)):
            try:
                certified_verdicts += check_proof(proved.proof)["unsat_checks"]
            except ProofError as error:
                failures += 1
                print(
                    "FAIL round %d: %s solver proof rejected: %s"
                    % (round_number, name, error),
                    file=out,
                )
    print(
        "fuzz: %d instances (%d SAT / %d UNSAT), %d certified UNSAT verdicts, "
        "%d failures" % (count, sat_count, count - sat_count, certified_verdicts, failures),
        file=out,
    )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``python -m repro.sat.fuzz``."""
    parser = argparse.ArgumentParser(
        prog="repro.sat.fuzz",
        description="Differentially fuzz the CDCL solver on random 3-CNFs.",
    )
    parser.add_argument("--count", type=int, default=50, help="instances to run (default: 50)")
    parser.add_argument(
        "--max-vars",
        type=int,
        default=12,
        help="maximum variables per instance (kept small: UNSAT is re-checked "
        "by exhaustive enumeration; default: 12)",
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed (default: 0)")
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="run the batch with the SAT and BDD runtime sanitizers enabled",
    )
    args = parser.parse_args(argv)
    if args.count < 1 or args.max_vars < 3:
        print("error: --count must be >= 1 and --max-vars >= 3", file=sys.stderr)
        return 2
    if args.sanitize:
        import repro.bdd.sanitize as bdd_sanitize
        import repro.sat.sanitize as sat_sanitize

        sat_sanitize.enable(True)
        bdd_sanitize.enable(True)
    return 1 if run_fuzz(args.count, args.max_vars, args.seed) else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI smoke
    sys.exit(main())
