"""The project-specific lint rules behind ``repro-lint``.

Each rule is a small AST (or, for prose, text) analysis encoding one
invariant this codebase has historically broken by hand:

========  ==============================================================
``R001``  Hand-enumerated engine-name lists must match the registry
          (``ENGINE_NAMES`` / ``CTL_ENGINES`` / the SAT complement).
``R002``  No wall-clock reads (``time.time``, ``perf_counter*``, …)
          outside ``obs/`` and ``analysis/timing.py``.
``R003``  No mutable default arguments.
``R004``  Literal span/metric names must belong to the vocabulary
          documented in ``docs/OBSERVABILITY.md``.
``R005``  No bare/blanket ``except`` that swallows the exception.
``R006``  ``__all__`` must only export names the module actually binds.
========  ==============================================================

Rules receive a :class:`LintContext` and yield :class:`Finding` tuples;
suppression (``# repro-lint: disable=R00x`` pragmas) is handled by the
driver in :mod:`repro.devtools.lint.engine`, not here.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Finding",
    "LintContext",
    "Rule",
    "RULES",
    "RULES_BY_ID",
    "load_obs_vocabulary",
]


@dataclass(frozen=True)
class Finding:
    """One lint finding: a rule violation anchored to a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return "%s:%d:%d: %s %s" % (self.path, self.line, self.col, self.rule, self.message)

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


def _default_engine_names() -> Tuple[str, ...]:
    from repro.mc.bitset import ENGINE_NAMES

    return tuple(ENGINE_NAMES)


def _default_ctl_engines() -> Tuple[str, ...]:
    from repro.mc.bitset import CTL_ENGINES

    return tuple(CTL_ENGINES)


@dataclass
class LintContext:
    """Everything a rule may consult besides the module under analysis."""

    path: str = "<string>"
    engine_names: Tuple[str, ...] = field(default_factory=_default_engine_names)
    ctl_engines: Tuple[str, ...] = field(default_factory=_default_ctl_engines)
    #: Dotted span/metric names documented in docs/OBSERVABILITY.md, or
    #: ``None`` when the document could not be located (R004 then skips).
    obs_vocabulary: Optional[FrozenSet[str]] = None

    @property
    def allowed_engine_sets(self) -> Tuple[FrozenSet[str], ...]:
        full = frozenset(self.engine_names)
        ctl = frozenset(self.ctl_engines)
        return (full, ctl, full - ctl)


_CODE_SPAN = re.compile(r"`([^`\n]+)`")
_DOTTED_NAME = re.compile(r"\b[a-z][a-z0-9_]*(?:\.[a-z0-9_]+)+\b")


def load_obs_vocabulary(text: str) -> FrozenSet[str]:
    """Extract the dotted span/metric vocabulary from OBSERVABILITY.md.

    Every inline-code span is scanned for dotted lowercase names;
    label annotations (``mc.checks{engine=…}``) are stripped first.
    """
    vocabulary = set()
    for code in _CODE_SPAN.findall(text):
        code = code.split("{")[0]
        for token in _DOTTED_NAME.findall(code):
            vocabulary.add(token)
    return frozenset(vocabulary)


class Rule:
    """Base class: one rule id, one invariant, one ``check`` pass."""

    id = "R000"
    title = "abstract rule"
    rationale = ""
    #: Rules with ``text_mode`` also run over prose files (``.md``).
    text_mode = False

    def check_module(
        self, tree: ast.Module, source: str, ctx: LintContext
    ) -> Iterator[Finding]:
        return iter(())

    def check_text(self, text: str, ctx: LintContext) -> Iterator[Finding]:
        return iter(())

    def _finding(self, ctx: LintContext, line: int, col: int, message: str) -> Finding:
        return Finding(path=ctx.path, line=line, col=col, rule=self.id, message=message)


# ---------------------------------------------------------------------------
# R001 — engine-name enumerations must match the registry
# ---------------------------------------------------------------------------


class EngineEnumerationRule(Rule):
    id = "R001"
    title = "engine enumerations must match ENGINE_NAMES"
    rationale = (
        "Hand-maintained engine lists in docstrings/CLI help/docs went stale "
        "in PRs 5-6 every time an engine was added; any run of three or more "
        "engine names must coincide with ENGINE_NAMES, CTL_ENGINES, or the "
        "SAT complement, or carry an explicit pragma."
    )
    text_mode = True

    #: Minimum run length that claims to be an enumeration.  Pairs are
    #: ubiquitous and harmless ("naive/bitset oracles"); triples read as
    #: exhaustive lists and go stale.
    _MIN_RUN = 3

    def _gap_pattern(self) -> re.Pattern:
        # Between two names of one enumeration we allow punctuation,
        # quoting/markup, and the glue words "or"/"and" — nothing else.
        # Sentence-level separators (. ; :) terminate a run.
        return re.compile(r"^(?:[\s,/|&(){}\[\]`'\"*_-]|\bor\b|\band\b)*$", re.IGNORECASE)

    def _runs(self, text: str, ctx: LintContext) -> Iterator[Tuple[int, List[str]]]:
        """Yield ``(offset, [names...])`` for each maximal enumeration run."""
        name_re = re.compile(
            r"\b(%s)\b" % "|".join(re.escape(n) for n in ctx.engine_names),
            re.IGNORECASE,
        )
        gap_ok = self._gap_pattern()
        matches = list(name_re.finditer(text))
        i = 0
        while i < len(matches):
            start = i
            while (
                i + 1 < len(matches)
                and gap_ok.match(text[matches[i].end() : matches[i + 1].start()])
            ):
                i += 1
            run = [m.group(0).lower() for m in matches[start : i + 1]]
            yield matches[start].start(), run
            i += 1

    def _check_blob(
        self, text: str, base_line: int, base_from_offset, ctx: LintContext
    ) -> Iterator[Finding]:
        for offset, run in self._runs(text, ctx):
            if len(run) < self._MIN_RUN:
                continue
            names = frozenset(run)
            if names in ctx.allowed_engine_sets:
                continue
            line = base_from_offset(offset)
            missing = sorted(frozenset(ctx.engine_names) - names)
            yield self._finding(
                ctx,
                line,
                0,
                "engine enumeration {%s} matches neither ENGINE_NAMES nor a "
                "registry subset (CTL/SAT); missing %s — derive the list from "
                "the registry or add a pragma for a deliberate subset"
                % (", ".join(sorted(names)), ", ".join(missing) or "none"),
            )

    def check_module(self, tree, source, ctx):
        for node in ast.walk(tree):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                value = node.value
                lineno = node.lineno

                def from_offset(offset, _value=value, _lineno=lineno):
                    return _lineno + _value[:offset].count("\n")

                for finding in self._check_blob(value, lineno, from_offset, ctx):
                    yield finding

    def check_text(self, text, ctx):
        def from_offset(offset):
            return 1 + text[:offset].count("\n")

        for finding in self._check_blob(text, 1, from_offset, ctx):
            yield finding


# ---------------------------------------------------------------------------
# R002 — wall-clock reads only in obs/ and analysis/timing.py
# ---------------------------------------------------------------------------


class WallClockRule(Rule):
    id = "R002"
    title = "no wall-clock reads outside obs/ and analysis/timing.py"
    rationale = (
        "Engines must stay deterministic and measurable: all timing goes "
        "through repro.obs spans or analysis.timing, so a stray "
        "time.perf_counter() in an engine is either dead code or an "
        "unreported measurement."
    )

    _CLOCK_ATTRS = frozenset(
        {
            "time",
            "time_ns",
            "perf_counter",
            "perf_counter_ns",
            "monotonic",
            "monotonic_ns",
            "process_time",
            "process_time_ns",
        }
    )

    _EXEMPT_PARTS = ("/obs/",)
    _EXEMPT_SUFFIXES = ("analysis/timing.py",)

    def _exempt(self, ctx: LintContext) -> bool:
        path = ctx.path.replace("\\", "/")
        if any(part in path for part in self._EXEMPT_PARTS):
            return True
        return any(path.endswith(suffix) for suffix in self._EXEMPT_SUFFIXES)

    def check_module(self, tree, source, ctx):
        if self._exempt(ctx):
            return
        time_aliases = set()
        clock_names = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        time_aliases.add(alias.asname or "time")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in self._CLOCK_ATTRS:
                            clock_names.add(alias.asname or alias.name)
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in self._CLOCK_ATTRS
                and isinstance(node.value, ast.Name)
                and node.value.id in time_aliases
            ):
                yield self._finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    "wall-clock read time.%s is reserved for obs/ and "
                    "analysis/timing.py; use repro.obs spans instead" % node.attr,
                )
            elif (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in clock_names
            ):
                yield self._finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    "wall-clock read %s (imported from time) is reserved for "
                    "obs/ and analysis/timing.py" % node.id,
                )


# ---------------------------------------------------------------------------
# R003 — no mutable default arguments
# ---------------------------------------------------------------------------


class MutableDefaultRule(Rule):
    id = "R003"
    title = "no mutable default arguments"
    rationale = (
        "A mutable default is evaluated once per process and shared across "
        "calls — in a library with long-lived managers and solvers that is "
        "a state-leak bug, not a style nit."
    )

    _MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "defaultdict", "deque"})

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
            return name in self._MUTABLE_CALLS
        return False

    def check_module(self, tree, source, ctx):
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            args = node.args
            defaults = list(args.defaults) + [d for d in args.kw_defaults if d is not None]
            for default in defaults:
                if self._is_mutable(default):
                    label = getattr(node, "name", "<lambda>")
                    yield self._finding(
                        ctx,
                        default.lineno,
                        default.col_offset,
                        "mutable default argument in %r; default to None and "
                        "materialise inside the body" % label,
                    )


# ---------------------------------------------------------------------------
# R004 — span/metric names must be documented vocabulary
# ---------------------------------------------------------------------------


class ObsVocabularyRule(Rule):
    id = "R004"
    title = "span/metric names must appear in docs/OBSERVABILITY.md"
    rationale = (
        "The observability vocabulary is an API: traces and dashboards key "
        "on it.  A literal name that is not in the documented inventory is "
        "either a typo or an undocumented signal."
    )

    _SINK_FUNCS = frozenset(
        {"span", "event", "counter", "gauge", "histogram", "_span", "_obs_span", "_obs_event"}
    )

    def check_module(self, tree, source, ctx):
        vocabulary = ctx.obs_vocabulary
        if vocabulary is None:
            return
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
            if name not in self._SINK_FUNCS:
                continue
            first = node.args[0]
            if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
                continue  # dynamic names ("sat." + field) are out of scope
            candidate = first.value
            if "." not in candidate:
                continue  # single-word names carry no vocabulary contract
            if candidate not in vocabulary:
                yield self._finding(
                    ctx,
                    first.lineno,
                    first.col_offset,
                    "span/metric name %r is not in the docs/OBSERVABILITY.md "
                    "vocabulary; document it or fix the typo" % candidate,
                )


# ---------------------------------------------------------------------------
# R005 — no blanket except that swallows
# ---------------------------------------------------------------------------


class BlanketExceptRule(Rule):
    id = "R005"
    title = "no bare/blanket except swallowing exceptions"
    rationale = (
        "A swallowed Exception in engine code converts a soundness bug into "
        "a silent wrong answer.  Catch the specific error, re-raise, or "
        "pragma the (rare) deliberate shutdown-path guard."
    )

    _BLANKET = frozenset({"Exception", "BaseException"})

    def _is_blanket(self, handler: ast.ExceptHandler) -> bool:
        node = handler.type
        if node is None:
            return True
        if isinstance(node, ast.Name):
            return node.id in self._BLANKET
        if isinstance(node, ast.Tuple):
            return any(
                isinstance(el, ast.Name) and el.id in self._BLANKET for el in node.elts
            )
        return False

    def check_module(self, tree, source, ctx):
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_blanket(node):
                continue
            if any(isinstance(inner, ast.Raise) for inner in ast.walk(node)):
                continue
            what = "bare except" if node.type is None else "blanket except"
            yield self._finding(
                ctx,
                node.lineno,
                node.col_offset,
                "%s swallows the exception; catch the specific error or "
                "re-raise" % what,
            )


# ---------------------------------------------------------------------------
# R006 — __all__ must match module bindings
# ---------------------------------------------------------------------------


class DunderAllRule(Rule):
    id = "R006"
    title = "__all__ entries must name module bindings"
    rationale = (
        "__all__ is the public contract: an entry that no longer exists "
        "breaks `from module import *` and misleads readers about the API."
    )

    def _top_level_names(self, body: Sequence[ast.stmt]) -> Iterable[str]:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                yield stmt.name
            elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    yield alias.asname or alias.name.split(".")[0]
            elif isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                for target in targets:
                    for name_node in ast.walk(target):
                        if isinstance(name_node, ast.Name):
                            yield name_node.id
            elif isinstance(stmt, (ast.If, ast.Try, ast.With, ast.For, ast.While)):
                for attr in ("body", "orelse", "finalbody"):
                    yield from self._top_level_names(getattr(stmt, attr, []) or [])
                for handler in getattr(stmt, "handlers", []) or []:
                    yield from self._top_level_names(handler.body)
                if isinstance(stmt, ast.For):
                    for name_node in ast.walk(stmt.target):
                        if isinstance(name_node, ast.Name):
                            yield name_node.id
                if isinstance(stmt, ast.With):
                    for item in stmt.items:
                        if item.optional_vars is not None:
                            for name_node in ast.walk(item.optional_vars):
                                if isinstance(name_node, ast.Name):
                                    yield name_node.id

    def check_module(self, tree, source, ctx):
        exported = None
        for stmt in tree.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == "__all__"
                and isinstance(stmt.value, (ast.List, ast.Tuple))
            ):
                exported = stmt
                break
        if exported is None:
            return
        entries = []
        for element in exported.value.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                entries.append((element.value, element.lineno, element.col_offset))
            else:
                return  # dynamically built __all__: out of scope
        defined = set(self._top_level_names(tree.body))
        seen = set()
        for name, lineno, col in entries:
            if name in seen:
                yield self._finding(
                    ctx, lineno, col, "__all__ lists %r more than once" % name
                )
            seen.add(name)
            if name not in defined:
                yield self._finding(
                    ctx,
                    lineno,
                    col,
                    "__all__ exports %r but the module never binds that name" % name,
                )


RULES: Tuple[Rule, ...] = (
    EngineEnumerationRule(),
    WallClockRule(),
    MutableDefaultRule(),
    ObsVocabularyRule(),
    BlanketExceptRule(),
    DunderAllRule(),
)

RULES_BY_ID = {rule.id: rule for rule in RULES}
