"""Driver for ``repro-lint``: file discovery, pragmas, reporting, CLI.

The analysis itself lives in :mod:`repro.devtools.lint.rules`; this
module walks the tree, runs every rule over every file, filters the
findings through the suppression pragmas, and renders the survivors as
human-readable lines or one JSON document.

Pragma syntax (comments, so they survive formatting):

``# repro-lint: disable=R002``
    suppresses the listed rule(s) for findings *on that line*
    (comma-separate ids, or ``disable=all``);

``# repro-lint: disable-file=R001``
    on a line of its own, suppresses the rule(s) for the whole file.

Exit codes: 0 clean, 1 findings, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import io
import json
import os
import sys
import tokenize
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .rules import RULES, RULES_BY_ID, Finding, LintContext, load_obs_vocabulary

__all__ = [
    "lint_source",
    "lint_text",
    "lint_path",
    "run_lint",
    "find_observability_doc",
    "main",
]

_TEXT_SUFFIXES = (".md", ".rst")
_OBS_DOC_RELATIVE = os.path.join("docs", "OBSERVABILITY.md")

_PRAGMA_PREFIX = "repro-lint:"


def _parse_pragma_comment(comment: str) -> Optional[Tuple[str, Set[str]]]:
    """Parse one comment; return ``(scope, rule_ids)`` or ``None``.

    ``scope`` is ``"line"`` or ``"file"``; ``rule_ids`` may contain the
    sentinel ``"all"``.
    """
    marker = comment.find(_PRAGMA_PREFIX)
    if marker < 0:
        return None
    directive = comment[marker + len(_PRAGMA_PREFIX) :]
    directive = directive.split("-->")[0].strip()
    for scope, key in (("file", "disable-file="), ("line", "disable=")):
        if directive.startswith(key):
            ids = {part.strip() for part in directive[len(key) :].split(",") if part.strip()}
            return scope, ids
    return None


def collect_pragmas(source: str) -> Tuple[Set[str], Dict[int, Set[str]]]:
    """Return ``(file_disabled, line_disabled)`` pragma tables.

    Comments are found with :mod:`tokenize` so pragma-looking strings
    inside literals do not count; an untokenizable file (which would
    also fail to parse) yields empty tables.
    """
    file_disabled: Set[str] = set()
    line_disabled: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            parsed = _parse_pragma_comment(token.string)
            if parsed is None:
                continue
            scope, ids = parsed
            if scope == "file":
                file_disabled |= ids
            else:
                line_disabled.setdefault(token.start[0], set()).update(ids)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return file_disabled, line_disabled


def _suppressed(finding: Finding, file_disabled: Set[str], line_disabled: Dict[int, Set[str]]) -> bool:
    if "all" in file_disabled or finding.rule in file_disabled:
        return True
    on_line = line_disabled.get(finding.line, ())
    return "all" in on_line or finding.rule in on_line


def _select_rules(only: Optional[Iterable[str]]):
    if only is None:
        return RULES
    unknown = sorted(set(only) - set(RULES_BY_ID))
    if unknown:
        raise ValueError("unknown rule id(s): %s" % ", ".join(unknown))
    return tuple(RULES_BY_ID[rule_id] for rule_id in only)


def lint_source(
    source: str,
    ctx: LintContext,
    only: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint one Python module given as text."""
    import ast

    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return [
            Finding(
                path=ctx.path,
                line=error.lineno or 1,
                col=error.offset or 0,
                rule="E000",
                message="syntax error: %s" % error.msg,
            )
        ]
    file_disabled, line_disabled = collect_pragmas(source)
    findings: List[Finding] = []
    for rule in _select_rules(only):
        for finding in rule.check_module(tree, source, ctx):
            if not _suppressed(finding, file_disabled, line_disabled):
                findings.append(finding)
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings


def _collect_text_pragmas(text: str) -> Tuple[Set[str], Dict[int, Set[str]]]:
    """Pragmas in prose files: HTML comments ``<!-- repro-lint: ... -->``."""
    file_disabled: Set[str] = set()
    line_disabled: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if _PRAGMA_PREFIX not in line:
            continue
        parsed = _parse_pragma_comment(line)
        if parsed is None:
            continue
        scope, ids = parsed
        if scope == "file":
            file_disabled |= ids
        else:
            line_disabled.setdefault(lineno, set()).update(ids)
    return file_disabled, line_disabled


def lint_text(text: str, ctx: LintContext, only: Optional[Iterable[str]] = None) -> List[Finding]:
    """Lint one prose file (``.md``): only ``text_mode`` rules apply."""
    file_disabled, line_disabled = _collect_text_pragmas(text)
    findings: List[Finding] = []
    for rule in _select_rules(only):
        if not rule.text_mode:
            continue
        for finding in rule.check_text(text, ctx):
            if not _suppressed(finding, file_disabled, line_disabled):
                findings.append(finding)
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings


def find_observability_doc(start: str) -> Optional[str]:
    """Walk upward from ``start`` looking for ``docs/OBSERVABILITY.md``."""
    current = os.path.abspath(start)
    if os.path.isfile(current):
        current = os.path.dirname(current)
    while True:
        candidate = os.path.join(current, _OBS_DOC_RELATIVE)
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(current)
        if parent == current:
            return None
        current = parent


def _load_vocabulary(obs_doc: Optional[str], start: str) -> Optional[FrozenSet[str]]:
    path = obs_doc or find_observability_doc(start)
    if path is None:
        return None
    with open(path, "r", encoding="utf-8") as handle:
        return load_obs_vocabulary(handle.read())


def lint_path(
    path: str,
    only: Optional[Iterable[str]] = None,
    obs_doc: Optional[str] = None,
    vocabulary: Optional[FrozenSet[str]] = None,
) -> List[Finding]:
    """Lint one file (``.py`` or prose)."""
    if vocabulary is None:
        vocabulary = _load_vocabulary(obs_doc, path)
    with open(path, "r", encoding="utf-8") as handle:
        content = handle.read()
    ctx = LintContext(path=path, obs_vocabulary=vocabulary)
    if path.endswith(_TEXT_SUFFIXES):
        return lint_text(content, ctx, only=only)
    return lint_source(content, ctx, only=only)


def _discover(paths: Sequence[str]) -> List[str]:
    """Expand directories into sorted ``.py``/``.md`` file lists."""
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in ("__pycache__", ".git")
                )
                for filename in sorted(filenames):
                    if filename.endswith(".py") or filename.endswith(_TEXT_SUFFIXES):
                        files.append(os.path.join(root, filename))
        elif os.path.isfile(path):
            files.append(path)
        else:
            raise FileNotFoundError(path)
    return files


def run_lint(
    paths: Sequence[str],
    only: Optional[Iterable[str]] = None,
    obs_doc: Optional[str] = None,
) -> List[Finding]:
    """Lint every file under ``paths``; returns all surviving findings."""
    files = _discover(paths)
    vocabulary = _load_vocabulary(obs_doc, files[0] if files else os.getcwd())
    findings: List[Finding] = []
    for path in files:
        findings.extend(lint_path(path, only=only, vocabulary=vocabulary))
    return findings


def _render_text(findings: List[Finding], checked: int, out) -> None:
    for finding in findings:
        print(finding.format(), file=out)
    summary = "repro-lint: %d finding%s in %d file%s" % (
        len(findings),
        "" if len(findings) == 1 else "s",
        checked,
        "" if checked == 1 else "s",
    )
    print(summary, file=out)


def _render_json(findings: List[Finding], checked: int, out) -> None:
    document = {
        "tool": "repro-lint",
        "files_checked": checked,
        "findings": [finding.to_dict() for finding in findings],
    }
    json.dump(document, out, indent=2, sort_keys=True)
    out.write("\n")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Project-specific static analysis for the repro codebase.",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--obs-doc",
        metavar="PATH",
        help="explicit path to docs/OBSERVABILITY.md for the R004 vocabulary",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)
    if options.list_rules:
        for rule in RULES:
            print("%s  %s" % (rule.id, rule.title))
            print("      %s" % rule.rationale)
        return 0
    if not options.paths:
        parser.print_usage(sys.stderr)
        print("repro-lint: error: no paths given", file=sys.stderr)
        return 2
    only = options.select.split(",") if options.select else None
    try:
        files = _discover(options.paths)
        vocabulary = _load_vocabulary(
            options.obs_doc, files[0] if files else os.getcwd()
        )
        findings: List[Finding] = []
        for path in files:
            findings.extend(lint_path(path, only=only, vocabulary=vocabulary))
    except (FileNotFoundError, ValueError, OSError) as error:
        print("repro-lint: error: %s" % error, file=sys.stderr)
        return 2
    if options.format == "json":
        _render_json(findings, len(files), sys.stdout)
    else:
        _render_text(findings, len(files), sys.stdout)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
