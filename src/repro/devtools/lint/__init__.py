"""``repro-lint`` — the project-specific static analyser.

Six AST/text rules (R001–R006) encode invariants this codebase has
broken by hand before: registry-stale engine enumerations, stray
wall-clock reads, mutable defaults, undocumented span/metric names,
exception swallowing, and drifted ``__all__`` exports.  See
``docs/CORRECTNESS.md`` for the catalog and pragma syntax.

Programmatic entry points::

    from repro.devtools.lint import run_lint
    findings = run_lint(["src"])     # [] when the tree is clean
"""

from .engine import (
    build_parser,
    find_observability_doc,
    lint_path,
    lint_source,
    lint_text,
    main,
    run_lint,
)
from .rules import RULES, RULES_BY_ID, Finding, LintContext, load_obs_vocabulary

__all__ = [
    "Finding",
    "LintContext",
    "RULES",
    "RULES_BY_ID",
    "build_parser",
    "find_observability_doc",
    "lint_path",
    "lint_source",
    "lint_text",
    "load_obs_vocabulary",
    "main",
    "run_lint",
]
