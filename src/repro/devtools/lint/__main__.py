"""``python -m repro.devtools.lint`` — same surface as ``repro-lint``."""

import sys

from .engine import main

if __name__ == "__main__":
    sys.exit(main())
