"""Developer tooling that ships with the library but never runs inside it.

``repro.devtools`` hosts build/CI-facing helpers — currently the
project-specific static analyser :mod:`repro.devtools.lint` (console
script ``repro-lint``).  Nothing under this package is imported by the
engines; the dependency arrow points strictly from devtools into the
library, mirroring how ``repro.obs`` is import-only in the other
direction.
"""

__all__ = []
