"""The Section 5 distributed mutual-exclusion token ring.

``r`` identical processes are arranged in a ring.  Each process ``P_i`` is in
one of three local situations: *neutral* (``n_i``), *delayed* waiting to enter
its critical region (``d_i``), or *critical* (``c_i``).  Exactly one process
holds the token (``t_i``); the paper's global state is the five-tuple
``(D, N, T, C, O)`` of index sets:

* ``i ∈ D`` — process ``i`` is delayed;
* ``i ∈ N`` — neutral without the token;
* ``i ∈ T`` — neutral with the token;
* ``i ∈ C`` — critical (and holding the token);
* ``i ∈ O`` — none of the above (always empty in reachable states; invariant 1).

The global transitions (exactly as in the paper's definition of ``R_r``):

1. a neutral process becomes delayed;
2. the token is transferred from its holder ``j ∈ T ∪ C`` to the *closest
   delayed neighbour to the left* ``i = cln(j)``; ``j`` becomes neutral and
   ``i`` enters its critical region;
3. the process in ``T`` enters its critical region;
4. the process in ``C`` returns to ``T`` — but only when no process is
   delayed (otherwise it must hand the token over via rule 2).

``G_r`` as written is not a Kripke structure (the all-delayed/no-token state
has no successors), but the restriction to the states reachable from the
initial state ``s_r^0 = (∅, {2..r}, {1}, ∅, ∅)`` — which the paper calls
``M_r`` — is; :func:`build_token_ring` constructs it directly.

The module also implements the machinery of the appendix: the *rank*
``r(s, i)`` (the maximal number of consecutive ``i``-idle transitions), the
explicit Section 5 correspondence relation between ``M_2`` and ``M_r`` whose
degrees are sums of ranks, the index relation ``IN``, and the ICTL* formulas
for the invariants and the four verified properties.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.errors import StructureError
from repro.kripke.indexed import IndexedKripkeStructure
from repro.kripke.structure import IndexedProp
from repro.logic.ast import Formula
from repro.logic.builders import (
    AF,
    AG,
    AU,
    EF,
    EU,
    exactly_one,
    iatom,
    implies,
    index_exists,
    index_forall,
    land,
    lnot,
    lor,
)
from repro.mc.fairness import FairnessConstraint
from repro.correspondence.indexed import IndexRelation
from repro.correspondence.relation import CorrespondenceRelation

__all__ = [
    "RingState",
    "initial_state",
    "cln",
    "ring_successors",
    "state_label",
    "build_token_ring",
    "symbolic_token_ring",
    "rank",
    "is_idle_transition",
    "section5_index_relation",
    "section5_pair_corresponds",
    "section5_degree",
    "section5_correspondence",
    "RECOMMENDED_BASE_SIZE",
    "corrected_index_relation",
    "distinguishing_formula",
    "partition_invariant_holds",
    "invariant_request_persistence",
    "invariant_one_token",
    "ring_mutual_exclusion",
    "property_token_only_on_request",
    "property_critical_implies_token",
    "property_request_until_token",
    "property_eventual_entry",
    "property_eventual_token",
    "ring_scheduler_fairness",
    "fair_ring_properties",
    "ring_properties",
    "ring_invariants",
]


# ---------------------------------------------------------------------------
# Global states
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RingState:
    """A global state ``(D, N, T, C, O)`` of the token ring."""

    delayed: FrozenSet[int]
    neutral: FrozenSet[int]
    token_neutral: FrozenSet[int]
    critical: FrozenSet[int]
    other: FrozenSet[int] = frozenset()

    def part_of(self, index: int) -> str:
        """Return which part (``"D"``, ``"N"``, ``"T"``, ``"C"`` or ``"O"``) contains ``index``."""
        if index in self.delayed:
            return "D"
        if index in self.neutral:
            return "N"
        if index in self.token_neutral:
            return "T"
        if index in self.critical:
            return "C"
        return "O"

    def token_holder(self) -> Optional[int]:
        """The process holding the token, or ``None`` when no process does."""
        holders = self.token_neutral | self.critical
        if len(holders) == 1:
            return next(iter(holders))
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        def show(part: FrozenSet[int]) -> str:
            return "{%s}" % ",".join(str(value) for value in sorted(part))

        return "Ring(D=%s N=%s T=%s C=%s)" % (
            show(self.delayed),
            show(self.neutral),
            show(self.token_neutral),
            show(self.critical),
        )


def initial_state(size: int) -> RingState:
    """The paper's initial state ``s_r^0``: process 1 holds the token, everyone is neutral."""
    if size < 1:
        raise StructureError("the ring needs at least one process")
    return RingState(
        delayed=frozenset(),
        neutral=frozenset(range(2, size + 1)),
        token_neutral=frozenset({1}),
        critical=frozenset(),
    )


def cln(state: RingState, holder: int, size: int) -> Optional[int]:
    """The closest delayed neighbour to the *left* of ``holder`` (decreasing index, wrapping).

    Returns ``None`` when no process is delayed.
    """
    if not state.delayed:
        return None
    candidate = holder
    for _ in range(size):
        candidate = size if candidate == 1 else candidate - 1
        if candidate in state.delayed:
            return candidate
    return None


def ring_successors(state: RingState, size: int, buggy: bool = False) -> List[RingState]:
    """The successors of a global state under the four transition rules of ``R_r``.

    With ``buggy=True`` a fifth, *seeded-bug* rule is added: a delayed
    process may enter its critical region directly, without receiving the
    token — which silently duplicates the token (the labelling derives
    ``t_i`` from ``T ∪ C`` membership) and breaks the ``AG Θ_i t_i``
    invariant two transitions from the initial state.  The buggy family is
    the falsification target of the bounded model checker (experiment E12
    and ``benchmarks/test_bench_bmc.py``).
    """
    successors: List[RingState] = []

    # Seeded bug: a delayed process jumps into its critical region on its
    # own, conjuring a second token out of nothing.
    if buggy:
        for process in sorted(state.delayed):
            successors.append(
                RingState(
                    delayed=state.delayed - {process},
                    neutral=state.neutral,
                    token_neutral=state.token_neutral,
                    critical=state.critical | {process},
                    other=state.other,
                )
            )

    # Rule 1: a neutral process becomes delayed.
    for process in sorted(state.neutral):
        successors.append(
            RingState(
                delayed=state.delayed | {process},
                neutral=state.neutral - {process},
                token_neutral=state.token_neutral,
                critical=state.critical,
                other=state.other,
            )
        )

    # Rule 2: the token holder j ∈ T ∪ C hands the token to i = cln(j) ∈ D;
    # j becomes neutral and i enters its critical region.
    for holder in sorted(state.token_neutral | state.critical):
        receiver = cln(state, holder, size)
        if receiver is None:
            continue
        successors.append(
            RingState(
                delayed=state.delayed - {receiver},
                neutral=state.neutral | {holder},
                token_neutral=state.token_neutral - {holder},
                critical=(state.critical - {holder}) | {receiver},
                other=state.other,
            )
        )

    # Rule 3: the process in T enters its critical region.
    for holder in sorted(state.token_neutral):
        successors.append(
            RingState(
                delayed=state.delayed,
                neutral=state.neutral,
                token_neutral=state.token_neutral - {holder},
                critical=state.critical | {holder},
                other=state.other,
            )
        )

    # Rule 4: the process in C returns to T, but only when nobody is delayed.
    if not state.delayed:
        for holder in sorted(state.critical):
            successors.append(
                RingState(
                    delayed=state.delayed,
                    neutral=state.neutral,
                    token_neutral=state.token_neutral | {holder},
                    critical=state.critical - {holder},
                    other=state.other,
                )
            )

    return successors


def state_label(state: RingState) -> FrozenSet[IndexedProp]:
    """The paper's labelling ``L_r``: ``d_i``, ``n_i``, ``t_i``, ``c_i`` per part."""
    label = set()
    for process in state.delayed:
        label.add(IndexedProp("d", process))
    for process in state.neutral:
        label.add(IndexedProp("n", process))
    for process in state.token_neutral:
        label.add(IndexedProp("n", process))
        label.add(IndexedProp("t", process))
    for process in state.critical:
        label.add(IndexedProp("c", process))
        label.add(IndexedProp("t", process))
    return frozenset(label)


def build_token_ring(
    size: int, max_states: Optional[int] = None, buggy: bool = False
) -> IndexedKripkeStructure:
    """Build ``M_r``: the token ring's global state graph restricted to reachable states.

    Parameters
    ----------
    size:
        The number of processes ``r``.
    max_states:
        Optional safety bound on the exploration (the reachable state space
        grows exponentially with ``r``).
    buggy:
        Include the seeded token-duplication bug of :func:`ring_successors`
        (the BMC falsification target; the one-token invariant fails).
    """
    start = initial_state(size)
    states = {start}
    transitions: Dict[RingState, List[RingState]] = {}
    frontier = [start]
    while frontier:
        current = frontier.pop()
        successors = ring_successors(current, size, buggy=buggy)
        transitions[current] = successors
        for successor in successors:
            if successor not in states:
                states.add(successor)
                frontier.append(successor)
                if max_states is not None and len(states) > max_states:
                    raise StructureError(
                        "token ring exploration exceeded max_states=%d" % max_states
                    )
    labeling = {state: state_label(state) for state in states}
    return IndexedKripkeStructure(
        states,
        transitions,
        labeling,
        start,
        index_values=range(1, size + 1),
        indexed_prop_names={"d", "n", "t", "c"},
        name="M_%d%s" % (size, " (buggy)" if buggy else ""),
    )


# ---------------------------------------------------------------------------
# The symbolic (BDD) encoding of M_r — no explicit product graph
# ---------------------------------------------------------------------------

#: The local-part alphabet of the symbolic ring encoding; two bits per process.
_SYMBOLIC_PARTS = ("N", "D", "T", "C")


def symbolic_token_ring(size: int, buggy: bool = False, domain: str = "reachable"):
    """Encode ``M_r`` directly as binary decision diagrams.

    Each process gets two state bits recording which part (``N``, ``D``,
    ``T``, ``C``) it is in, and the four global transition rules of ``R_r``
    are written down as BDD relations over those bits — the explicit global
    state graph is **never built**, which is what lets the symbolic engine
    check ring sizes the explicit engines cannot reach.  Rule 2 (token
    transfer to the closest delayed left neighbour) contributes one relation
    part per potential holder ``j``: the disjunct for receiver ``i`` carries
    the ``cln`` side condition that no process strictly between ``j`` and
    ``i`` (walking left from ``j``) is delayed.

    Parts with a natural conjunctive factoring are handed to the symbolic
    structure as *conjunct lists* so its clustered image computation can
    conjoin-and-quantify them with early-quantification scheduling: rule 2's
    per-holder guard/effect on the holder is factored out of the receiver
    disjunction, and rule 4's global "nobody is delayed" side condition is
    its own conjunct — conjoining these small factors first keeps the
    intermediate products of each relational product small.

    The returned :class:`~repro.kripke.symbolic.SymbolicKripkeStructure`
    restricts its state set to the states reachable from ``s_r^0`` (computed
    symbolically), so it represents exactly the structure
    :func:`build_token_ring` builds explicitly — the test-suite decodes and
    compares the two at small sizes.

    ``buggy=True`` seeds the same token-duplication bug as
    :func:`ring_successors` (a delayed process may enter its critical region
    directly).  ``domain="free"`` skips the symbolic reachability fixpoint
    and takes every bit pattern as a state: exactly what the SAT-based
    bounded model checker wants, since its unrolling only ever visits states
    reachable from the (still exact) initial state — the falsification cost
    then really is proportional to the bound rather than to reachable-set
    construction.  Fixpoint engines should keep the default
    ``domain="reachable"``.
    """
    if size < 1:
        raise StructureError("the ring needs at least one process")
    if domain not in ("reachable", "free"):
        raise StructureError("domain must be 'reachable' or 'free', got %r" % (domain,))
    from repro.bdd import BDDManager
    from repro.kripke.symbolic import ProcessFamilyEncoding, SymbolicKripkeStructure

    manager = BDDManager()
    indices = tuple(range(1, size + 1))
    encoding = ProcessFamilyEncoding(manager, indices, _SYMBOLIC_PARTS)
    land, lor, neg = manager.apply_and, manager.apply_or, manager.negate

    parts: List[object] = []

    # Rule 1: a neutral process becomes delayed.
    rule1 = 0
    for process in indices:
        rule1 = lor(
            rule1,
            land(
                land(encoding.current(process, "N"), encoding.next(process, "D")),
                encoding.frame([process]),
            ),
        )
    parts.append(rule1)

    # Rule 2: the holder j ∈ T ∪ C hands the token to i = cln(j) ∈ D; j
    # becomes neutral and i enters its critical region.  One part per j,
    # factored as (holder guard ∧ holder effect) ∧ (receiver disjunction).
    for holder in indices:
        holder_core = land(
            lor(encoding.current(holder, "T"), encoding.current(holder, "C")),
            encoding.next(holder, "N"),
        )
        handoffs = 0
        nobody_between_delayed = 1
        candidate = holder
        for _ in range(size - 1):
            candidate = size if candidate == 1 else candidate - 1
            guard = land(encoding.current(candidate, "D"), nobody_between_delayed)
            effect = land(
                encoding.next(candidate, "C"),
                encoding.frame([holder, candidate]),
            )
            handoffs = lor(handoffs, land(guard, effect))
            nobody_between_delayed = land(
                nobody_between_delayed, neg(encoding.current(candidate, "D"))
            )
        if handoffs != 0:
            parts.append((holder_core, handoffs))

    # Rule 3: the process in T enters its critical region.
    rule3 = 0
    for process in indices:
        rule3 = lor(
            rule3,
            land(
                land(encoding.current(process, "T"), encoding.next(process, "C")),
                encoding.frame([process]),
            ),
        )
    parts.append(rule3)

    # Seeded bug (buggy=True): a delayed process enters its critical region
    # directly, duplicating the token — cf. ring_successors(buggy=True).
    if buggy:
        bug_rule = 0
        for process in indices:
            bug_rule = lor(
                bug_rule,
                land(
                    land(encoding.current(process, "D"), encoding.next(process, "C")),
                    encoding.frame([process]),
                ),
            )
        parts.append(bug_rule)

    # Rule 4: the process in C returns to T, but only when nobody is delayed;
    # the global side condition is a separate conjunct.
    nobody_delayed = 1
    for process in indices:
        nobody_delayed = land(nobody_delayed, neg(encoding.current(process, "D")))
    rule4 = 0
    for process in indices:
        rule4 = lor(
            rule4,
            land(
                land(encoding.current(process, "C"), encoding.next(process, "T")),
                encoding.frame([process]),
            ),
        )
    parts.append((nobody_delayed, rule4))

    # The labelling L_r as characteristic functions (cf. state_label).
    prop_nodes = {}
    for process in indices:
        prop_nodes[IndexedProp("d", process)] = encoding.current(process, "D")
        prop_nodes[IndexedProp("n", process)] = lor(
            encoding.current(process, "N"), encoding.current(process, "T")
        )
        prop_nodes[IndexedProp("t", process)] = lor(
            encoding.current(process, "T"), encoding.current(process, "C")
        )
        prop_nodes[IndexedProp("c", process)] = encoding.current(process, "C")

    initial_parts = {process: ("T" if process == 1 else "N") for process in indices}
    initial = encoding.state_cube(initial_parts)

    def decode_assignment(model) -> RingState:
        by_part: Dict[str, set] = {part: set() for part in _SYMBOLIC_PARTS}
        for process, part in encoding.decode(model).items():
            by_part[part].add(process)
        return RingState(
            delayed=frozenset(by_part["D"]),
            neutral=frozenset(by_part["N"]),
            token_neutral=frozenset(by_part["T"]),
            critical=frozenset(by_part["C"]),
        )

    def encode_assignment(state: RingState):
        return encoding.encode({process: state.part_of(process) for process in indices})

    return SymbolicKripkeStructure(
        manager,
        encoding.num_bits,
        parts,
        initial,
        # domain=None: reachable states, computed symbolically at build time;
        # domain=1 (the true function): every bit pattern, no fixpoint.
        None if domain == "reachable" else 1,
        prop_nodes,
        index_values=frozenset(indices),
        encode_assignment=encode_assignment,
        decode_assignment=decode_assignment,
        name="M_%d (symbolic%s%s)" % (
            size,
            ", buggy" if buggy else "",
            ", free domain" if domain == "free" else "",
        ),
    )


# ---------------------------------------------------------------------------
# The appendix: ranks, idle transitions, and the explicit correspondence
# ---------------------------------------------------------------------------


def is_idle_transition(source: RingState, target: RingState, index: int) -> bool:
    """Return ``True`` when the transition does not affect process ``index``.

    Following the appendix: ``index`` stays in the same part, and — when
    ``index`` is critical and nobody is delayed — nobody becomes delayed
    either (that extra condition mirrors the ``D = ∅ ⇔ D' = ∅`` conjunct of
    the Section 5 correspondence).
    """
    if source.part_of(index) != target.part_of(index):
        return False
    if index in source.critical and not source.delayed:
        return not target.delayed
    return True


def rank(state: RingState, index: int, size: int) -> int:
    """The appendix rank ``r(s, i)``: the maximal number of consecutive ``i``-idle transitions.

    The rank is 0 both when an exact match is required immediately *and* when
    infinitely many idle transitions are possible (the ``i ∈ N`` case); the
    appendix gives the closed forms implemented here:

    * ``i ∈ N`` — infinitely many idle transitions are possible, rank 0;
    * ``i ∈ D`` — ``|N| + |T| + 2·((j − i) mod r − 1)`` where ``j`` holds the token;
    * ``i ∈ T`` — ``|N|``;
    * ``i ∈ C`` and ``D = ∅`` — 0;
    * ``i ∈ C`` and ``D ≠ ∅`` — ``|N|``.
    """
    part = state.part_of(index)
    if part == "N":
        return 0
    if part == "T":
        return len(state.neutral)
    if part == "C":
        return len(state.neutral) if state.delayed else 0
    if part == "D":
        holder = state.token_holder()
        if holder is None:
            raise StructureError("unreachable ring state without a token holder: %r" % (state,))
        distance = (holder - index) % size
        return len(state.neutral) + len(state.token_neutral) + 2 * (distance - 1)
    raise StructureError("process %d is in no part of state %r" % (index, state))


def section5_index_relation(size: int) -> IndexRelation:
    """The paper's relation ``IN = {(1, 1)} ∪ {(2, i) : i ∈ I_r − {1}}`` between ``I_2`` and ``I_r``."""
    if size < 2:
        raise StructureError("the Section 5 correspondence needs at least two processes")
    pairs = {(1, 1)}
    for value in range(2, size + 1):
        pairs.add((2, value))
    return IndexRelation.from_pairs(pairs)


def section5_pair_corresponds(
    small_state: RingState, small_index: int, large_state: RingState, large_index: int
) -> bool:
    """The Section 5 state condition: same part, and the ``D = ∅`` flags agree when critical."""
    if small_state.part_of(small_index) != large_state.part_of(large_index):
        return False
    if small_index in small_state.critical:
        return bool(small_state.delayed) == bool(large_state.delayed)
    return True


def section5_degree(
    small_state: RingState,
    small_index: int,
    large_state: RingState,
    large_index: int,
    small_size: int,
    large_size: int,
) -> int:
    """The Section 5 degree: ``r(s, i) + r(s', i')``."""
    return rank(small_state, small_index, small_size) + rank(
        large_state, large_index, large_size
    )


def section5_correspondence(
    small: IndexedKripkeStructure,
    large: IndexedKripkeStructure,
    small_index: int,
    large_index: int,
) -> CorrespondenceRelation:
    """Build the explicit Section 5 correspondence relation ``E_{ii'}`` between two rings.

    The relation pairs every reachable state of the small ring with every
    reachable state of the large ring that satisfies the part condition, and
    annotates the pair with the rank-sum degree.  It is exactly the relation
    whose correctness the appendix proves; the test-suite re-validates it with
    the generic definition checker.
    """
    small_size = len(small.index_values)
    large_size = len(large.index_values)
    degrees: Dict[Tuple[RingState, RingState], int] = {}
    for small_state in small.states:
        for large_state in large.states:
            if section5_pair_corresponds(small_state, small_index, large_state, large_index):
                degrees[(small_state, large_state)] = section5_degree(
                    small_state, small_index, large_state, large_index, small_size, large_size
                )
    return CorrespondenceRelation(degrees)


# ---------------------------------------------------------------------------
# The reproduction's findings about the Section 5 example
# ---------------------------------------------------------------------------

#: The smallest base instance that corresponds (in the Section 3/4 sense) to
#: every larger ring.  The paper uses the two-process ring as the base case,
#: but — as :func:`distinguishing_formula` witnesses — ``M_2`` satisfies a
#: restricted ICTL* formula that every larger ring violates, so no
#: correspondence between ``M_2`` and ``M_r`` (r ≥ 3) can exist.  Rings of
#: size ≥ 3 do correspond pairwise (verified by the decision algorithm in the
#: test-suite and benchmarks), so three processes are the correct base case.
RECOMMENDED_BASE_SIZE = 3


def corrected_index_relation(small_size: int, large_size: int) -> IndexRelation:
    """The ``IN`` relation that actually satisfies Theorem 5's hypotheses for two rings.

    Process 1 (the initial token holder) of the small ring is related to
    process 1 of the large ring, and every other small-ring process to every
    other large-ring process.  With ``small_size >= RECOMMENDED_BASE_SIZE``
    every related pair of reductions corresponds, so closed restricted ICTL*
    verdicts transfer from the small ring to the large one.
    """
    if small_size < 2 or large_size < 2:
        raise StructureError("both rings need at least two processes")
    pairs = {(1, 1)}
    for small_value in range(2, small_size + 1):
        for large_value in range(2, large_size + 1):
            pairs.add((small_value, large_value))
    return IndexRelation.from_pairs(pairs)


def distinguishing_formula() -> Formula:
    """A restricted ICTL* formula separating ``M_2`` from every larger ring.

    The formula is::

        ∧_i AG( d_i ⇒ A[ d_i U ( c_i ∧ E[ c_i U (n_i ∧ t_i) ] ) ] )

    "whenever process *i* is delayed, along every path it stays delayed until
    it enters its critical region *in a situation from which it can keep the
    token* (i.e. return to the neutral-with-token state)".  In the two-process
    ring a delayed process always receives the token when no other process is
    delayed, so the inner ``E[c_i U (n_i ∧ t_i)]`` always holds at the moment
    of entry and the formula is **true** in ``M_2``.  In any ring with three
    or more processes there are reachable configurations in which a delayed
    process is forced to receive the token while another process is still
    delayed, after which it must hand the token over instead of returning to
    ``T`` — the formula is **false** there.

    Because the formula is closed, next-free and satisfies the Section 4
    restrictions, Theorem 5 implies that ``M_2`` cannot correspond to ``M_r``
    for ``r ≥ 3``; this is the documented deviation of the reproduction from
    the paper's Section 5 claim (see EXPERIMENTS.md).
    """
    d_i = iatom("d", "i")
    t_i = iatom("t", "i")
    c_i = iatom("c", "i")
    n_i = iatom("n", "i")
    keeps_token = EU(c_i, land(n_i, t_i))
    return index_forall("i", AG(implies(d_i, AU(d_i, land(c_i, keeps_token)))))


# ---------------------------------------------------------------------------
# Invariants and properties (Section 5)
# ---------------------------------------------------------------------------


def partition_invariant_holds(structure: IndexedKripkeStructure) -> bool:
    """Invariant 1: in every reachable state ``D, N, T, C`` partition ``I`` and ``O`` is empty."""
    indices = set(structure.index_values)
    for state in structure.states:
        if not isinstance(state, RingState):
            raise StructureError("partition_invariant_holds expects RingState states")
        parts = [state.delayed, state.neutral, state.token_neutral, state.critical]
        union = set()
        total = 0
        for part in parts:
            union |= part
            total += len(part)
        if state.other or union != indices or total != len(indices):
            return False
    return True


def invariant_request_persistence() -> Formula:
    """Invariant 2: ``∧_i AG(d_i ⇒ ¬E[d_i U (¬d_i ∧ ¬t_i)])``.

    Once a process has requested the token it keeps requesting it until the
    token is received.
    """
    d_i = iatom("d", "i")
    t_i = iatom("t", "i")
    return index_forall(
        "i", AG(implies(d_i, lnot(EU(d_i, land(lnot(d_i), lnot(t_i))))))
    )


def invariant_one_token() -> Formula:
    """Invariant 3: ``AG Θ_i t_i`` — exactly one process holds the token."""
    return AG(exactly_one("t"))


def ring_mutual_exclusion(size: int) -> Formula:
    """Pairwise mutual exclusion: ``AG ∧_{i<j} ¬(c_i ∧ c_j)``.

    A consequence of :func:`invariant_one_token`, but a much harder *proof*
    target: the one-token invariant is 1-inductive (every transition rule
    preserves it on any state), whereas pairwise exclusion alone is not
    inductive on the free bit-pattern domain — a state with one critical
    process and a second token elsewhere violates nothing pairwise yet
    reaches a violation in one rule-3 step.  k-induction must therefore
    enumerate simple paths through the free state space (``4^size`` bit
    patterns), while IC3 discovers the token-counting strengthening as
    blocked cubes.  Written over concrete indices like
    :func:`repro.systems.mutex.mutex_safety`, keeping the body
    propositional — the SAT engines' invariant fragment.  With a single
    process there is no pair to exclude, so the formula degenerates to
    ``AG true``.
    """
    if size < 1:
        raise StructureError("the ring needs at least one process")
    pairs = [
        lnot(land(iatom("c", left), iatom("c", right)))
        for left in range(1, size + 1)
        for right in range(left + 1, size + 1)
    ]
    return AG(land(*pairs))


def property_token_only_on_request() -> Formula:
    """Property 1: ``¬ ∨_i EF(¬d_i ∧ ¬t_i ∧ E[¬d_i U t_i])`` — the token is transferred only upon request."""
    d_i = iatom("d", "i")
    t_i = iatom("t", "i")
    inner = land(lnot(d_i), lnot(t_i), EU(lnot(d_i), t_i))
    return lnot(index_exists("i", EF(inner)))


def property_critical_implies_token() -> Formula:
    """Property 2: ``∧_i AG(c_i ⇒ t_i)`` — only the token holder may be critical."""
    return index_forall("i", AG(implies(iatom("c", "i"), iatom("t", "i"))))


def property_request_until_token() -> Formula:
    """Property 3: ``∧_i AG(d_i ⇒ A[d_i U t_i])`` — a requesting process eventually receives the token."""
    d_i = iatom("d", "i")
    t_i = iatom("t", "i")
    return index_forall("i", AG(implies(d_i, AU(d_i, t_i))))


def property_eventual_entry() -> Formula:
    """Property 4: ``∧_i AG(d_i ⇒ AF c_i)`` — every process that wants to enter its critical region eventually does."""
    return index_forall("i", AG(implies(iatom("d", "i"), AF(iatom("c", "i")))))


# ---------------------------------------------------------------------------
# Fairness: liveness beyond what plain CTL can promise
# ---------------------------------------------------------------------------


def property_eventual_token() -> Formula:
    """The fairness-dependent liveness claim ``∧_i AF t_i`` — every process eventually holds the token.

    Unlike properties 1–4 this has no request premise, so it is **false** in
    plain CTL on every ring: the path on which process ``i`` simply never
    leaves its neutral situation is a counterexample.  Under the scheduler
    fairness of :func:`ring_scheduler_fairness` it is **true** — a fair path
    has every process requesting (or holding) infinitely often, request
    persistence keeps a delayed process delayed until the token arrives, and
    the ``cln`` hand-off rule walks the token left until it reaches it.
    """
    return index_forall("i", AF(iatom("t", "i")))


def ring_scheduler_fairness(size: int) -> FairnessConstraint:
    """Per-process scheduler fairness for ``M_r``: each process is infinitely often ``d_i ∨ t_i``.

    One fairness condition per process ``i`` asserting that ``i`` is delayed
    or holds the token; a fair path is one on which *every* process keeps
    participating in the protocol (no process is starved into staying
    neutral forever).  This is the weakest natural constraint that makes the
    Section 5 liveness claims of the ``AF t_i`` form true — see
    :func:`property_eventual_token`.
    """
    if size < 1:
        raise StructureError("the ring needs at least one process")
    return FairnessConstraint(
        conditions=tuple(
            lor(iatom("d", process), iatom("t", process))
            for process in range(1, size + 1)
        ),
        name="scheduler fairness (d_i ∨ t_i) for M_%d" % size,
    )


def fair_ring_properties() -> Dict[str, Formula]:
    """The liveness properties that need fairness, keyed like :func:`ring_properties`."""
    return {"eventual_token": property_eventual_token()}


def ring_properties() -> Dict[str, Formula]:
    """The four properties checked in Section 5, keyed by a short name."""
    return {
        "token_only_on_request": property_token_only_on_request(),
        "critical_implies_token": property_critical_implies_token(),
        "request_until_token": property_request_until_token(),
        "eventual_entry": property_eventual_entry(),
    }


def ring_invariants() -> Dict[str, Formula]:
    """The temporal invariants of Section 5 (the partition invariant is structural)."""
    return {
        "request_persistence": invariant_request_persistence(),
        "one_token": invariant_one_token(),
    }
