"""A saturating ripple counter: the diameter-stress family for engine races.

Each of ``n`` identical bit-processes is in part *zero* (``z_i``) or *one*
(``o_i``); process 1 is the least-significant bit.  The network increments:

1. *ripple-increment* (one rule per ``k``): if bits ``1 … k-1`` are all one
   and bit ``k`` is zero, they flip together — the carry ripples;
2. *saturate*: the all-ones state loops on itself.

Starting from value 1, the counter walks ``1, 2, …, 2^n − 1`` and parks —
so the reachable state space is a **single path of length ``2^n − 2``**.
That shape is exactly what separates the engines (the reason this family
exists; see ``docs/ENGINES.md`` and experiment E13):

* the **BDD engine**'s reachability fixpoint advances one frontier per
  image, so building the reachable domain takes ``2^n − 2`` image steps —
  the classic sequential-circuit worst case for breadth-first symbolic
  traversal, even though every intermediate BDD is small;
* the SAT-based provers never build the reachable set: the safety property
  :func:`counter_nonzero` (``AG ¬zero`` — the counter never wraps) is
  inductive because the all-zero state has **no predecessors** (every
  increment sets a bit, saturation keeps all ones), so both IC3
  (``engine="ic3"``) and k-induction (``engine="bmc"``) prove it in
  milliseconds at sizes where the BDD fixpoint grinds through thousands of
  iterations.

``buggy=True`` seeds the dual stress: a *wrap* rule from all-ones back to
all-zero.  The violation then sits at depth ``2^n − 1`` — a deep bug that
shallow bounded falsification cannot reach at the default bound, the
mirror image of the shallow seeded bugs of the ring and mutex families.

The usual two encodings: :func:`build_counter` (explicit, for the
naive/bitset oracles at small ``n``) and :func:`symbolic_counter` (direct
BDD encoding, one bit per process; ``domain="free"`` for the SAT engines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import StructureError
from repro.kripke.indexed import IndexedKripkeStructure
from repro.kripke.structure import IndexedProp
from repro.logic.ast import Formula
from repro.logic.builders import AG, iatom, land, lnot

__all__ = [
    "CounterState",
    "counter_initial_state",
    "counter_successors",
    "counter_state_label",
    "build_counter",
    "symbolic_counter",
    "counter_nonzero",
    "counter_properties",
]

#: One bit per process in the symbolic encoding.
_PARTS = ("Z", "O")


@dataclass(frozen=True)
class CounterState:
    """A global state: the tuple of bit-parts, process 1 least significant."""

    parts: Tuple[str, ...]

    def part_of(self, index: int) -> str:
        """The part (``"Z"`` or ``"O"``) of bit-process ``index``."""
        return self.parts[index - 1]

    @property
    def value(self) -> int:
        """The counter value this state encodes."""
        return sum(1 << i for i, part in enumerate(self.parts) if part == "O")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Counter(%s=%d)" % ("".join(self.parts), self.value)


def counter_initial_state(size: int) -> CounterState:
    """Value 1: the least-significant bit set — value 0 is never revisited."""
    if size < 1:
        raise StructureError("the counter needs at least one bit-process")
    return CounterState(parts=("O",) + ("Z",) * (size - 1))


def counter_successors(state: CounterState, buggy: bool = False) -> List[CounterState]:
    """Successors under ripple-increment and saturation (plus the seeded wrap).

    Deterministic: exactly one successor per state.  With ``buggy=True``
    the all-ones state wraps to all-zero instead of saturating, planting
    the ``AG ¬zero`` violation at depth ``2^n − 1`` from the initial state.
    """
    size = len(state.parts)
    for k in range(size):
        if state.parts[k] == "Z":
            parts = ("Z",) * k + ("O",) + state.parts[k + 1 :]
            return [CounterState(parts=parts)]
    if buggy:
        return [CounterState(parts=("Z",) * size)]
    return [state]


def counter_state_label(state: CounterState):
    """``z_i`` / ``o_i`` per bit-process."""
    return frozenset(
        IndexedProp("z" if part == "Z" else "o", index)
        for index, part in enumerate(state.parts, start=1)
    )


def build_counter(
    size: int, buggy: bool = False, max_states: Optional[int] = None
) -> IndexedKripkeStructure:
    """Build the explicit state graph — a path of ``2^size − 1`` states.

    Only sensible at small sizes (the point of the family is that this path
    is exponentially long); the symbolic engines use
    :func:`symbolic_counter`.
    """
    start = counter_initial_state(size)
    states = {start}
    transitions: Dict[CounterState, List[CounterState]] = {}
    frontier = [start]
    while frontier:
        current = frontier.pop()
        successors = counter_successors(current, buggy=buggy)
        transitions[current] = successors
        for successor in successors:
            if successor not in states:
                states.add(successor)
                frontier.append(successor)
                if max_states is not None and len(states) > max_states:
                    raise StructureError(
                        "counter exploration exceeded max_states=%d" % max_states
                    )
    labeling = {state: counter_state_label(state) for state in states}
    return IndexedKripkeStructure(
        states,
        transitions,
        labeling,
        start,
        index_values=range(1, size + 1),
        indexed_prop_names={"z", "o"},
        name="counter(%d%s)" % (size, ", buggy" if buggy else ""),
    )


def symbolic_counter(size: int, buggy: bool = False, domain: str = "reachable"):
    """Encode the counter directly as binary decision diagrams.

    One state bit per process; the ripple-increment contributes one relation
    part per carry length ``k`` (each touching only bits ``1 … k``), plus
    the saturation self-loop (or the seeded wrap).  ``domain="reachable"``
    runs the symbolic reachability fixpoint — **deliberately** ``2^size − 2``
    image steps on this family — while ``domain="free"`` skips it for the
    SAT engines.
    """
    if size < 1:
        raise StructureError("the counter needs at least one bit-process")
    if domain not in ("reachable", "free"):
        raise StructureError("domain must be 'reachable' or 'free', got %r" % (domain,))
    from repro.bdd import BDDManager
    from repro.kripke.symbolic import ProcessFamilyEncoding, SymbolicKripkeStructure

    manager = BDDManager()
    indices = tuple(range(1, size + 1))
    encoding = ProcessFamilyEncoding(manager, indices, _PARTS)
    land_ = manager.apply_and

    parts: List[object] = []

    # Ripple-increment, one part per carry length k: bits 1 … k-1 flip
    # O -> Z, bit k flips Z -> O, everything above is framed.
    for k in indices:
        rule = land_(
            land_(encoding.current(k, "Z"), encoding.next(k, "O")),
            encoding.frame(list(range(1, k + 1))),
        )
        for lower in range(1, k):
            rule = land_(
                rule,
                land_(encoding.current(lower, "O"), encoding.next(lower, "Z")),
            )
        parts.append(rule)

    # Saturation (or the seeded wrap) at all ones.
    all_ones = encoding.state_cube({process: "O" for process in indices})
    if buggy:
        wrap = all_ones
        for process in indices:
            wrap = land_(wrap, encoding.next(process, "Z"))
        parts.append(wrap)
    else:
        parts.append(land_(all_ones, encoding.frame([])))

    prop_nodes = {}
    for process in indices:
        prop_nodes[IndexedProp("z", process)] = encoding.current(process, "Z")
        prop_nodes[IndexedProp("o", process)] = encoding.current(process, "O")

    initial = encoding.state_cube(
        {process: "O" if process == 1 else "Z" for process in indices}
    )

    def decode_assignment(model) -> CounterState:
        decoded = encoding.decode(model)
        return CounterState(parts=tuple(decoded[process] for process in indices))

    def encode_assignment(state: CounterState):
        return encoding.encode(
            {process: state.part_of(process) for process in indices}
        )

    return SymbolicKripkeStructure(
        manager,
        encoding.num_bits,
        parts,
        initial,
        None if domain == "reachable" else 1,
        prop_nodes,
        index_values=frozenset(indices),
        encode_assignment=encode_assignment,
        decode_assignment=decode_assignment,
        name="counter(%d, symbolic%s%s)" % (
            size,
            ", buggy" if buggy else "",
            ", free domain" if domain == "free" else "",
        ),
    )


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------


def counter_nonzero(size: int) -> Formula:
    """``AG ¬(z_1 ∧ … ∧ z_n)`` — the counter never wraps back to zero.

    True for the saturating counter (the all-zero state has no
    predecessors, so the invariant is 1-inductive and both SAT provers
    dispatch it immediately); false for ``buggy=True``, with the violation
    at depth ``2^size − 1``.  Concrete indices keep the body propositional.
    """
    if size < 1:
        raise StructureError("the counter needs at least one bit-process")
    zeros = [iatom("z", process) for process in range(1, size + 1)]
    return AG(lnot(land(*zeros))) if size > 1 else AG(lnot(zeros[0]))


def counter_properties(size: int) -> Dict[str, Formula]:
    """The counter property family, keyed by a short name."""
    return {"nonzero": counter_nonzero(size)}
