"""A round-robin token scheduler: the second identical-process application.

The family is a simplification of the Section 5 ring in the spirit of
Milner's cyclic scheduler: the token circulates unconditionally, and the
process holding the token first enters its critical region and then passes
the token to its right neighbour.  There is no request/delay phase, so the
global behaviour is a deterministic cycle of ``2·n`` states — small enough to
analyse at large sizes, yet rich enough to exercise the whole pipeline:
indexed labelling, ICTL* model checking, reduction, and correspondence
between instances of different sizes.

The family is built with the generic :class:`SharedVariableComposition`
machinery (shared variable = token position) rather than by hand, so it also
serves as the reference example for composing custom families.
"""

from __future__ import annotations

from typing import Dict

from repro.kripke.indexed import IndexedKripkeStructure
from repro.kripke.structure import IndexedProp
from repro.logic.ast import Formula
from repro.logic.builders import AF, AG, exactly_one, iatom, implies, index_forall
from repro.network.composition import SharedVariableComposition
from repro.network.process import LocalTransition, ProcessTemplate
from repro.correspondence.indexed import IndexRelation

__all__ = [
    "round_robin_template",
    "round_robin_composition",
    "build_round_robin",
    "round_robin_index_relation",
    "property_token_leads_to_critical",
    "property_always_eventually_critical",
    "property_critical_implies_token",
    "property_one_token",
    "round_robin_properties",
]


def round_robin_template(size: int) -> ProcessTemplate:
    """The per-process template: ``idle`` → ``critical`` when holding the token, then pass it on.

    The guard reads the shared token position; the update moves the token to
    the right neighbour on the ring ``1..size``.
    """

    def holds_token(shared, index, _locals) -> bool:
        return shared == index

    def pass_token(shared, index, _locals):
        return index % size + 1

    return ProcessTemplate(
        name="round-robin",
        states=["idle", "critical"],
        initial_state="idle",
        labels={"idle": set(), "critical": {"c"}},
        transitions=[
            LocalTransition("idle", "critical", action="enter", guard=holds_token),
            LocalTransition("critical", "idle", action="leave", update=pass_token),
        ],
    )


def round_robin_composition(size: int) -> SharedVariableComposition:
    """The lazy composition of ``size`` round-robin processes (token initially at process 1)."""
    if size < 1:
        raise ValueError("the scheduler needs at least one process")

    def shared_labeler(shared):
        return {IndexedProp("t", shared)}

    return SharedVariableComposition(
        round_robin_template(size),
        size=size,
        shared_initial=1,
        shared_labeler=shared_labeler,
        name="round_robin(%d)" % size,
    )


def build_round_robin(size: int) -> IndexedKripkeStructure:
    """Build the explicit global state graph of the ``size``-process scheduler."""
    return round_robin_composition(size).build()


def round_robin_index_relation(size: int) -> IndexRelation:
    """The ``IN`` relation used to transfer results from the 2-process to the ``size``-process scheduler."""
    return IndexRelation.pivot(range(1, 3), range(1, size + 1), pivot=1)


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------


def property_token_leads_to_critical() -> Formula:
    """``∧_i AG(t_i ⇒ AF c_i)``: the token holder eventually enters its critical region."""
    return index_forall("i", AG(implies(iatom("t", "i"), AF(iatom("c", "i")))))


def property_always_eventually_critical() -> Formula:
    """``∧_i AG AF c_i``: every process is critical infinitely often."""
    return index_forall("i", AG(AF(iatom("c", "i"))))


def property_critical_implies_token() -> Formula:
    """``∧_i AG(c_i ⇒ t_i)``: only the token holder is ever critical."""
    return index_forall("i", AG(implies(iatom("c", "i"), iatom("t", "i"))))


def property_one_token() -> Formula:
    """``AG Θ_i t_i``: exactly one process holds the token."""
    return AG(exactly_one("t"))


def round_robin_properties() -> Dict[str, Formula]:
    """All round-robin properties, keyed by a short name."""
    return {
        "token_leads_to_critical": property_token_leads_to_critical(),
        "always_eventually_critical": property_always_eventually_critical(),
        "critical_implies_token": property_critical_implies_token(),
        "one_token": property_one_token(),
    }
