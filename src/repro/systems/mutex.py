"""A lock-based mutual-exclusion protocol: the fourth identical-process family.

Each of ``n`` identical processes cycles through three local situations —
*idle* (``n_i``, reusing the ring's "neutral" proposition name), *requesting*
(``r_i``) and *critical* (``c_i``) — and the processes share one **lock
bit**:

1. *request*: an idle process starts requesting (lock untouched);
2. *acquire*: a requesting process enters its critical region **iff the lock
   is clear**, setting it (test-and-set);
3. *release*: a critical process returns to idle, clearing the lock.

Unlike the Section 5 token ring there is no ordering discipline, so the
protocol has genuinely different reachable-state structure (any subset of
processes may be requesting) while remaining a family of identical
finite-state processes in the paper's sense — the scenario-diversity family
motivated by the per-round transition structure of consensus-layer protocols
in the related work.

``buggy=True`` seeds the classic test-and-set race: the *acquire* rule stops
checking the lock (it still sets it).  Two requesting processes can then
enter their critical regions back to back, violating the mutual-exclusion
safety property ``AG ¬(c_i ∧ c_j)`` four transitions from the initial state
— a shallow bug tailor-made for SAT-based bounded model checking
(``engine="bmc"``), which finds it without ever constructing the reachable
state space.

Three encodings are provided, mirroring the token ring:

* :func:`build_mutex` — the explicit global state graph (an
  :class:`~repro.kripke.indexed.IndexedKripkeStructure`) for the naive and
  bitset engines;
* :func:`symbolic_mutex` — the direct BDD encoding (two state bits per
  process plus the shared lock bit), for the symbolic engine and, with
  ``domain="free"``, for both SAT engines (the CNF unrolling of the
  bounded model checker and the IC3/PDR frames);
* the CNF form is *derived*: :mod:`repro.mc.bmc` and :mod:`repro.mc.ic3`
  Tseitin-encode the symbolic encoding's clustered relation parts, so the
  very same stable variable ids feed all five engines.

The safety and liveness formulas (:func:`mutex_safety`,
:func:`mutex_liveness`) and the scheduler fairness constraint
(:func:`mutex_scheduler_fairness`) are cross-checked across every engine by
the test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import StructureError
from repro.kripke.indexed import IndexedKripkeStructure
from repro.kripke.structure import IndexedProp
from repro.logic.ast import Formula
from repro.logic.builders import AF, AG, iatom, index_forall, land, lnot, lor
from repro.mc.fairness import FairnessConstraint

__all__ = [
    "MutexState",
    "mutex_initial_state",
    "mutex_successors",
    "mutex_state_label",
    "build_mutex",
    "symbolic_mutex",
    "mutex_safety",
    "mutex_liveness",
    "mutex_scheduler_fairness",
    "mutex_properties",
]

#: The local-part alphabet; two bits per process in the symbolic encoding.
_PARTS = ("I", "R", "C")

#: The shared-lock proposition (a plain, non-indexed atom).
LOCK_PROP = "lock"


@dataclass(frozen=True)
class MutexState:
    """A global state: per-process local parts (1-indexed) plus the lock bit."""

    parts: Tuple[str, ...]
    lock: bool

    def part_of(self, index: int) -> str:
        """The local part (``"I"``, ``"R"`` or ``"C"``) of process ``index``."""
        return self.parts[index - 1]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Mutex(%s lock=%d)" % ("".join(self.parts), int(self.lock))


def mutex_initial_state(size: int) -> MutexState:
    """Every process idle, the lock clear."""
    if size < 1:
        raise StructureError("the mutex protocol needs at least one process")
    return MutexState(parts=("I",) * size, lock=False)


def _with_part(state: MutexState, index: int, part: str, lock: bool) -> MutexState:
    parts = list(state.parts)
    parts[index - 1] = part
    return MutexState(parts=tuple(parts), lock=lock)


def mutex_successors(state: MutexState, buggy: bool = False) -> List[MutexState]:
    """The successors under the request / acquire / release rules.

    With ``buggy=True`` the acquire rule ignores the lock (the seeded
    test-and-set race).
    """
    successors: List[MutexState] = []
    for index in range(1, len(state.parts) + 1):
        part = state.part_of(index)
        if part == "I":
            successors.append(_with_part(state, index, "R", state.lock))
        elif part == "R" and (buggy or not state.lock):
            successors.append(_with_part(state, index, "C", True))
        elif part == "C":
            successors.append(_with_part(state, index, "I", False))
    return successors


def mutex_state_label(state: MutexState):
    """``n_i`` / ``r_i`` / ``c_i`` per process, plus the plain ``lock`` atom."""
    label = set()
    for index, part in enumerate(state.parts, start=1):
        if part == "I":
            label.add(IndexedProp("n", index))
        elif part == "R":
            label.add(IndexedProp("r", index))
        else:
            label.add(IndexedProp("c", index))
    if state.lock:
        label.add(LOCK_PROP)
    return frozenset(label)


def build_mutex(
    size: int, buggy: bool = False, max_states: Optional[int] = None
) -> IndexedKripkeStructure:
    """Build the explicit global state graph, restricted to reachable states."""
    start = mutex_initial_state(size)
    states = {start}
    transitions: Dict[MutexState, List[MutexState]] = {}
    frontier = [start]
    while frontier:
        current = frontier.pop()
        successors = mutex_successors(current, buggy=buggy)
        transitions[current] = successors
        for successor in successors:
            if successor not in states:
                states.add(successor)
                frontier.append(successor)
                if max_states is not None and len(states) > max_states:
                    raise StructureError(
                        "mutex exploration exceeded max_states=%d" % max_states
                    )
    labeling = {state: mutex_state_label(state) for state in states}
    return IndexedKripkeStructure(
        states,
        transitions,
        labeling,
        start,
        index_values=range(1, size + 1),
        indexed_prop_names={"n", "r", "c"},
        name="mutex(%d%s)" % (size, ", buggy" if buggy else ""),
    )


def symbolic_mutex(size: int, buggy: bool = False, domain: str = "reachable"):
    """Encode the protocol directly as binary decision diagrams.

    Two state bits per process (its part) plus one extra bit pair for the
    shared lock, appended after the process blocks; the three rules become
    one relation part each.  As with
    :func:`~repro.systems.token_ring.symbolic_token_ring`,
    ``domain="reachable"`` (the default) restricts the state set by a
    symbolic reachability fixpoint, while ``domain="free"`` skips it — the
    mode the bounded model checker unrolls.
    """
    if size < 1:
        raise StructureError("the mutex protocol needs at least one process")
    if domain not in ("reachable", "free"):
        raise StructureError("domain must be 'reachable' or 'free', got %r" % (domain,))
    from repro.bdd import BDDManager
    from repro.kripke.symbolic import ProcessFamilyEncoding, SymbolicKripkeStructure

    manager = BDDManager()
    indices = tuple(range(1, size + 1))
    encoding = ProcessFamilyEncoding(manager, indices, _PARTS)
    land_, lor_, neg = manager.apply_and, manager.apply_or, manager.negate

    lock_bit = encoding.num_bits  # state-bit index of the shared lock
    lock_now = manager.var(2 * lock_bit)
    lock_next = manager.var(2 * lock_bit + 1)
    lock_unchanged = manager.apply("iff", lock_now, lock_next)

    parts: List[object] = []

    # Rule 1 — request: I -> R, lock untouched.
    rule1 = 0
    for process in indices:
        rule1 = lor_(
            rule1,
            land_(
                land_(encoding.current(process, "I"), encoding.next(process, "R")),
                encoding.frame([process]),
            ),
        )
    parts.append((rule1, lock_unchanged))

    # Rule 2 — acquire: R -> C sets the lock; the guard ¬lock is the
    # test-and-set check the seeded bug removes.
    rule2 = 0
    for process in indices:
        rule2 = lor_(
            rule2,
            land_(
                land_(encoding.current(process, "R"), encoding.next(process, "C")),
                encoding.frame([process]),
            ),
        )
    acquire_guard = lock_next if buggy else land_(neg(lock_now), lock_next)
    parts.append((rule2, acquire_guard))

    # Rule 3 — release: C -> I clears the lock.
    rule3 = 0
    for process in indices:
        rule3 = lor_(
            rule3,
            land_(
                land_(encoding.current(process, "C"), encoding.next(process, "I")),
                encoding.frame([process]),
            ),
        )
    parts.append((rule3, neg(lock_next)))

    prop_nodes = {}
    for process in indices:
        prop_nodes[IndexedProp("n", process)] = encoding.current(process, "I")
        prop_nodes[IndexedProp("r", process)] = encoding.current(process, "R")
        prop_nodes[IndexedProp("c", process)] = encoding.current(process, "C")
    prop_nodes[LOCK_PROP] = lock_now

    initial = land_(
        encoding.state_cube({process: "I" for process in indices}), neg(lock_now)
    )

    def decode_assignment(model) -> MutexState:
        decoded = encoding.decode(model)
        return MutexState(
            parts=tuple(decoded[process] for process in indices),
            lock=bool(model.get(2 * lock_bit, False)),
        )

    def encode_assignment(state: MutexState):
        model = encoding.encode(
            {process: state.part_of(process) for process in indices}
        )
        model[2 * lock_bit] = state.lock
        return model

    return SymbolicKripkeStructure(
        manager,
        encoding.num_bits + 1,
        parts,
        initial,
        None if domain == "reachable" else 1,
        prop_nodes,
        index_values=frozenset(indices),
        encode_assignment=encode_assignment,
        decode_assignment=decode_assignment,
        name="mutex(%d, symbolic%s%s)" % (
            size,
            ", buggy" if buggy else "",
            ", free domain" if domain == "free" else "",
        ),
    )


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------


def mutex_safety(size: int) -> Formula:
    """Mutual exclusion: ``AG ∧_{i<j} ¬(c_i ∧ c_j)``.

    The pairwise conjunction is written out over concrete indices (the
    Section 4 restrictions forbid nested index quantifiers), keeping the
    body propositional — exactly the BMC invariant fragment.
    """
    if size < 1:
        raise StructureError("the mutex protocol needs at least one process")
    pairs = [
        lnot(land(iatom("c", left), iatom("c", right)))
        for left in range(1, size + 1)
        for right in range(left + 1, size + 1)
    ]
    return AG(land(*pairs)) if pairs else AG(lnot(land(iatom("c", 1), iatom("c", 1))))


def mutex_liveness() -> Formula:
    """``∧_i AF c_i`` — every process eventually enters its critical region.

    False in plain CTL (an all-idle loop never goes critical); true under
    :func:`mutex_scheduler_fairness`.
    """
    return index_forall("i", AF(iatom("c", "i")))


def mutex_scheduler_fairness(size: int) -> FairnessConstraint:
    """Two fairness conditions per process: infinitely often ``r_i ∨ c_i`` *and* ``n_i ∨ c_i``.

    A fair path can neither park process ``i`` in idle forever (the first
    condition fails) nor in requesting forever (the second fails); since
    requesting only exits into the critical region, every process enters its
    critical region infinitely often on every fair path — which is what
    makes :func:`mutex_liveness` hold.
    """
    if size < 1:
        raise StructureError("the mutex protocol needs at least one process")
    conditions = []
    for process in range(1, size + 1):
        conditions.append(lor(iatom("r", process), iatom("c", process)))
        conditions.append(lor(iatom("n", process), iatom("c", process)))
    return FairnessConstraint(
        conditions=tuple(conditions),
        name="scheduler fairness ((r_i | c_i) & (n_i | c_i) per process) for mutex(%d)"
        % size,
    )


def mutex_properties(size: int) -> Dict[str, Formula]:
    """The mutex property family, keyed by a short name."""
    return {
        "mutual_exclusion": mutex_safety(size),
        "eventual_entry": mutex_liveness(),
    }
