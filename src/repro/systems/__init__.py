"""Concrete identical-process systems: the Section 5 token ring, the paper's figures, and two extra families."""

from repro.systems import barrier, figures, round_robin, token_ring

__all__ = ["token_ring", "figures", "round_robin", "barrier"]
