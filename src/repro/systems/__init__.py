"""Concrete identical-process systems: the Section 5 token ring, the paper's figures, and three extra families."""

from repro.systems import barrier, figures, mutex, round_robin, token_ring

__all__ = ["token_ring", "figures", "round_robin", "barrier", "mutex"]
