"""The small illustrative examples of Figs. 3.1 and 4.1 and the next-time counting example.

* **Fig. 3.1** illustrates corresponding structures: a two-state loop and a
  four-state loop that stutter on the same labelling.  In the paper's
  narrative one pair of states "exactly matches" (degree 0) while another
  needs two transitions to reach an exact match (degree 2).
* **Fig. 4.1** is the program used to show that *unrestricted* nesting of
  index quantifiers can count processes: each process starts with ``A`` true
  and can switch permanently to ``B``; the nested formula
  ``∨_{i1}(A_{i1} ∧ EF(B_{i1} ∧ ∨_{i2}(A_{i2} ∧ EF(B_{i2} ∧ …))))`` with ``m``
  levels holds exactly when the network has at least ``m`` processes.
* The **next-time counting** example from Section 2: on a ring in which the
  token moves one position per global transition, ``AG(t_1 ⇒ XXX t_1)``
  counts the ring size — the reason the paper's CTL* omits ``X``.
"""

from __future__ import annotations

from typing import Tuple

from repro.kripke.indexed import IndexedKripkeStructure
from repro.kripke.structure import IndexedProp, KripkeStructure
from repro.logic.ast import Formula
from repro.logic.builders import AG, EF, X, iatom, implies, index_exists, land
from repro.network.free_product import free_product
from repro.network.process import LocalTransition, ProcessTemplate

__all__ = [
    "fig31_left_structure",
    "fig31_right_structure",
    "fig31_structures",
    "fig41_template",
    "fig41_network",
    "fig41_counting_formula",
    "circulating_token_ring",
    "nexttime_counting_formula",
]


# ---------------------------------------------------------------------------
# Fig. 3.1 — corresponding structures
# ---------------------------------------------------------------------------


def fig31_left_structure() -> KripkeStructure:
    """The small structure of Fig. 3.1: a two-state loop alternating labels ``{p}`` and ``{q}``."""
    return KripkeStructure(
        states=["s1", "s2"],
        transitions=[("s1", "s2"), ("s2", "s1")],
        labeling={"s1": {"p"}, "s2": {"q"}},
        initial_state="s1",
        name="fig31-left",
    )


def fig31_right_structure() -> KripkeStructure:
    """The large structure of Fig. 3.1: the same behaviour with the ``{p}`` phase stuttered three times.

    State ``s1''`` (the last ``{p}`` state before the label changes) exactly
    matches the left structure's ``s1``; the first ``{p}`` state ``s1'`` needs
    two transitions before an exact match is reached, so it corresponds to
    ``s1`` with degree 2.
    """
    return KripkeStructure(
        states=["s1'", "s1''", "s1'''", "s2'"],
        transitions=[("s1'", "s1''"), ("s1''", "s1'''"), ("s1'''", "s2'"), ("s2'", "s1'")],
        labeling={"s1'": {"p"}, "s1''": {"p"}, "s1'''": {"p"}, "s2'": {"q"}},
        initial_state="s1'",
        name="fig31-right",
    )


def fig31_structures() -> Tuple[KripkeStructure, KripkeStructure]:
    """Both Fig. 3.1 structures, left (small) first."""
    return fig31_left_structure(), fig31_right_structure()


# ---------------------------------------------------------------------------
# Fig. 4.1 — the counting program
# ---------------------------------------------------------------------------


def fig41_template() -> ProcessTemplate:
    """The Fig. 4.1 process: starts with ``A`` true, may switch permanently to ``B``."""
    return ProcessTemplate(
        name="fig41",
        states=["start", "done"],
        initial_state="start",
        labels={"start": {"A"}, "done": {"B"}},
        transitions=[LocalTransition("start", "done", action="switch")],
    )


def fig41_network(size: int) -> IndexedKripkeStructure:
    """The free product of ``size`` Fig. 4.1 processes (they do not interact)."""
    return free_product(fig41_template(), size, name="fig41(%d)" % size)


def fig41_counting_formula(depth: int) -> Formula:
    """The nested counting formula with ``depth`` levels of ``∨_i``.

    ``depth = 1`` gives ``∨_i (A_i ∧ EF B_i)``; each further level nests
    another quantifier inside the ``EF``.  Because a process that has switched
    to ``B`` never satisfies ``A`` again, each level must pick a *different*
    process, so the formula sets a lower bound of ``depth`` on the number of
    processes.  The formula deliberately violates the ICTL* restrictions
    (nested quantifiers, quantifiers inside ``EF``); evaluate it with
    ``enforce_restrictions=False``.
    """
    if depth < 1:
        raise ValueError("depth must be at least 1")
    formula: Formula | None = None
    for level in range(depth, 0, -1):
        variable = "i%d" % level
        a_i = iatom("A", variable)
        b_i = iatom("B", variable)
        body = b_i if formula is None else land(b_i, formula)
        formula = index_exists(variable, land(a_i, EF(body)))
    assert formula is not None
    return formula


# ---------------------------------------------------------------------------
# Section 2 — the next-time counting example
# ---------------------------------------------------------------------------


def circulating_token_ring(size: int) -> IndexedKripkeStructure:
    """A ring in which the token moves one position to the right per global transition.

    The structure has exactly ``size`` global states (one per token position)
    arranged in a cycle and is labelled with ``t_i`` for the current holder.
    It is the minimal model of the Section 2 remark that the next-time
    operator can count processes.
    """
    if size < 1:
        raise ValueError("the ring needs at least one process")
    states = list(range(1, size + 1))
    transitions = [(holder, holder % size + 1) for holder in states]
    labeling = {holder: {IndexedProp("t", holder)} for holder in states}
    return IndexedKripkeStructure(
        states,
        transitions,
        labeling,
        initial_state=1,
        index_values=states,
        indexed_prop_names={"t"},
        name="circulating(%d)" % size,
    )


def nexttime_counting_formula(steps: int = 3) -> Formula:
    """``AG(t_1 ⇒ X…X t_1)`` with ``steps`` next-time operators.

    On :func:`circulating_token_ring` the formula holds precisely when the
    ring size divides ``steps`` — with the default three steps, only for rings
    of size 1 or 3 — which is why the paper's logic excludes ``X``.
    """
    target: Formula = iatom("t", 1)
    for _ in range(steps):
        target = X(target)
    return AG(implies(iatom("t", 1), target))
