"""A synchronisation-barrier family: the third identical-process application.

``n`` identical workers alternate between *working* and *waiting at a
barrier*.  Reaching the barrier is an individual step; leaving it is a single
broadcast step that releases every worker at once as soon as the last one has
arrived.  The broadcast is modelled with a :class:`GlobalRule` — a transition
in which several processes move simultaneously — which the Section 5 ring does
not need, so the family exercises a different corner of the composition
machinery.

The interesting properties are phrased in restricted ICTL* and hold for every
family size, which makes the barrier a natural second target for the
correspondence-based parameterized-verification workflow.
"""

from __future__ import annotations

from typing import Dict

from repro.kripke.indexed import IndexedKripkeStructure
from repro.logic.ast import Formula
from repro.logic.builders import AF, AG, AU, iatom, implies, index_forall
from repro.network.composition import GlobalRule, SharedVariableComposition
from repro.network.process import LocalTransition, ProcessTemplate
from repro.correspondence.indexed import IndexRelation

__all__ = [
    "barrier_template",
    "barrier_composition",
    "build_barrier",
    "barrier_index_relation",
    "property_barrier_released",
    "property_work_reaches_barrier",
    "property_waits_until_released",
    "barrier_properties",
]


def barrier_template() -> ProcessTemplate:
    """The per-worker template: ``working`` → ``waiting``; the release is a global rule."""
    return ProcessTemplate(
        name="barrier-worker",
        states=["working", "waiting"],
        initial_state="working",
        labels={"working": {"w"}, "waiting": {"b"}},
        transitions=[LocalTransition("working", "waiting", action="arrive")],
    )


def barrier_composition(size: int) -> SharedVariableComposition:
    """The lazy composition of ``size`` workers with the broadcast release rule."""
    if size < 1:
        raise ValueError("the barrier needs at least one worker")

    def all_waiting(_shared, locals_tuple) -> bool:
        return all(local == "waiting" for local in locals_tuple)

    def release(shared, locals_tuple):
        return shared, tuple("working" for _ in locals_tuple)

    rule = GlobalRule(name="release", guard=all_waiting, apply=release)
    return SharedVariableComposition(
        barrier_template(),
        size=size,
        shared_initial=None,
        global_rules=[rule],
        name="barrier(%d)" % size,
    )


def build_barrier(size: int) -> IndexedKripkeStructure:
    """Build the explicit global state graph of the ``size``-worker barrier."""
    return barrier_composition(size).build()


def barrier_index_relation(size: int) -> IndexRelation:
    """The ``IN`` relation used to transfer results from the 2-worker to the ``size``-worker barrier."""
    return IndexRelation.pivot(range(1, 3), range(1, size + 1), pivot=1)


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------


def property_barrier_released() -> Formula:
    """``∧_i AG(b_i ⇒ AF w_i)``: a waiting worker is eventually released."""
    return index_forall("i", AG(implies(iatom("b", "i"), AF(iatom("w", "i")))))


def property_work_reaches_barrier() -> Formula:
    """``∧_i AG(w_i ⇒ AF b_i)``: a working worker eventually reaches the barrier."""
    return index_forall("i", AG(implies(iatom("w", "i"), AF(iatom("b", "i")))))


def property_waits_until_released() -> Formula:
    """``∧_i AG(b_i ⇒ A[b_i U w_i])``: a waiting worker stays at the barrier until released."""
    b_i = iatom("b", "i")
    w_i = iatom("w", "i")
    return index_forall("i", AG(implies(b_i, AU(b_i, w_i))))


def barrier_properties() -> Dict[str, Formula]:
    """All barrier properties, keyed by a short name."""
    return {
        "barrier_released": property_barrier_released(),
        "work_reaches_barrier": property_work_reaches_barrier(),
        "waits_until_released": property_waits_until_released(),
    }
