"""Analysis helpers: state-explosion sweeps, timing, and the experiment drivers."""

from repro.analysis.explosion import (
    ExplosionPoint,
    sample_large_ring_correspondence,
    token_ring_explosion_sweep,
)
from repro.analysis.timing import Timed, timed_call
from repro.analysis import experiments

__all__ = [
    "ExplosionPoint",
    "token_ring_explosion_sweep",
    "sample_large_ring_correspondence",
    "Timed",
    "timed_call",
    "experiments",
]
