"""Analysis helpers: state-explosion sweeps, timing, and the experiment drivers."""

from repro.analysis.explosion import (
    ExplosionPoint,
    SymbolicExplosionPoint,
    sample_large_ring_correspondence,
    symbolic_token_ring_explosion_sweep,
    token_ring_explosion_sweep,
)
from repro.analysis.timing import Timed, timed_call
from repro.analysis import experiments

__all__ = [
    "ExplosionPoint",
    "SymbolicExplosionPoint",
    "token_ring_explosion_sweep",
    "symbolic_token_ring_explosion_sweep",
    "sample_large_ring_correspondence",
    "Timed",
    "timed_call",
    "experiments",
]
