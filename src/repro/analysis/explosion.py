"""State-explosion measurements (experiment E8).

The paper's motivation is that the number of global states grows exponentially
with the number of processes, so direct model checking of a large network is
infeasible — but checking a two-process instance plus a correspondence
argument is cheap.  The sweep here measures both sides of that comparison on
the token ring: explicit state counts and direct ICTL* checking time as ``r``
grows, versus the fixed cost of checking ``M_2``.

:func:`symbolic_token_ring_explosion_sweep` extends the experiment past the
explicit wall: the ring is encoded directly as BDDs
(:func:`repro.systems.token_ring.symbolic_token_ring`) and the properties are
checked by the symbolic engine, so sizes well beyond the explicit sweep's
range stay tractable.  Reachable-state counts come from BDD satisfy-count —
no state is ever enumerated.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.timing import timed_call
from repro.logic.ast import Formula
from repro.mc.indexed import ICTLStarModelChecker
from repro.mc.symbolic import SymbolicCTLModelChecker
from repro.systems import token_ring

__all__ = [
    "ExplosionPoint",
    "SymbolicExplosionPoint",
    "token_ring_explosion_sweep",
    "symbolic_token_ring_explosion_sweep",
    "sample_large_ring_correspondence",
]


@dataclass(frozen=True)
class ExplosionPoint:
    """One row of the state-explosion sweep."""

    size: int
    num_states: int
    num_transitions: int
    build_seconds: float
    check_seconds: float
    results: Dict[str, bool]


def token_ring_explosion_sweep(
    sizes: Sequence[int],
    formulas: Optional[Dict[str, Formula]] = None,
    engine: str = "bitset",
) -> List[ExplosionPoint]:
    """Build and directly model check the token ring for each size in ``sizes``.

    Returns one :class:`ExplosionPoint` per size, recording how the state
    space and the direct checking time grow with the number of processes.
    ``engine`` selects the explicit-state CTL engine; each structure is
    compiled once and the whole property family batch-checked against it.
    """
    checks = formulas if formulas is not None else token_ring.ring_properties()
    points: List[ExplosionPoint] = []
    for size in sizes:
        built = timed_call(token_ring.build_token_ring, size)
        structure = built.value
        checker = ICTLStarModelChecker(structure, engine=engine)
        checked = timed_call(checker.check_batch, checks)
        points.append(
            ExplosionPoint(
                size=size,
                num_states=structure.num_states,
                num_transitions=structure.num_transitions,
                build_seconds=built.seconds,
                check_seconds=checked.seconds,
                results=checked.value,
            )
        )
    return points


@dataclass(frozen=True)
class SymbolicExplosionPoint:
    """One row of the symbolic state-explosion sweep.

    ``num_states``/``num_transitions`` are exact counts obtained by BDD
    satisfy-count over the reachable set; ``bdd_nodes`` is the live node
    count of the ring's BDD manager after checking and ``peak_nodes`` the
    peak over the whole run — the actual memory footprint, which grows
    polynomially where the state counts explode.
    """

    size: int
    num_states: int
    num_transitions: int
    bdd_nodes: int
    peak_nodes: int
    build_seconds: float
    check_seconds: float
    results: Dict[str, bool]


def symbolic_token_ring_explosion_sweep(
    sizes: Sequence[int],
    formulas: Optional[Dict[str, Formula]] = None,
) -> List[SymbolicExplosionPoint]:
    """Check the token ring fully symbolically for each size in ``sizes``.

    The counterpart of :func:`token_ring_explosion_sweep` for the BDD engine:
    every structure is a direct symbolic encoding (the explicit global graph
    is never built) and the index quantifiers of the Section 5 properties are
    instantiated by the symbolic checker itself.  Sizes ≥ 10 — beyond what
    the explicit engines can reach in reasonable time — are the intended use.
    """
    checks = formulas if formulas is not None else token_ring.ring_properties()
    points: List[SymbolicExplosionPoint] = []
    for size in sizes:
        built = timed_call(token_ring.symbolic_token_ring, size)
        structure = built.value
        checker = SymbolicCTLModelChecker(structure)
        checked = timed_call(checker.check_batch, checks)
        stats = structure.manager.stats()
        points.append(
            SymbolicExplosionPoint(
                size=size,
                num_states=structure.num_states,
                num_transitions=structure.num_transitions,
                bdd_nodes=stats.live_nodes,
                peak_nodes=stats.peak_live_nodes,
                build_seconds=built.seconds,
                check_seconds=checked.seconds,
                results=checked.value,
            )
        )
    return points


def sample_large_ring_correspondence(
    large_size: int,
    num_walks: int = 20,
    walk_length: int = 40,
    seed: int = 0,
) -> Dict[str, int]:
    """Spot-check the Section 5 correspondence clauses on a ring too large to build.

    The global state graph of the ``large_size``-process ring is never
    constructed.  Instead the sweep performs random walks from the initial
    state using the on-the-fly successor function, and for every visited state
    ``s'`` checks the *local* Section 5 conditions against the two-process
    ring: process 1 of ``M_2`` is in the same part as process 1 of ``s'`` for
    some reachable ``M_2`` state (the pairing exists), and the rank formula of
    the appendix yields a finite degree.  This mirrors how the paper argues
    about ``r = 1000`` — the correspondence is justified per state by local
    invariants, never by enumerating the global graph.

    Returns counters: states visited, states with a valid pairing, states
    where the partition invariant held.
    """
    rng = random.Random(seed)
    small = token_ring.build_token_ring(2)
    visited = 0
    paired = 0
    partitioned = 0
    indices = set(range(1, large_size + 1))

    for _ in range(num_walks):
        state = token_ring.initial_state(large_size)
        for _ in range(walk_length):
            visited += 1
            union = (
                state.delayed | state.neutral | state.token_neutral | state.critical
            )
            if union == indices and not state.other:
                partitioned += 1
            if any(
                token_ring.section5_pair_corresponds(small_state, 1, state, 1)
                for small_state in small.states
            ):
                paired += 1
            successors = token_ring.ring_successors(state, large_size)
            if not successors:
                break
            state = rng.choice(successors)
    return {"visited": visited, "paired": paired, "partition_ok": partitioned}
