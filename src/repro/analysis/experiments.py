"""Experiment drivers: one function per figure/claim reproduced from the paper.

Each ``run_*`` function regenerates one experiment of the per-experiment index
in ``DESIGN.md`` and returns a plain dictionary so that the benchmarks, the
examples, and ``EXPERIMENTS.md`` all report exactly the same numbers.

Experiments
-----------
=====  ======================================================================
E1     Fig. 3.1 — corresponding structures and their degrees
E2     Fig. 4.1 — the counting formula and why the ICTL* restrictions exist
E3     Section 2 — next-time counting (``AG(t_1 ⇒ XXX t_1)``)
E4     Fig. 5.1 — the two-process mutual-exclusion global state graph
E5     Section 5 — the three invariants, swept over ring sizes
E6     Section 5 — the four properties, swept over ring sizes
E7     Section 5 / Appendix — the correspondence between rings
E8     Section 1/5 — state explosion vs. correspondence-based verification
E9     Section 6 — the k-nesting conjecture on free products
E10    Section 3 — scaling of the correspondence decision algorithm
E11    Section 5 — liveness under fairness (``AF t_i`` on fair vs. unfair rings)
E12    BMC vs. BDD — falsification race on seeded-bug rings (SAT engine)
E13    IC3 vs. BDD vs. k-induction — time-to-*proof* race on safe families
=====  ======================================================================
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.analysis.explosion import (
    sample_large_ring_correspondence,
    symbolic_token_ring_explosion_sweep,
    token_ring_explosion_sweep,
)
from repro.analysis.timing import timed_call
from repro.errors import ModelCheckingError
from repro.correspondence import (
    ParameterizedVerifier,
    correspondence_violations,
    find_correspondence,
    verify_index_relation,
)
from repro.kripke import reduce_to_index, structure_stats
from repro.kripke.paths import is_lasso
from repro.kripke.structure import IndexedProp
from repro.logic import index_nesting_depth
from repro.logic.builders import AF, iatom
from repro.mc import (
    CTLStarModelChecker,
    ICTLStarModelChecker,
    SymbolicCTLModelChecker,
    counterexample_af,
    crosscheck_ctl_engines,
)
from repro.systems import figures, token_ring

__all__ = [
    "run_e1_fig31",
    "run_e2_fig41",
    "run_e3_nexttime",
    "run_e4_fig51",
    "run_e5_invariants",
    "run_e6_properties",
    "run_e7_correspondence",
    "run_e8_explosion",
    "run_e9_conjecture",
    "run_e10_scaling",
    "run_e11_fairness",
    "run_e12_bmc",
    "run_e13_ic3",
    "run_all",
]


# ---------------------------------------------------------------------------
# E1 — Fig. 3.1
# ---------------------------------------------------------------------------


def run_e1_fig31() -> Dict:
    """Reproduce Fig. 3.1: the two structures correspond with the degrees the paper describes."""
    left, right = figures.fig31_structures()
    relation = find_correspondence(left, right)
    formulas = {
        "AG(p | q)": "A G (p | q)",
        "AG(p -> A(p U q))": "A G (p -> A(p U q))",
        "EF q": "E F q",
        "AG AF p": "A G A F p",
        "E(G F q)": "E G F q",
    }
    from repro.logic import parse

    agreement = {}
    left_checker = CTLStarModelChecker(left)
    right_checker = CTLStarModelChecker(right)
    for name, text in formulas.items():
        formula = parse(text)
        agreement[name] = {
            "left": left_checker.check(formula),
            "right": right_checker.check(formula),
        }
    return {
        "corresponds": relation is not None,
        "degree_exact_match": relation.degree_or_none("s1", "s1'''") if relation else None,
        "degree_two_steps": relation.degree_or_none("s1", "s1'") if relation else None,
        "num_pairs": len(relation) if relation else 0,
        "formula_agreement": agreement,
        "all_agree": all(row["left"] == row["right"] for row in agreement.values()),
    }


# ---------------------------------------------------------------------------
# E2 — Fig. 4.1
# ---------------------------------------------------------------------------


def run_e2_fig41(max_size: int = 5) -> Dict:
    """Reproduce Fig. 4.1: the nested counting formula holds iff the network has ≥ depth processes."""
    from repro.logic.syntax import restriction_violations

    table: Dict[int, Dict[int, bool]] = {}
    for size in range(1, max_size + 1):
        network = figures.fig41_network(size)
        checker = ICTLStarModelChecker(network, enforce_restrictions=False)
        table[size] = {
            depth: checker.check(figures.fig41_counting_formula(depth))
            for depth in range(1, max_size + 1)
        }
    restricted_ok = not restriction_violations(figures.fig41_counting_formula(1))
    nested_rejected = bool(restriction_violations(figures.fig41_counting_formula(2)))
    counting_matches = all(
        table[size][depth] == (size >= depth)
        for size in table
        for depth in table[size]
    )
    return {
        "holds": table,
        "counting_matches_size": counting_matches,
        "depth1_is_restricted": restricted_ok,
        "nested_formula_rejected_by_restrictions": nested_rejected,
    }


# ---------------------------------------------------------------------------
# E3 — the next-time counting example
# ---------------------------------------------------------------------------


def run_e3_nexttime(sizes: Sequence[int] = (1, 2, 3, 4, 5, 6)) -> Dict:
    """Reproduce the Section 2 remark: ``AG(t_1 ⇒ XXX t_1)`` counts the ring size."""
    formula = figures.nexttime_counting_formula(3)
    outcome = {}
    for size in sizes:
        ring = figures.circulating_token_ring(size)
        checker = ICTLStarModelChecker(ring, enforce_restrictions=False)
        outcome[size] = checker.check(formula)
    return {
        "holds": outcome,
        "holds_only_when_size_divides_3": all(
            value == (3 % size == 0) for size, value in outcome.items()
        ),
    }


# ---------------------------------------------------------------------------
# E4 — Fig. 5.1
# ---------------------------------------------------------------------------


def run_e4_fig51() -> Dict:
    """Reproduce Fig. 5.1: the two-process ring has the expected global state graph."""
    structure = token_ring.build_token_ring(2)
    stats = structure_stats(structure)
    initial = structure.initial_state
    return {
        "num_states": stats.num_states,
        "num_transitions": stats.num_transitions,
        "is_total": stats.is_total,
        "initial_state": repr(initial),
        "initial_out_degree": len(structure.successors(initial)),
        "partition_invariant": token_ring.partition_invariant_holds(structure),
    }


# ---------------------------------------------------------------------------
# E5 / E6 — invariants and properties across ring sizes
# ---------------------------------------------------------------------------


def run_e5_invariants(sizes: Sequence[int] = (2, 3, 4, 5), engine: str = "bitset") -> Dict:
    """Check the three Section 5 invariants directly on every ring size in ``sizes``."""
    rows = {}
    for size in sizes:
        structure = token_ring.build_token_ring(size)
        checker = ICTLStarModelChecker(structure, engine=engine)
        rows[size] = {"partition": token_ring.partition_invariant_holds(structure)}
        rows[size].update(checker.check_batch(token_ring.ring_invariants()))
    return {
        "rows": rows,
        "all_hold": all(all(row.values()) for row in rows.values()),
        "engine": engine,
    }


def run_e6_properties(sizes: Sequence[int] = (2, 3, 4, 5), engine: str = "bitset") -> Dict:
    """Check the four Section 5 properties directly on every ring size in ``sizes``."""
    rows = {}
    for size in sizes:
        structure = token_ring.build_token_ring(size)
        checker = ICTLStarModelChecker(structure, engine=engine)
        rows[size] = checker.check_batch(token_ring.ring_properties())
    return {
        "rows": rows,
        "all_hold": all(all(row.values()) for row in rows.values()),
        "engine": engine,
    }


# ---------------------------------------------------------------------------
# E7 — the correspondence between rings
# ---------------------------------------------------------------------------


def run_e7_correspondence(large_size: int = 4) -> Dict:
    """Reproduce the Section 5 / appendix correspondence claims.

    Three things are measured:

    * the paper's claim (``M_2`` corresponds to ``M_r``): refuted — the
      decision algorithm finds no correspondence and the explicit rank-based
      relation violates the definition; the distinguishing restricted ICTL*
      formula is evaluated on both rings to show *why* no correspondence can
      exist;
    * the corrected claim (``M_3`` corresponds to ``M_r`` for r ≥ 3): the
      decision algorithm establishes it for every pair of the corrected ``IN``
      relation;
    * the transfer workflow: the four properties are checked on the base ring
      and the verdicts transferred to the large ring, then cross-checked by
      direct model checking.
    """
    small2 = token_ring.build_token_ring(2)
    base = token_ring.build_token_ring(token_ring.RECOMMENDED_BASE_SIZE)
    large = token_ring.build_token_ring(large_size)

    # The paper's claim, as stated.
    paper_report = verify_index_relation(
        small2, large, token_ring.section5_index_relation(large_size)
    )
    explicit = token_ring.section5_correspondence(small2, large, 1, 1)
    explicit_violations = correspondence_violations(
        reduce_to_index(small2, 1), reduce_to_index(large, 1), explicit
    )
    phi = token_ring.distinguishing_formula()
    phi_small = ICTLStarModelChecker(small2).check(phi)
    phi_large = ICTLStarModelChecker(large).check(phi)

    # The corrected claim with the three-process base.
    corrected_report = verify_index_relation(
        base, large, token_ring.corrected_index_relation(token_ring.RECOMMENDED_BASE_SIZE, large_size)
    )

    # Transfer workflow from the base ring.
    verifier = ParameterizedVerifier(
        base, large, token_ring.corrected_index_relation(token_ring.RECOMMENDED_BASE_SIZE, large_size)
    )
    direct = ICTLStarModelChecker(large)
    transfers = {}
    for name, formula in token_ring.ring_properties().items():
        transferred = verifier.check(formula)
        transfers[name] = {
            "transferred": transferred.holds,
            "direct": direct.check(formula),
        }

    return {
        "paper_claim_m2_corresponds": paper_report.holds,
        "explicit_relation_violations": len(explicit_violations),
        "distinguishing_formula_on_m2": phi_small,
        "distinguishing_formula_on_large": phi_large,
        "corrected_claim_base3_corresponds": corrected_report.holds,
        "transfers_match_direct": all(
            row["transferred"] == row["direct"] for row in transfers.values()
        ),
        "transfers": transfers,
    }


# ---------------------------------------------------------------------------
# E8 — state explosion
# ---------------------------------------------------------------------------


def run_e8_explosion(
    sizes: Sequence[int] = (2, 3, 4, 5, 6),
    large_size: int = 1000,
    num_walks: int = 10,
    walk_length: int = 30,
    engine: str = "bitset",
    symbolic_sizes: Sequence[int] = (8, 10, 20),
) -> Dict:
    """Reproduce the state-explosion narrative (the "1000 processes" claim).

    Next to the explicit sweep, ``symbolic_sizes`` extends the experiment to
    ring sizes only the symbolic BDD engine can reach: the ring is encoded
    directly as decision diagrams, the four Section 5 properties are checked
    as BDD fixpoints, and the state counts come from satisfy-count rather
    than enumeration.  Since the PR-4 complement-edge core, ``r = 20``
    (twenty million reachable states) sits comfortably inside the default
    sweep.
    """
    sweep = token_ring_explosion_sweep(sizes, engine=engine)
    symbolic_sweep = symbolic_token_ring_explosion_sweep(symbolic_sizes)
    base = token_ring.build_token_ring(token_ring.RECOMMENDED_BASE_SIZE)

    def base_check() -> Dict[str, bool]:
        checker = ICTLStarModelChecker(base, engine=engine)
        return checker.check_batch(token_ring.ring_properties())

    base_time = timed_call(base_check)
    spot = sample_large_ring_correspondence(
        large_size, num_walks=num_walks, walk_length=walk_length
    )
    growth = [point.num_states for point in sweep]
    monotone_growth = all(later > earlier for earlier, later in zip(growth, growth[1:]))
    return {
        "sweep": [
            {
                "size": point.size,
                "states": point.num_states,
                "transitions": point.num_transitions,
                "build_seconds": point.build_seconds,
                "check_seconds": point.check_seconds,
            }
            for point in sweep
        ],
        "symbolic_sweep": [
            {
                "size": point.size,
                "states": point.num_states,
                "transitions": point.num_transitions,
                "bdd_nodes": point.bdd_nodes,
                "peak_nodes": point.peak_nodes,
                "build_seconds": point.build_seconds,
                "check_seconds": point.check_seconds,
                "all_hold": all(point.results.values()),
            }
            for point in symbolic_sweep
        ],
        "states_grow_monotonically": monotone_growth,
        "engine": engine,
        "base_size": token_ring.RECOMMENDED_BASE_SIZE,
        "base_check_seconds": base_time.seconds,
        "base_results": base_time.value,
        "large_ring_spot_check": spot,
    }


# ---------------------------------------------------------------------------
# E9 — the Section 6 conjecture
# ---------------------------------------------------------------------------


def run_e9_conjecture(max_size: int = 5, max_depth: int = 3) -> Dict:
    """Explore the Section 6 conjecture on free products.

    For formulas with at most ``k`` nested index quantifiers, the conjecture
    predicts ``M_n ⊨ f ⇔ M_k ⊨ f`` whenever ``n > k``.  The Fig. 4.1 counting
    formula family gives the tight witnesses: depth ``k`` distinguishes the
    ``k-1``- and ``k``-component products but nothing above ``k``.
    """
    rows: Dict[int, Dict[int, bool]] = {}
    for size in range(1, max_size + 1):
        network = figures.fig41_network(size)
        checker = ICTLStarModelChecker(network, enforce_restrictions=False)
        rows[size] = {}
        for depth in range(1, max_depth + 1):
            formula = figures.fig41_counting_formula(depth)
            assert index_nesting_depth(formula) == depth
            rows[size][depth] = checker.check(formula)
    conjecture_holds = all(
        rows[size][depth] == rows[depth][depth]
        for depth in range(1, max_depth + 1)
        for size in range(depth, max_size + 1)
    )
    return {"rows": rows, "conjecture_holds_on_family": conjecture_holds}


# ---------------------------------------------------------------------------
# E10 — decision-algorithm scaling
# ---------------------------------------------------------------------------


def run_e10_scaling(sizes: Sequence[int] = (3, 4, 5)) -> Dict:
    """Measure the correspondence decision algorithm on growing ring reductions."""
    base = token_ring.build_token_ring(token_ring.RECOMMENDED_BASE_SIZE)
    base_reduced = reduce_to_index(base, 1)
    rows = []
    for size in sizes:
        large = token_ring.build_token_ring(size)
        large_reduced = reduce_to_index(large, 1)
        timed = timed_call(find_correspondence, base_reduced, large_reduced)
        rows.append(
            {
                "size": size,
                "large_states": large.num_states,
                "pairs": len(timed.value) if timed.value else 0,
                "corresponds": timed.value is not None,
                "seconds": timed.seconds,
            }
        )
    return {"rows": rows}


# ---------------------------------------------------------------------------
# E11 — liveness under fairness
# ---------------------------------------------------------------------------


def run_e11_fairness(
    sizes: Sequence[int] = (2, 3, 4),
    symbolic_sizes: Sequence[int] = (10, 20),
    engine: str = "bitset",
) -> Dict:
    """E11 — the ``AF t_i`` liveness claims hold exactly under scheduler fairness.

    The Section 5 token-ring properties all carry a request premise
    (``d_i ⇒ …``) precisely because the unconditional claim "process ``i``
    eventually holds the token" is false in plain CTL: a path on which ``i``
    never requests is a counterexample.  This experiment measures the
    fairness-constrained semantics that repairs it:

    * on every explicit ring size the unfair check of ``∧_i AF t_i``
      correctly **fails** and the same check under
      :func:`~repro.systems.token_ring.ring_scheduler_fairness` **holds**,
      with all three engines replayed differentially on the per-process
      boundary instances (:func:`~repro.mc.oracle.crosscheck_ctl_engines`
      raises on any disagreement between the two SCC-restricted explicit
      fair-``EG`` fixpoints and the symbolic Emerson–Lei one);
    * on ``symbolic_sizes`` (beyond the explicit wall) the direct BDD
      encoding checks the same pair of verdicts;
    * the bitset engine extracts a counterexample lasso to the unfair claim
      (a real cycle on which the last process never holds the token),
      validated against the structure.
    """
    formula = token_ring.property_eventual_token()
    rows = {}
    engines_agree = True
    for size in sizes:
        structure = token_ring.build_token_ring(size)
        constraint = token_ring.ring_scheduler_fairness(size)
        unfair = ICTLStarModelChecker(structure, engine=engine).check(formula)
        fair = ICTLStarModelChecker(structure, engine=engine, fairness=constraint).check(
            formula
        )
        # Replaying the bdd engine on an explicit encoding dominates the cost,
        # so crosscheck the boundary processes (first and last) per size.
        try:
            for process in sorted({1, size}):
                crosscheck_ctl_engines(
                    structure, AF(iatom("t", process)), fairness=constraint
                )
        except ModelCheckingError:
            engines_agree = False
        rows[size] = {"unfair": unfair, "fair": fair}

    symbolic_rows = {}
    for size in symbolic_sizes:
        encoded = token_ring.symbolic_token_ring(size)
        constraint = token_ring.ring_scheduler_fairness(size)
        unfair = SymbolicCTLModelChecker(encoded).check(formula)
        fair = SymbolicCTLModelChecker(encoded, fairness=constraint).check(formula)
        symbolic_rows[size] = {"unfair": unfair, "fair": fair}

    # A concrete counterexample to the unfair claim, from the bitset engine.
    witness_size = min(sizes)
    witness_ring = token_ring.build_token_ring(witness_size)
    target = iatom("t", witness_size)
    lasso = counterexample_af(witness_ring, target, engine="bitset")
    lasso_valid = (
        lasso is not None
        and is_lasso(witness_ring, lasso)
        and all(
            IndexedProp("t", witness_size) not in witness_ring.label(state)
            for state in lasso.positions()
        )
    )

    return {
        "rows": rows,
        "symbolic_rows": symbolic_rows,
        "unfair_fails_everywhere": all(
            not row["unfair"] for row in list(rows.values()) + list(symbolic_rows.values())
        ),
        "fair_holds_everywhere": all(
            row["fair"] for row in list(rows.values()) + list(symbolic_rows.values())
        ),
        "engines_agree": engines_agree,
        "counterexample_size": witness_size,
        "counterexample_valid": lasso_valid,
        "engine": engine,
    }


# ---------------------------------------------------------------------------
# E12 — SAT-based bounded model checking vs. the BDD engine
# ---------------------------------------------------------------------------


def run_e12_bmc(
    sizes: Sequence[int] = (6, 8),
    oracle_size: int = 6,
    bound: int = 10,
) -> Dict:
    """E12 — BMC-vs-BDD falsification race on seeded-bug token rings.

    Each ring carries the seeded token-duplication bug
    (:func:`~repro.systems.token_ring.ring_successors` with ``buggy=True``),
    which breaks the one-token invariant ``AG Θ_i t_i`` two transitions from
    the initial state.  Per size, both engines falsify the invariant end to
    end — the BDD engine builds the reachable-domain encoding (paying the
    symbolic reachability fixpoint) and runs the ``EF`` fixpoint; the BMC
    engine builds the free-domain encoding (no fixpoint) and asks an
    incremental SAT solver one question per depth.  The point reproduced is
    the classic division of labour: BMC cost tracks the *bound* while BDD
    cost tracks the *reachable set*, so the shallow bug is exactly the
    BMC-shaped workload.

    At ``oracle_size`` the SAT counterexample is decoded into ring states
    and validated against the explicit buggy ring — it must be a genuine
    path from the initial state whose final state violates the invariant,
    of exactly the depth the bitset engine's BFS counterexample has (both
    are depth-minimal).
    """
    from repro.kripke.paths import is_path
    from repro.logic.builders import exactly_one
    from repro.mc import BoundedModelChecker, counterexample_ag

    formula = token_ring.invariant_one_token()
    rows = []
    for size in sizes:
        bdd_build = timed_call(token_ring.symbolic_token_ring, size, buggy=True)
        bdd_check = timed_call(
            SymbolicCTLModelChecker(bdd_build.value).check, formula
        )
        bmc_build = timed_call(
            token_ring.symbolic_token_ring, size, buggy=True, domain="free"
        )
        checker = BoundedModelChecker(bmc_build.value, bound=bound)
        bmc_check = timed_call(checker.check, formula)
        depth = (
            len(checker.last_counterexample) - 1
            if checker.last_counterexample is not None
            else None
        )
        rows.append(
            {
                "size": size,
                "bdd_verdict": bdd_check.value,
                "bdd_seconds": bdd_build.seconds + bdd_check.seconds,
                "bmc_verdict": bmc_check.value,
                "bmc_seconds": bmc_build.seconds + bmc_check.seconds,
                "counterexample_depth": depth,
                "sat": checker.stats(),
            }
        )

    # Decode-and-validate against the explicit buggy ring + the bitset oracle.
    explicit = token_ring.build_token_ring(oracle_size, buggy=True)
    free = token_ring.symbolic_token_ring(oracle_size, buggy=True, domain="free")
    oracle_checker = BoundedModelChecker(free, bound=bound)
    bmc_path = oracle_checker.invariant_counterexample(exactly_one("t"))
    bitset_path = counterexample_ag(explicit, exactly_one("t"), engine="bitset")
    path_valid = (
        bmc_path is not None
        and bmc_path[0] == explicit.initial_state
        and is_path(explicit, bmc_path)
        and not explicit.atom_holds(bmc_path[-1], exactly_one("t"))
    )
    return {
        "rows": rows,
        "bound": bound,
        "oracle_size": oracle_size,
        "bmc_found_everywhere": all(not row["bmc_verdict"] for row in rows),
        "bdd_agrees_everywhere": all(not row["bdd_verdict"] for row in rows),
        "counterexample_valid": path_valid,
        "bmc_depth_matches_bitset_oracle": (
            bmc_path is not None
            and bitset_path is not None
            and len(bmc_path) == len(bitset_path)
        ),
        "bmc_counterexample": [repr(state) for state in (bmc_path or [])],
    }


# ---------------------------------------------------------------------------
# E13 — IC3 vs. BDD vs. k-induction: the time-to-proof race
# ---------------------------------------------------------------------------


def run_e13_ic3(
    ring_size: int = 4,
    mutex_size: int = 4,
    counter_size: int = 12,
    kinduction_bound: int = 10,
    oracle_size: int = 3,
) -> Dict:
    """E13 — unbounded *proving*: IC3 vs. the BDD fixpoint vs. k-induction.

    E12 raced the engines on falsification; this experiment races them on
    **proof**, on three safe families chosen so each engine's
    characteristic failure mode shows once (see ``docs/ENGINES.md``):

    * ``ring(ring_size)`` with the pairwise mutual-exclusion property
      (:func:`~repro.systems.token_ring.ring_mutual_exclusion`): true but
      *not inductive* on the free bit-pattern domain, so k-induction at
      ``kinduction_bound`` comes back inconclusive while IC3 discovers the
      token-counting strengthening as a handful of blocked cubes;
    * ``mutex(mutex_size)`` with
      :func:`~repro.systems.mutex.mutex_safety`: provable by every engine
      — the calibration row;
    * ``counter(counter_size)`` (:mod:`repro.systems.counter`): the
      reachable state space is a single path of length ``2^n − 2``, so the
      BDD engine's reachability fixpoint needs that many image steps while
      both SAT provers finish immediately — the row where IC3 beats the
      BDD engine's time-to-proof outright.

    Every IC3 proof returns a certificate that the engine has already
    re-verified against the CNF transition relation by independent SAT
    queries (initiation, consecution, safety).  At ``oracle_size`` the IC3
    verdicts are additionally cross-checked against the explicit bitset
    engine, and the buggy-mutex counterexample is decoded and validated as
    a genuine path of the explicit structure.
    """
    from repro.errors import InconclusiveError
    from repro.kripke.paths import is_path
    from repro.mc import BoundedModelChecker, IC3ModelChecker, make_ctl_checker
    from repro.systems import counter, mutex

    def race(family, size, build_symbolic, build_free, formula, kinduction=True):
        free_build = timed_call(build_free, size)
        ic3 = IC3ModelChecker(free_build.value)
        ic3_check = timed_call(ic3.check, formula)
        bdd_build = timed_call(build_symbolic, size)
        bdd_check = timed_call(
            SymbolicCTLModelChecker(bdd_build.value).check, formula
        )
        row = {
            "family": family,
            "size": size,
            "ic3_verdict": ic3_check.value,
            "ic3_seconds": free_build.seconds + ic3_check.seconds,
            "ic3_detail": ic3.last_detail,
            "certificate_clauses": (
                ic3.certificate.num_clauses if ic3.certificate else None
            ),
            "bdd_verdict": bdd_check.value,
            "bdd_seconds": bdd_build.seconds + bdd_check.seconds,
            "ic3": {
                key: ic3.stats()[key]
                for key in ("frames", "cubes_blocked", "obligations", "relative_queries")
            },
        }
        if kinduction:
            kind_build = timed_call(build_free, size)
            kind = BoundedModelChecker(kind_build.value, bound=kinduction_bound)
            try:
                kind_check = timed_call(kind.check, formula)
                row["kinduction_verdict"] = kind_check.value
                row["kinduction_seconds"] = kind_build.seconds + kind_check.seconds
                row["kinduction_detail"] = kind.last_detail
            except InconclusiveError:
                row["kinduction_verdict"] = None
                row["kinduction_seconds"] = None
                row["kinduction_detail"] = (
                    "inconclusive at bound %d" % kinduction_bound
                )
        return row

    free = lambda build: (lambda size: build(size, domain="free"))
    rows = [
        race(
            "ring",
            ring_size,
            token_ring.symbolic_token_ring,
            free(token_ring.symbolic_token_ring),
            token_ring.ring_mutual_exclusion(ring_size),
        ),
        race(
            "mutex",
            mutex_size,
            mutex.symbolic_mutex,
            free(mutex.symbolic_mutex),
            mutex.mutex_safety(mutex_size),
        ),
        race(
            "counter",
            counter_size,
            counter.symbolic_counter,
            free(counter.symbolic_counter),
            counter.counter_nonzero(counter_size),
        ),
    ]
    by_family = {row["family"]: row for row in rows}

    # Oracle cross-checks at a small size: verdicts against the bitset
    # engine, and a decoded IC3 counterexample validated end to end.
    explicit = mutex.build_mutex(oracle_size)
    safety = mutex.mutex_safety(oracle_size)
    agree = IC3ModelChecker(explicit).check(safety) == make_ctl_checker(
        explicit, engine="bitset"
    ).check(safety)
    buggy = mutex.build_mutex(oracle_size, buggy=True)
    falsifier = IC3ModelChecker(buggy)
    refuted = not falsifier.check(safety)
    path = falsifier.last_counterexample
    path_valid = (
        refuted
        and path is not None
        and path[0] == buggy.initial_state
        and is_path(buggy, path)
    )
    return {
        "rows": rows,
        "kinduction_bound": kinduction_bound,
        "oracle_size": oracle_size,
        "ic3_proved_everywhere": all(
            row["ic3_verdict"] and row["ic3_detail"].startswith("ic3-invariant")
            for row in rows
        ),
        "bdd_agrees_everywhere": all(row["bdd_verdict"] for row in rows),
        "kinduction_inconclusive_on_ring": (
            by_family["ring"]["kinduction_verdict"] is None
        ),
        "ic3_beats_bdd_on_counter": (
            by_family["counter"]["ic3_seconds"] < by_family["counter"]["bdd_seconds"]
        ),
        "oracle_agrees": agree,
        "counterexample_valid": path_valid,
    }


# ---------------------------------------------------------------------------
# Everything at once
# ---------------------------------------------------------------------------


def run_all(quick: bool = True, engine: str = "bitset") -> Dict[str, Dict]:
    """Run every experiment; ``quick=True`` uses the smaller default parameters."""
    from repro.obs import metrics as _metrics
    from repro.obs.progress import heartbeat as _heartbeat
    from repro.obs.trace import span as _obs_span

    large_size = 4 if quick else 5
    runners = {
        "E1_fig31": lambda: run_e1_fig31(),
        "E2_fig41": lambda: run_e2_fig41(max_size=4 if quick else 5),
        "E3_nexttime": lambda: run_e3_nexttime(),
        "E4_fig51": lambda: run_e4_fig51(),
        "E5_invariants": lambda: run_e5_invariants(
            sizes=(2, 3, 4) if quick else (2, 3, 4, 5), engine=engine
        ),
        "E6_properties": lambda: run_e6_properties(
            sizes=(2, 3, 4) if quick else (2, 3, 4, 5), engine=engine
        ),
        "E7_correspondence": lambda: run_e7_correspondence(large_size=large_size),
        "E8_explosion": lambda: run_e8_explosion(
            sizes=(2, 3, 4) if quick else (2, 3, 4, 5, 6),
            engine=engine,
            symbolic_sizes=(6, 8) if quick else (10, 14, 20),
        ),
        "E9_conjecture": lambda: run_e9_conjecture(max_size=4 if quick else 5),
        "E10_scaling": lambda: run_e10_scaling(sizes=(3, 4) if quick else (3, 4, 5)),
        "E11_fairness": lambda: run_e11_fairness(
            sizes=(2, 3) if quick else (2, 4, 8),
            symbolic_sizes=(6,) if quick else (10, 20),
            engine=engine,
        ),
        "E12_bmc": lambda: run_e12_bmc(
            sizes=(4, 6) if quick else (6, 8, 12),
            oracle_size=4 if quick else 6,
        ),
        "E13_ic3": lambda: run_e13_ic3(
            ring_size=4 if quick else 5,
            mutex_size=4 if quick else 6,
            counter_size=10 if quick else 14,
            kinduction_bound=8 if quick else 12,
        ),
    }
    results: Dict[str, Dict] = {}
    for name, runner in runners.items():
        _heartbeat("experiments", force=True, experiment=name)
        with _obs_span("experiment", experiment=name, quick=quick, engine=engine):
            results[name] = runner()
        _metrics.counter("experiments.completed").inc()
    return results
