"""Small timing helpers shared by the experiment drivers and benchmarks."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

__all__ = ["Timed", "timed_call"]


@dataclass(frozen=True)
class Timed:
    """The result of a timed call: the returned value and the wall-clock seconds it took."""

    value: Any
    seconds: float


def timed_call(function: Callable[..., Any], *args: Any, **kwargs: Any) -> Timed:
    """Call ``function`` and measure the wall-clock time it takes."""
    start = time.perf_counter()
    value = function(*args, **kwargs)
    elapsed = time.perf_counter() - start
    return Timed(value=value, seconds=elapsed)
