"""Small timing helpers shared by the experiment drivers and benchmarks.

Timing is routed through the observability layer's span API
(:func:`repro.obs.trace.span`), so every ``timed_call`` shows up as a
``timed.<function>`` span in traces when tracing is enabled, and all
measurements use the monotonic :func:`time.perf_counter_ns` clock —
immune to NTP/wall-clock adjustments mid-run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.obs.trace import span as _span

__all__ = ["Timed", "timed_call"]


@dataclass(frozen=True)
class Timed:
    """The result of a timed call: the returned value and the monotonic seconds it took."""

    value: Any
    seconds: float


def timed_call(function: Callable[..., Any], *args: Any, **kwargs: Any) -> Timed:
    """Call ``function`` and measure the monotonic time it takes.

    When tracing is enabled the call is additionally recorded as a
    ``timed.<name>`` span (nested under whatever span is open).
    """
    label = getattr(function, "__name__", None) or "call"
    with _span("timed." + label):
        start = time.perf_counter_ns()
        value = function(*args, **kwargs)
        elapsed_ns = time.perf_counter_ns() - start
    return Timed(value=value, seconds=elapsed_ns / 1e9)
