"""Nested span tracing on the monotonic nanosecond clock.

A *span* is a named, attributed interval of wall-clock time measured
with :func:`time.perf_counter_ns` (monotonic, immune to NTP clock
adjustments).  Spans nest: the currently open span is tracked in a
:class:`contextvars.ContextVar`, so a span opened inside another span
records it as its parent, and exporters can rebuild the full call tree.

Tracing is **disabled by default** and the disabled path is a strict
no-op: :func:`span` performs one module-global load, one ``is None``
test, and returns a shared singleton whose ``__enter__``/``__exit__``
do nothing.  That is the entire cost instrumented hot paths pay, which
is what lets the fixpoint engines and the CDCL solver carry spans
without a measurable slowdown (guarded by
``benchmarks/test_bench_obs.py``).

Enable tracing with :func:`enable` (optionally passing sinks from
:mod:`repro.obs.sinks`) or the :func:`recording` context manager::

    with recording() as tracer:
        with span("mc.check", engine="bdd"):
            ...
    tracer.records[0].name  # "mc.check"

Span and attribute naming conventions are documented in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import contextlib
import itertools
import os
import time
import uuid
from contextvars import ContextVar
from typing import Any, Dict, Iterator, Optional, Sequence

__all__ = [
    "SpanRecord",
    "Tracer",
    "span",
    "event",
    "enable",
    "disable",
    "is_enabled",
    "get_tracer",
    "current_span",
    "clear_current_span",
    "monotonic_ns",
    "recording",
]


def monotonic_ns() -> int:
    """The obs-sanctioned monotonic clock read (:func:`time.perf_counter_ns`).

    The rest of the library is forbidden from reading wall clocks directly
    (lint rule R002 — see ``docs/CORRECTNESS.md``); code outside ``obs/``
    that needs a deadline or rate limit (the runtime's resource budgets,
    the worker supervisor) goes through this one function so every timing
    source in the process is the same monotonic clock the spans use.
    """
    return time.perf_counter_ns()

#: The currently open span (or ``None`` at top level).  A ContextVar so
#: that nesting survives generators/coroutines, not just call stacks.
_CURRENT: ContextVar[Optional["SpanRecord"]] = ContextVar(
    "repro_obs_current_span", default=None
)


class SpanRecord:
    """One traced interval: name, attributes, parentage, and timestamps.

    ``start_ns``/``end_ns`` are :func:`time.perf_counter_ns` readings;
    only differences between them are meaningful.  ``status`` is
    ``"ok"`` for a clean exit and ``"error:<ExceptionType>"`` when the
    span body raised (the exception always propagates — tracing never
    swallows errors).
    """

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "depth",
        "start_ns",
        "end_ns",
        "attrs",
        "status",
        "_tracer",
        "_token",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self.span_id = next(tracer._ids)
        self.parent_id: Optional[int] = None
        self.name = name
        self.depth = 0
        self.start_ns = 0
        self.end_ns: Optional[int] = None
        self.attrs = attrs
        self.status = "ok"
        self._token = None

    @property
    def duration_ns(self) -> int:
        """Nanoseconds from enter to exit (0 while still open)."""
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    @property
    def duration_s(self) -> float:
        """Seconds from enter to exit (0.0 while still open)."""
        return self.duration_ns / 1e9

    def set(self, **attrs: Any) -> "SpanRecord":
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "SpanRecord":
        parent = _CURRENT.get()
        if parent is not None:
            self.parent_id = parent.span_id
            self.depth = parent.depth + 1
        self._token = _CURRENT.set(self)
        self.start_ns = self._tracer._clock_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end_ns = self._tracer._clock_ns()
        if exc_type is not None:
            self.status = "error:%s" % exc_type.__name__
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        self._tracer._finish(self)
        return False  # never swallow the exception

    def as_dict(self) -> Dict[str, Any]:
        """A plain JSON-serialisable view (used by the JSONL sink).

        ``pid`` is resolved at call time, not at span creation — a span
        record serialised after a ``fork()`` must carry the process that
        exported it, which is what the cross-process collector keys on.
        """
        return {
            "kind": "span",
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "depth": self.depth,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "dur_ns": self.duration_ns,
            "status": self.status,
            "attrs": self.attrs,
            "pid": os.getpid(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SpanRecord(%r, id=%d, parent=%r, dur=%.6fs, attrs=%r)" % (
            self.name,
            self.span_id,
            self.parent_id,
            self.duration_s,
            self.attrs,
        )


class _NoopSpan:
    """The shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self


_NOOP = _NoopSpan()


class Tracer:
    """Collects finished spans and instant events, fanning out to sinks.

    ``keep_records`` (default true) keeps every finished span in
    :attr:`records` (and instant events in :attr:`events`) for
    programmatic use; sinks additionally receive each record as it
    finishes.  ``clock_ns`` is injectable for deterministic tests.
    """

    def __init__(
        self,
        sinks: Sequence[Any] = (),
        keep_records: bool = True,
        clock_ns=time.perf_counter_ns,
        trace_id: Optional[str] = None,
    ):
        self.sinks = list(sinks)
        self.keep_records = keep_records
        self.records: list = []
        self.events: list = []
        #: Identifies this tracer's id space across processes: a worker's
        #: telemetry is only re-parented into the tracer whose trace id it
        #: was captured against (see :mod:`repro.obs.collect`).
        self.trace_id = trace_id if trace_id is not None else uuid.uuid4().hex[:16]
        self._ids = itertools.count(1)
        self._clock_ns = clock_ns

    def span(self, name: str, attrs: Dict[str, Any]) -> SpanRecord:
        return SpanRecord(self, name, attrs)

    def event(self, name: str, attrs: Dict[str, Any]) -> Dict[str, Any]:
        parent = _CURRENT.get()
        record = {
            "kind": "event",
            "name": name,
            "ts_ns": self._clock_ns(),
            "parent_id": None if parent is None else parent.span_id,
            "attrs": attrs,
        }
        if self.keep_records:
            self.events.append(record)
        for sink in self.sinks:
            sink.on_event(record)
        return record

    def _finish(self, record: SpanRecord) -> None:
        if self.keep_records:
            self.records.append(record)
        for sink in self.sinks:
            sink.on_span(record)

    # -- cross-process ingestion -------------------------------------------
    def allocate_span_id(self) -> int:
        """Claim a fresh span id from this tracer's id space.

        The telemetry collector remaps worker-local span ids through this
        so re-parented remote spans can never collide with local ones.
        """
        return next(self._ids)

    def ingest(self, record: Any) -> None:
        """Adopt an already-finished foreign span (a worker's, re-parented).

        The record must quack like a finished :class:`SpanRecord` (name,
        span_id, parent_id, start_ns/end_ns, attrs, status); it is fanned
        out to the sinks exactly like a locally finished span.
        """
        if self.keep_records:
            self.records.append(record)
        for sink in self.sinks:
            sink.on_span(record)

    def ingest_event(self, record: Dict[str, Any]) -> None:
        """Adopt a foreign instant event (a worker heartbeat, say)."""
        if self.keep_records:
            self.events.append(record)
        for sink in self.sinks:
            sink.on_event(record)

    def close(self) -> None:
        """Flush and close every attached sink."""
        for sink in self.sinks:
            sink.close()

    # -- convenience views -------------------------------------------------
    def span_names(self) -> list:
        """The names of all finished spans, in completion order."""
        return [record.name for record in self.records]

    def find(self, name: str) -> list:
        """All finished spans with exactly this name."""
        return [record for record in self.records if record.name == name]


#: The installed tracer, or ``None`` while tracing is disabled.  Module
#: global on purpose: the disabled fast path must be a single load.
_tracer: Optional[Tracer] = None


def span(name: str, **attrs: Any):
    """Open a traced interval: ``with span("ic3.frame", k=3): ...``.

    While tracing is disabled this returns a shared no-op context
    manager — near-zero cost, safe in hot loops.
    """
    tracer = _tracer
    if tracer is None:
        return _NOOP
    return tracer.span(name, attrs)


def event(name: str, **attrs: Any) -> None:
    """Record an instant event (e.g. a GC run) at the current position."""
    tracer = _tracer
    if tracer is None:
        return
    tracer.event(name, attrs)


def enable(
    sinks: Sequence[Any] = (),
    keep_records: bool = True,
    clock_ns=time.perf_counter_ns,
) -> Tracer:
    """Install (and return) a fresh tracer; spans start recording."""
    global _tracer
    _tracer = Tracer(sinks=sinks, keep_records=keep_records, clock_ns=clock_ns)
    return _tracer


def disable() -> Optional[Tracer]:
    """Uninstall the tracer (if any) and return it, sinks *not* closed.

    The caller owns sink shutdown (:meth:`Tracer.close`), so a CLI can
    disable tracing first and still write its trace file afterwards.
    """
    global _tracer
    tracer, _tracer = _tracer, None
    return tracer


def is_enabled() -> bool:
    """Whether a tracer is currently installed."""
    return _tracer is not None


def get_tracer() -> Optional[Tracer]:
    """The installed tracer, or ``None`` while disabled."""
    return _tracer


def current_span():
    """The innermost open span, or ``None`` (also ``None`` when disabled)."""
    return _CURRENT.get()


def clear_current_span() -> None:
    """Reset span parentage to top level (the post-``fork()`` hygiene call).

    A forked worker inherits the parent's context-var stack, so without
    this its first span would claim the *parent process's* open span as
    its parent — in a foreign id space.  Worker telemetry installation
    clears the stack so worker span trees are rooted locally and the
    collector controls re-parenting explicitly.
    """
    _CURRENT.set(None)


@contextlib.contextmanager
def recording(
    sinks: Sequence[Any] = (), clock_ns=time.perf_counter_ns
) -> Iterator[Tracer]:
    """Enable tracing for the duration of a ``with`` block (test helper).

    Restores the previously installed tracer (usually none) on exit and
    closes the sinks passed in.
    """
    global _tracer
    previous = _tracer
    tracer = Tracer(sinks=sinks, keep_records=True, clock_ns=clock_ns)
    _tracer = tracer
    try:
        yield tracer
    finally:
        _tracer = previous
        tracer.close()
