"""Span/metric exporters: JSONL, Chrome/Perfetto trace JSON, summaries.

Sinks attach to a :class:`repro.obs.trace.Tracer` and receive each span
as it finishes (``on_span``) and each instant event as it fires
(``on_event``); ``close()`` flushes whatever the format buffers.  All
sinks accept either a filesystem path or an open file-like object —
paths are opened lazily and closed by ``close()``, caller-owned streams
are left open.

Formats:

:class:`JsonlSink`
    One JSON object per line, in completion order — the append-friendly
    event stream (``{"kind": "span", "name": ..., "dur_ns": ...}``).

:class:`ChromeTraceSink` (alias :data:`PerfettoSink`)
    The Chrome trace-event format (a ``{"traceEvents": [...]}`` JSON
    document with complete ``"ph": "X"`` events in microseconds),
    loadable in ``chrome://tracing`` and https://ui.perfetto.dev.
    Records that carry a ``pid``/``lane`` (re-parented worker spans from
    :mod:`repro.obs.collect`) land on their own process track, labelled
    with the engine name via metadata events, so a portfolio race renders
    as one coherent multi-process timeline.  ``docs/OBSERVABILITY.md``
    walks through reading an IC3 trace and a portfolio race.

:class:`SummarySink`
    Human-readable per-span-name aggregate table (count, total, mean,
    max), printed on ``close()`` — the ``--progress``-adjacent "where
    did the time go" view on stderr.

:class:`MemorySink`
    Plain lists, for tests.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Union

__all__ = [
    "Sink",
    "MemorySink",
    "JsonlSink",
    "ChromeTraceSink",
    "PerfettoSink",
    "SummarySink",
    "write_metrics_jsonl",
]


class Sink:
    """Base class: a sink may implement any subset of the callbacks."""

    def on_span(self, record) -> None:  # pragma: no cover - interface
        pass

    def on_event(self, record) -> None:  # pragma: no cover - interface
        pass

    def close(self) -> None:  # pragma: no cover - interface
        pass


class MemorySink(Sink):
    """Collects records in memory (tests and programmatic consumers)."""

    def __init__(self) -> None:
        self.spans: List[Any] = []
        self.events: List[Dict[str, Any]] = []
        self.closed = False

    def on_span(self, record) -> None:
        self.spans.append(record)

    def on_event(self, record) -> None:
        self.events.append(record)

    def close(self) -> None:
        self.closed = True


class _FileBacked(Sink):
    """Shared path-or-stream plumbing for the file-writing sinks."""

    def __init__(self, target: Union[str, "os.PathLike", Any]):
        self._target = target
        self._handle = None
        self._owns_handle = False

    def _file(self):
        if self._handle is None:
            if hasattr(self._target, "write"):
                self._handle = self._target
            else:
                self._handle = open(os.fspath(self._target), "w")
                self._owns_handle = True
        return self._handle

    def close(self) -> None:
        if self._handle is not None and self._owns_handle:
            self._handle.close()
        self._handle = None


class JsonlSink(_FileBacked):
    """One JSON object per line: spans and events in completion order."""

    def on_span(self, record) -> None:
        self._file().write(json.dumps(record.as_dict(), sort_keys=True) + "\n")

    def on_event(self, record) -> None:
        self._file().write(json.dumps(record, sort_keys=True) + "\n")


class ChromeTraceSink(_FileBacked):
    """Chrome/Perfetto trace-event JSON (written as one document on close).

    Spans become complete events (``"ph": "X"``) with microsecond
    ``ts``/``dur``, so the viewer renders the nesting as a flame graph;
    instant events become ``"ph": "i"`` marks.  Each event's ``args``
    carry the span's attributes plus its ``span_id``/``parent_id`` (the
    exact tree, so ``repro-obs`` never has to guess nesting from
    containment) and a non-``"ok"`` ``status``.

    Multi-process lanes: a record carrying a ``pid`` attribute (worker
    spans re-parented by :class:`repro.obs.collect.TelemetryCollector`)
    keeps that pid; everything else resolves ``os.getpid()`` *per event*
    — a sink inherited across ``fork()`` must never stamp the parent's
    pid on a child's events.  Records with a ``lane`` (the worker's
    engine name) get Perfetto ``"M"`` metadata events naming their
    process and thread tracks; the coordinator's lane is labelled
    ``coordinator`` and sorts first.
    """

    def __init__(self, target):
        super().__init__(target)
        self._trace_events: List[Dict[str, Any]] = []
        #: pid -> lane label (None until a labelled record names it).
        self._lanes: Dict[int, Optional[str]] = {}

    def _resolve_track(self, record_pid, lane) -> int:
        pid = os.getpid() if record_pid is None else record_pid
        if lane is not None or pid not in self._lanes:
            self._lanes[pid] = lane if lane is not None else self._lanes.get(pid)
        return pid

    def on_span(self, record) -> None:
        pid = self._resolve_track(
            getattr(record, "pid", None), getattr(record, "lane", None)
        )
        args = _json_clean(record.attrs)
        args["span_id"] = record.span_id
        args["parent_id"] = record.parent_id
        if record.status != "ok":
            args["status"] = record.status
        self._trace_events.append(
            {
                "name": record.name,
                "cat": record.name.split(".", 1)[0],
                "ph": "X",
                "ts": record.start_ns / 1000.0,
                "dur": record.duration_ns / 1000.0,
                "pid": pid,
                "tid": 1,
                "args": args,
            }
        )

    def on_event(self, record) -> None:
        pid = self._resolve_track(record.get("pid"), record.get("lane"))
        self._trace_events.append(
            {
                "name": record["name"],
                "cat": record["name"].split(".", 1)[0],
                "ph": "i",
                "s": "t",
                "ts": record["ts_ns"] / 1000.0,
                "pid": pid,
                "tid": 1,
                "args": _json_clean(record["attrs"]),
            }
        )

    def _metadata_events(self) -> List[Dict[str, Any]]:
        """Process/thread naming events, coordinator first, workers after."""
        events: List[Dict[str, Any]] = []
        sort_index = 0
        for pid in sorted(self._lanes, key=lambda p: (self._lanes[p] is not None, p)):
            lane = self._lanes[pid]
            process_name = "coordinator" if lane is None else "worker:%s" % lane
            thread_name = "main" if lane is None else lane
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "args": {"name": process_name},
                }
            )
            events.append(
                {
                    "name": "process_sort_index",
                    "ph": "M",
                    "pid": pid,
                    "args": {"sort_index": sort_index},
                }
            )
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 1,
                    "args": {"name": thread_name},
                }
            )
            sort_index += 1
        return events

    def close(self) -> None:
        # Viewers sort by ts, but emit in time order anyway for diffability.
        self._trace_events.sort(key=lambda e: e["ts"])
        document = {
            "traceEvents": self._metadata_events() + self._trace_events,
            "displayTimeUnit": "ms",
        }
        json.dump(document, self._file())
        self._file().write("\n")
        super().close()


#: The honest name: the documents this sink writes are opened in Perfetto.
PerfettoSink = ChromeTraceSink


class SummarySink(Sink):
    """Aggregates spans per name; prints a table on ``close()``."""

    def __init__(self, stream=None):
        self._stream = stream
        self._rows: Dict[str, List[float]] = {}

    def on_span(self, record) -> None:
        row = self._rows.get(record.name)
        if row is None:
            # [count, total_ns, max_ns]
            self._rows[record.name] = [1, record.duration_ns, record.duration_ns]
        else:
            row[0] += 1
            row[1] += record.duration_ns
            row[2] = max(row[2], record.duration_ns)

    def format_table(self) -> str:
        lines = [
            "%-36s %8s %12s %12s %12s"
            % ("span", "count", "total_ms", "mean_ms", "max_ms")
        ]
        for name in sorted(self._rows, key=lambda n: -self._rows[n][1]):
            count, total_ns, max_ns = self._rows[name]
            lines.append(
                "%-36s %8d %12.3f %12.3f %12.3f"
                % (
                    name,
                    count,
                    total_ns / 1e6,
                    total_ns / count / 1e6,
                    max_ns / 1e6,
                )
            )
        return "\n".join(lines)

    def close(self) -> None:
        if not self._rows:
            return
        stream = self._stream
        if stream is None:
            import sys

            stream = sys.stderr
        print(self.format_table(), file=stream)


def _json_clean(value):
    """Best-effort conversion of span attrs to JSON-serialisable values."""
    if isinstance(value, dict):
        return {str(k): _json_clean(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_clean(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def write_metrics_jsonl(registry, target, extra: Optional[Dict[str, Any]] = None) -> int:
    """Write one JSONL row per registry series (the ``--metrics`` file).

    Each row is ``{"kind", "name", "labels", "value"}``; ``extra`` keys
    are merged into every row (run identity: engine, system, size).
    Returns the number of rows written.
    """
    records = registry.as_records()
    if hasattr(target, "write"):
        handle, owns = target, False
    else:
        handle, owns = open(os.fspath(target), "w"), True
    try:
        for record in records:
            if extra:
                merged = dict(extra)
                merged.update(record)
                record = merged
            handle.write(json.dumps(_json_clean(record), sort_keys=True) + "\n")
    finally:
        if owns:
            handle.close()
    return len(records)
