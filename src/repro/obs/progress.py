"""Rate-limited heartbeat reporting for long-running checks.

Engines call :func:`heartbeat` from their outer loops (IC3 per frame,
BMC per depth, the symbolic checker per fixpoint) with whatever state
is cheap to read — frames reached, obligations pending, BDD live
nodes, current depth ``k``.  While progress reporting is disabled
(the default) the call is a module-global load and an ``is None``
test; when enabled (CLI ``--progress``) heartbeats are printed to
stderr at most once per ``interval`` seconds per source, so a
seconds-long IC3 run emits a handful of lines, not thousands::

    [progress] ic3 +2.1s frame=7 obligations=3 clauses=41

The rate limit uses the monotonic :func:`time.perf_counter` clock; the
clock is injectable for deterministic tests.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, Optional

__all__ = [
    "ProgressReporter",
    "enable_progress",
    "disable_progress",
    "heartbeat",
    "get_reporter",
]


class ProgressReporter:
    """Prints rate-limited ``[progress]`` lines to a stream."""

    def __init__(self, interval: float = 0.5, stream=None, clock=time.perf_counter):
        self.interval = interval
        self.stream = stream
        self._clock = clock
        self._started = clock()
        self._last_emit: Dict[str, float] = {}
        self.emitted = 0
        self.suppressed = 0

    def heartbeat(self, source: str, force: bool = False, **fields: Any) -> bool:
        """Report ``fields`` for ``source``; returns whether a line was printed.

        ``force=True`` bypasses the rate limit (final summaries).
        """
        now = self._clock()
        last = self._last_emit.get(source)
        if not force and last is not None and now - last < self.interval:
            self.suppressed += 1
            return False
        self._last_emit[source] = now
        self.emitted += 1
        stream = self.stream if self.stream is not None else sys.stderr
        rendered = " ".join("%s=%s" % (key, fields[key]) for key in sorted(fields))
        print(
            "[progress] %s +%.1fs %s" % (source, now - self._started, rendered),
            file=stream,
        )
        return True


#: The installed reporter, or ``None`` while progress reporting is off.
_reporter: Optional[ProgressReporter] = None


def enable_progress(
    interval: float = 0.5, stream=None, clock=time.perf_counter
) -> ProgressReporter:
    """Install (and return) a reporter; heartbeats start printing."""
    global _reporter
    _reporter = ProgressReporter(interval=interval, stream=stream, clock=clock)
    return _reporter


def disable_progress() -> Optional[ProgressReporter]:
    """Uninstall the reporter (if any) and return it."""
    global _reporter
    reporter, _reporter = _reporter, None
    return reporter


def get_reporter() -> Optional[ProgressReporter]:
    """The installed reporter, or ``None``."""
    return _reporter


def heartbeat(source: str, **fields: Any) -> bool:
    """Module-level heartbeat: a strict no-op while reporting is disabled."""
    reporter = _reporter
    if reporter is None:
        return False
    return reporter.heartbeat(source, **fields)
