"""Cross-process telemetry collection: worker spans and metrics flow home.

A supervised worker process (:mod:`repro.runtime.supervisor`) is a
telemetry black hole by default: every span an engine opens and every
counter it bumps lives in the forked child's memory and dies with it.
This module is the bridge that carries that telemetry back over the
worker's existing result/progress pipe, in three pieces:

:class:`TraceContext`
    What the coordinator serialises into each worker launch: the parent
    tracer's trace id, the span that was open at capture time (for a
    portfolio race, the ``portfolio.race`` span), its depth, and whether
    tracing is enabled at all.  :meth:`TraceContext.capture` reads all of
    it from the ambient tracer state.

:class:`WorkerTelemetry`
    The worker-process side.  Installing it (the supervisor does this in
    the worker entry point) resets the forked metrics registry — the
    child inherited the parent's counts and must not re-report them —
    clears the inherited span context, and, when the context says tracing
    is on, enables a worker-local tracer whose single sink batches
    finished spans into ``("telemetry", ...)`` messages on the pipe.
    ``close()`` flushes the remaining buffer and ships a final
    :meth:`~repro.obs.metrics.MetricsRegistry.as_records` snapshot; the
    supervisor calls it on every exit path before the terminal message,
    so cancelled and failing workers still report where their time went.
    Each telemetry payload is pickled and SHA-256-digested like the
    result payload (and garbled by the same chaos fault, when armed).

:class:`TelemetryCollector`
    The supervisor side.  Verifies each payload's digest, validates its
    structure, remaps worker-local span ids into the live tracer's id
    space, re-parents worker root spans under the captured parent span,
    and merges the worker's metrics snapshot into the coordinator's
    registry under a ``worker=<label>`` label.  Anything that fails
    verification — a flipped byte, a truncated pickle, a record missing
    fields — is *dropped and counted* (``obs.collect.dropped``), never
    ingested: corrupt telemetry must not poison the parent trace.

The package's no-cycle rule holds: this module imports only its obs
siblings, so the runtime layer can import it freely.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

__all__ = [
    "TELEMETRY_BATCH_SPANS",
    "TraceContext",
    "RemoteSpanRecord",
    "WorkerTelemetry",
    "TelemetryCollector",
    "validate_span_dict",
]

#: Finished spans buffered worker-side before a batch ships.  Small enough
#: that a crashing worker loses at most one batch; large enough that a
#: span-heavy engine does not turn the pipe into a hot path.
TELEMETRY_BATCH_SPANS = 64


class TraceContext:
    """Trace id + parent span id, serialised into each worker launch."""

    __slots__ = ("trace_id", "parent_span_id", "parent_depth", "enabled")

    def __init__(
        self,
        trace_id: Optional[str] = None,
        parent_span_id: Optional[int] = None,
        parent_depth: int = -1,
        enabled: bool = False,
    ) -> None:
        self.trace_id = trace_id
        self.parent_span_id = parent_span_id
        self.parent_depth = parent_depth
        self.enabled = enabled

    @classmethod
    def capture(cls) -> "TraceContext":
        """Snapshot the ambient tracer state at the launch site.

        With tracing disabled this still returns a (disabled) context —
        worker *metrics* flow back regardless, only spans need a tracer.
        """
        tracer = _trace.get_tracer()
        current = _trace.current_span()
        return cls(
            trace_id=None if tracer is None else tracer.trace_id,
            parent_span_id=None if current is None else current.span_id,
            parent_depth=-1 if current is None else current.depth,
            enabled=tracer is not None,
        )

    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state):
        for slot in self.__slots__:
            setattr(self, slot, state[slot])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "TraceContext(trace_id=%r, parent_span_id=%r, enabled=%r)" % (
            self.trace_id,
            self.parent_span_id,
            self.enabled,
        )


class RemoteSpanRecord:
    """A finished span ingested from a worker, in the parent's id space.

    Quacks like a finished :class:`~repro.obs.trace.SpanRecord` as far as
    sinks are concerned, plus the cross-process fields: the worker ``pid``
    (so the Perfetto sink renders it on the worker's own track) and the
    ``lane`` label (the racing engine's name).
    """

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "depth",
        "start_ns",
        "end_ns",
        "attrs",
        "status",
        "pid",
        "lane",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        depth: int,
        start_ns: int,
        end_ns: int,
        attrs: Dict[str, Any],
        status: str,
        pid: int,
        lane: str,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.depth = depth
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.attrs = attrs
        self.status = status
        self.pid = pid
        self.lane = lane

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def duration_s(self) -> float:
        return self.duration_ns / 1e9

    def as_dict(self) -> Dict[str, Any]:
        """The JSONL view — a superset of the local span record's."""
        return {
            "kind": "span",
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "depth": self.depth,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "dur_ns": self.duration_ns,
            "status": self.status,
            "attrs": self.attrs,
            "pid": self.pid,
            "lane": self.lane,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "RemoteSpanRecord(%r, id=%d, pid=%d, lane=%r)" % (
            self.name,
            self.span_id,
            self.pid,
            self.lane,
        )


def validate_span_dict(record: Any) -> bool:
    """Whether ``record`` is a structurally sound finished-span export.

    The collector runs every incoming span dict through this before
    touching the parent trace; telemetry is attacker-shaped data (a
    chaos-garbled pickle can decode to *anything* dict-like).
    """
    return (
        isinstance(record, dict)
        and isinstance(record.get("name"), str)
        and bool(record.get("name"))
        and isinstance(record.get("span_id"), int)
        and (record.get("parent_id") is None or isinstance(record["parent_id"], int))
        and isinstance(record.get("start_ns"), int)
        and isinstance(record.get("end_ns"), int)
        and record["end_ns"] >= record["start_ns"]
        and isinstance(record.get("status"), str)
        and isinstance(record.get("attrs"), dict)
    )


class _BufferSink:
    """The worker-local tracer's only sink: batch finished spans, ship."""

    def __init__(self, ship, batch_spans: int = TELEMETRY_BATCH_SPANS) -> None:
        self._ship = ship
        self._spans: List[Dict[str, Any]] = []
        self.batch_spans = batch_spans

    def on_span(self, record) -> None:
        self._spans.append(record.as_dict())
        if len(self._spans) >= self.batch_spans:
            self.flush()

    def on_event(self, record) -> None:
        # Instant events stay local: worker heartbeats already travel the
        # pipe as supervisor liveness messages and are ingested there.
        return None

    def flush(self) -> None:
        if self._spans:
            spans, self._spans = self._spans, []
            self._ship({"spans": spans})

    def close(self) -> None:
        self.flush()


class WorkerTelemetry:
    """Worker-process exporter: buffer spans, ship them plus final metrics.

    ``conn`` is the worker's result connection; telemetry messages are
    ``("telemetry", task_id, payload_bytes, sha256_hexdigest)`` tuples so
    the supervisor can verify integrity before unpickling, exactly like
    result payloads.  ``injector`` is the worker's chaos injector: an
    armed ``garble`` fault corrupts telemetry payloads too, which is what
    exercises the collector's drop path end to end.
    """

    def __init__(
        self,
        context: Optional[TraceContext],
        conn,
        task_id: str,
        injector=None,
        batch_spans: int = TELEMETRY_BATCH_SPANS,
    ) -> None:
        self._conn = conn
        self._task_id = task_id
        self._injector = injector
        self._sink: Optional[_BufferSink] = None
        self._closed = False
        # The fork copied the parent's registry wholesale; reset it so the
        # final snapshot is this worker's own contribution, not a
        # double-count of everything the coordinator already recorded.
        _metrics.REGISTRY.reset()
        _trace.clear_current_span()
        if context is not None and context.enabled:
            self._sink = _BufferSink(self._ship, batch_spans=batch_spans)
            _trace.enable([self._sink], keep_records=False)
        else:
            # The inherited tracer (if any) writes to the parent's sinks —
            # file handles this process must not touch.
            _trace.disable()

    def _ship(self, payload: Dict[str, Any]) -> None:
        payload = dict(payload)
        payload["pid"] = os.getpid()
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(blob).hexdigest()
        if self._injector is not None and self._injector.should_garble():
            blob = self._injector.garble_payload(blob)
        try:
            self._conn.send(("telemetry", self._task_id, blob, digest))
        except (BrokenPipeError, OSError):
            pass  # supervisor gone; nothing left to report to

    def close(self) -> None:
        """Flush buffered spans and ship the final metrics snapshot.

        Idempotent; the supervisor's worker entry point calls it on every
        exit path *before* the terminal result/failure message, so a
        cancelled or budget-felled worker still delivers its partial
        buffers — the loser-autopsy data ``repro-obs`` renders.
        """
        if self._closed:
            return
        self._closed = True
        if self._sink is not None:
            _trace.disable()
            self._sink.close()
        records = _metrics.REGISTRY.as_records()
        if records:
            self._ship({"metrics": records})


class TelemetryCollector:
    """Supervisor-side ingestion: verify, validate, re-parent, merge.

    One collector serves one supervisor run.  Span ingestion targets
    whatever tracer is live at ingest time (none → spans are skipped,
    metrics still merge); metric merging targets ``registry`` (default:
    the process-global one).
    """

    def __init__(self, registry: Optional[_metrics.MetricsRegistry] = None) -> None:
        self._registry = _metrics.REGISTRY if registry is None else registry
        #: (label, worker pid) -> worker-local span id -> parent-space id.
        self._id_maps: Dict[Tuple[str, int], Dict[int, int]] = {}
        self.spans_ingested = 0
        self.series_merged = 0
        self.dropped = 0

    # -- bookkeeping -------------------------------------------------------
    def _drop(self, label: str, count: int = 1) -> None:
        self.dropped += count
        self._registry.counter("obs.collect.dropped", worker=label).inc(count)

    # -- ingestion ---------------------------------------------------------
    def ingest(
        self,
        label: str,
        context: Optional[TraceContext],
        blob: bytes,
        digest: str,
    ) -> bool:
        """Ingest one telemetry message; returns whether it was accepted.

        Rejection (digest mismatch, undecodable pickle, wrong shape) is
        counted and otherwise silent — a garbled batch costs its own data,
        never the run.
        """
        if not isinstance(blob, bytes) or hashlib.sha256(blob).hexdigest() != digest:
            self._drop(label)
            return False
        try:
            payload = pickle.loads(blob)
        # A garbled pickle can raise essentially anything; the drop (counted
        # in obs.collect.dropped) *is* the handling.
        except Exception:  # repro-lint: disable=R005
            self._drop(label)
            return False
        if not isinstance(payload, dict) or not isinstance(payload.get("pid"), int):
            self._drop(label)
            return False
        with _trace.span("obs.collect", worker=label) as sp:
            accepted = 0
            spans = payload.get("spans")
            if spans is not None:
                accepted += self._ingest_spans(label, context, payload["pid"], spans)
            records = payload.get("metrics")
            if records is not None:
                accepted += self._ingest_metrics(label, records)
            sp.set(accepted=accepted)
        self._registry.counter("obs.collect.batches", worker=label).inc()
        return True

    def _ingest_spans(
        self,
        label: str,
        context: Optional[TraceContext],
        pid: int,
        spans: Any,
    ) -> int:
        tracer = _trace.get_tracer()
        if tracer is None or context is None or not context.enabled:
            return 0
        if context.trace_id is not None and context.trace_id != tracer.trace_id:
            # Captured against a tracer that is no longer installed; the
            # span ids would be meaningless in this one.
            return 0
        if not isinstance(spans, list):
            self._drop(label)
            return 0
        id_map = self._id_maps.setdefault((label, pid), {})
        root_depth = context.parent_depth + 1
        count = 0
        valid = []
        for raw in spans:
            if validate_span_dict(raw):
                valid.append(raw)
            else:
                self._drop(label)
        # Spans arrive in *completion* order — children before the parents
        # that contain them.  Parents always *start* first, so sorting the
        # batch by start time maps each parent's id before its children
        # reference it.  (A parent still open when a mid-run batch ships is
        # genuinely absent; its children re-parent to the race span below.)
        valid.sort(key=lambda raw: raw["start_ns"])
        for raw in valid:
            new_id = tracer.allocate_span_id()
            id_map[raw["span_id"]] = new_id
            parent = raw.get("parent_id")
            mapped_parent = None if parent is None else id_map.get(parent)
            if mapped_parent is None:
                # A worker root span (or one whose parent we never saw —
                # e.g. lost to a crashed batch): hang it off the span that
                # was open at capture time, the portfolio.race span.
                mapped_parent = context.parent_span_id
            attrs = dict(raw["attrs"])
            attrs["worker"] = label
            tracer.ingest(
                RemoteSpanRecord(
                    span_id=new_id,
                    parent_id=mapped_parent,
                    name=raw["name"],
                    depth=root_depth + int(raw.get("depth") or 0),
                    start_ns=raw["start_ns"],
                    end_ns=raw["end_ns"],
                    attrs=attrs,
                    status=raw["status"],
                    pid=pid,
                    lane=label,
                )
            )
            count += 1
        if count:
            self.spans_ingested += count
            self._registry.counter("obs.collect.spans", worker=label).inc(count)
        return count

    def _ingest_metrics(self, label: str, records: Any) -> int:
        if not isinstance(records, list):
            self._drop(label)
            return 0
        merged, skipped = self._registry.merge_records(records, worker=label)
        if merged:
            self.series_merged += merged
            self._registry.counter("obs.collect.series", worker=label).inc(merged)
        if skipped:
            self._drop(label, skipped)
        return merged

    def ingest_heartbeat(
        self,
        label: str,
        pid: Optional[int],
        text: str,
        context: Optional[TraceContext],
    ) -> None:
        """Record a worker liveness heartbeat as an instant trace event.

        Timestamped at receipt (the worker's own clock reading is inside
        the free-form text) on the worker's lane, so heartbeat cadence is
        visible right on the Perfetto track that went quiet.
        """
        tracer = _trace.get_tracer()
        if tracer is None or context is None or not context.enabled:
            return
        tracer.ingest_event(
            {
                "kind": "event",
                "name": "worker.heartbeat",
                "ts_ns": _trace.monotonic_ns(),
                "parent_id": context.parent_span_id,
                "attrs": {"worker": label, "text": text},
                "pid": pid,
                "lane": label,
            }
        )
