"""Process-global metrics: counters, gauges, log-bucketed histograms.

Every engine publishes into the one :data:`REGISTRY`; ``--profile``,
``--metrics``, and the benchmark suite's ``extra_info`` all read from
it, replacing the five bespoke per-engine stat objects as the *export*
path (the engines keep their cheap internal counters and snapshot them
here at phase boundaries).

Three instrument kinds, each keyed by name plus a frozen label set
(``engine=...``, ``system=...``, ``size=...``):

:class:`Counter`
    Monotone event count, incremented *at event time* (a GC run, a
    learnt-DB reduction).  Never published from a cumulative snapshot —
    that would double-count on the second publish.

:class:`Gauge`
    Last-observed value.  The right kind for snapshotting an engine's
    cumulative internal totals (``sat.conflicts``, ``bdd.nodes.peak``):
    re-publishing is idempotent.

:class:`Histogram`
    Power-of-two log-bucketed distribution (bucket ``i`` counts
    observations with ``2**(i-1) < v <= 2**i``), tracking count, sum,
    min, and max, and estimating p50/p90/p99 percentiles from the
    bucket boundaries.  Used for per-check latencies and fixpoint
    iteration counts, where the spread matters more than the total.

Worker processes snapshot their whole registry on teardown and the
supervisor merges it back under a ``worker`` label via
:meth:`MetricsRegistry.merge_records` — see :mod:`repro.obs.collect`.

Updates are plain dict/attribute operations with no locking; the
engines are single-threaded per check and the registry is only read at
phase boundaries.  Naming conventions live in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
]


def _bucket_index(value: float) -> int:
    """The log2 bucket of ``value``: smallest ``i >= 0`` with ``value <= 2**i``."""
    if value <= 1:
        return 0
    index = 0
    bound = 1
    while bound < value:
        bound *= 2
        index += 1
    return index


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge for %r" % amount)
        self.value += amount

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A last-observed value (idempotent to re-publish)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value: Any = 0

    def set(self, value: Any) -> None:
        self.value = value

    def set_max(self, value: Any) -> None:
        """Keep the running maximum (for peak-style gauges)."""
        if value > self.value:
            self.value = value

    def snapshot(self) -> Any:
        return self.value


class Histogram:
    """A power-of-two log-bucketed distribution."""

    __slots__ = ("count", "total", "min", "max", "buckets")
    kind = "histogram"

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        index = _bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def percentile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile (``0 < q <= 1``) from the buckets.

        The estimate interpolates linearly inside the log bucket holding
        the quantile rank (bounds ``(2**(i-1), 2**i]``) and is clamped to
        the observed ``[min, max]`` range, so single-observation and
        single-bucket histograms report exact values.  Returns ``None``
        while the histogram is empty.
        """
        if self.count == 0:
            return None
        rank = q * self.count
        cumulative = 0
        for index in sorted(self.buckets):
            in_bucket = self.buckets[index]
            if cumulative + in_bucket >= rank:
                upper = float(2**index)
                lower = 0.0 if index == 0 else float(2 ** (index - 1))
                position = (rank - cumulative) / in_bucket
                value = lower + position * (upper - lower)
                return min(max(value, self.min), self.max)
            cumulative += in_bucket
        return self.max  # pragma: no cover - rank <= count always lands

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold another histogram's :meth:`snapshot` into this one.

        This is how a worker process's latency distribution joins the
        coordinator's registry without shipping raw observations: bucket
        counts add bucket-by-bucket (the boundaries are globally fixed at
        powers of two), count/sum add, min/max widen.  Malformed
        snapshots raise ``ValueError``/``TypeError`` — the telemetry
        collector validates before merging.
        """
        count = int(snapshot["count"])
        if count < 0:
            raise ValueError("histogram snapshot count must be >= 0")
        if count == 0:
            return
        # Validate everything before mutating: a malformed snapshot must
        # not leave this histogram half-merged (the telemetry collector
        # skips the record and the registry stays consistent).
        total = float(snapshot["sum"])
        parsed = []
        for bound_text, in_bucket in dict(snapshot["buckets"]).items():
            bound = int(bound_text)
            if bound < 1 or bound & (bound - 1):
                raise ValueError("bucket bound %r is not a power of two" % bound_text)
            parsed.append((bound.bit_length() - 1, int(in_bucket)))
        self.count += count
        self.total += total
        for index, in_bucket in parsed:
            self.buckets[index] = self.buckets.get(index, 0) + in_bucket
        for key, better in (("min", min), ("max", max)):
            value = snapshot.get(key)
            if value is not None:
                ours = getattr(self, key)
                setattr(self, key, value if ours is None else better(ours, value))

    def snapshot(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            # Percentiles are estimates from the log-bucket boundaries —
            # the per-engine latency columns the service daemon needs.
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
            # Bucket keys are the inclusive upper bounds (2**i), emitted
            # as strings so the snapshot is JSON-clean.
            "buckets": {
                str(2**index): self.buckets[index]
                for index in sorted(self.buckets)
            },
        }


def _series_key(name: str, labels: Dict[str, Any]) -> Tuple:
    return (name,) + tuple(sorted((k, str(v)) for k, v in labels.items()))


def _format_series(name: str, labels: Tuple) -> str:
    if not labels:
        return name
    return "%s{%s}" % (name, ",".join("%s=%s" % pair for pair in labels))


class MetricsRegistry:
    """All labeled series, addressable as ``registry.counter(name, **labels)``.

    Instruments are created on first touch and live until
    :meth:`reset`.  ``snapshot()`` returns a flat
    ``{"name{label=value}": snapshot}`` dict ready for JSON export or
    ``benchmark.extra_info``.
    """

    def __init__(self) -> None:
        self._series: Dict[Tuple, Any] = {}

    def _get(self, factory, name: str, labels: Dict[str, Any]):
        key = (factory.kind,) + _series_key(name, labels)
        instrument = self._series.get(key)
        if instrument is None:
            instrument = factory()
            self._series[key] = instrument
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get(Histogram, name, labels)

    def reset(self) -> None:
        """Drop every series (tests and per-benchmark isolation)."""
        self._series.clear()

    def __len__(self) -> int:
        return len(self._series)

    def snapshot(self) -> Dict[str, Any]:
        """Flat ``{"name{k=v}": value-or-dict}`` view of every series."""
        out: Dict[str, Any] = {}
        for key in sorted(self._series, key=repr):
            # key = (kind, name, *label_pairs); kind only disambiguates
            # storage — the flat view is keyed by name + labels alone.
            name, labels = key[1], key[2:]
            out[_format_series(name, labels)] = self._series[key].snapshot()
        return out

    def as_records(self) -> List[Dict[str, Any]]:
        """One JSON-clean record per series (the ``--metrics`` JSONL rows)."""
        records = []
        for key in sorted(self._series, key=repr):
            kind, name = key[0], key[1]
            labels = dict(key[2:])
            records.append(
                {
                    "kind": kind,
                    "name": name,
                    "labels": labels,
                    "value": self._series[key].snapshot(),
                }
            )
        return records

    def merge_records(
        self, records: List[Dict[str, Any]], **extra_labels: Any
    ) -> Tuple[int, int]:
        """Fold :meth:`as_records` rows from another registry into this one.

        ``extra_labels`` are added to every merged series — the supervisor
        merges each worker's final snapshot under ``worker=<engine>`` so a
        portfolio run's ``--metrics`` file carries per-engine rows next to
        the coordinator's own.  Counters add (each worker attempt counted
        once), gauges overwrite (last snapshot wins), histograms merge
        bucket-by-bucket.  Malformed records are skipped, not raised:
        telemetry from a crashing or chaos-garbled worker must never
        poison the coordinator's registry.  Returns ``(merged, skipped)``.
        """
        merged = 0
        skipped = 0
        for record in records:
            try:
                kind = record["kind"]
                name = record["name"]
                labels = dict(record["labels"])
                labels.update(extra_labels)
                value = record["value"]
                if kind == "counter":
                    self.counter(name, **labels).inc(int(value))
                elif kind == "gauge":
                    self.gauge(name, **labels).set(value)
                elif kind == "histogram":
                    self.histogram(name, **labels).merge(value)
                else:
                    raise ValueError("unknown instrument kind %r" % (kind,))
            except (KeyError, TypeError, ValueError, AttributeError):
                skipped += 1
                continue
            merged += 1
        return merged, skipped


#: The process-global registry every engine publishes into.
REGISTRY = MetricsRegistry()


def counter(name: str, **labels: Any) -> Counter:
    """``REGISTRY.counter`` shorthand for instrumentation sites."""
    return REGISTRY.counter(name, **labels)


def gauge(name: str, **labels: Any) -> Gauge:
    """``REGISTRY.gauge`` shorthand for instrumentation sites."""
    return REGISTRY.gauge(name, **labels)


def histogram(name: str, **labels: Any) -> Histogram:
    """``REGISTRY.histogram`` shorthand for instrumentation sites."""
    return REGISTRY.histogram(name, **labels)
