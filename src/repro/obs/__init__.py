"""Unified observability layer: span tracing, metrics, sinks, progress.

The ``repro.obs`` package is the one instrumentation substrate shared by
all six engines (``bitset``, ``naive``, ``bdd``, ``bmc``, ``ic3``,
``portfolio``), the kripke/bdd/sat cores, the worker runtime
(``repro.runtime``), the CLI, and the benchmark suite:

``repro.obs.trace``
    Nested span tracing on the monotonic nanosecond clock
    (:func:`time.perf_counter_ns`).  Disabled by default with a strict
    no-op fast path, so instrumented hot paths pay one global load and
    an ``is None`` test per span.

``repro.obs.metrics``
    A process-global :class:`~repro.obs.metrics.MetricsRegistry` of
    counters, gauges, and log-bucketed histograms with labeled series.
    Always on (updates happen at phase boundaries, never inside inner
    loops).

``repro.obs.sinks``
    Pluggable span exporters: JSONL event streams, Chrome/Perfetto
    trace-event JSON (loadable in ``chrome://tracing`` or
    https://ui.perfetto.dev), human-readable stderr summary tables, and
    an in-memory sink for tests.

``repro.obs.progress``
    A rate-limited heartbeat reporter for long-running checks
    (IC3 frames reached, obligations pending, BMC depth k, BDD live
    nodes).

``repro.obs.collect``
    Cross-process telemetry collection: the
    :class:`~repro.obs.collect.TraceContext` the worker supervisor
    serialises into each forked worker, the worker-side buffering
    exporter, and the supervisor-side collector that re-parents worker
    spans into the live trace and merges worker metrics under a
    ``worker`` label.

``repro.obs.analyze``
    Offline trace analysis (the ``repro-obs`` console script): aggregate
    tables, critical path, portfolio loser autopsy, and run-vs-run diffs
    over trace JSONL / Perfetto documents and ``BENCH_*.json`` files.

Naming conventions, sink formats, and a guided tour of an IC3 trace
live in ``docs/OBSERVABILITY.md``.  The package is dependency-free
(stdlib only) and must stay importable from every layer without
creating cycles: nothing in ``repro.obs`` may import from the rest of
``repro``.
"""

from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
)
from repro.obs.progress import (
    ProgressReporter,
    disable_progress,
    enable_progress,
    heartbeat,
)
from repro.obs.collect import (
    TelemetryCollector,
    TraceContext,
    WorkerTelemetry,
)
from repro.obs.sinks import (
    ChromeTraceSink,
    JsonlSink,
    MemorySink,
    PerfettoSink,
    Sink,
    SummarySink,
    write_metrics_jsonl,
)
from repro.obs.trace import (
    SpanRecord,
    Tracer,
    clear_current_span,
    current_span,
    disable,
    enable,
    event,
    get_tracer,
    is_enabled,
    monotonic_ns,
    recording,
    span,
)

__all__ = [
    # trace
    "SpanRecord",
    "Tracer",
    "clear_current_span",
    "current_span",
    "disable",
    "enable",
    "event",
    "get_tracer",
    "is_enabled",
    "monotonic_ns",
    "recording",
    "span",
    # metrics
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "gauge",
    "histogram",
    # sinks
    "ChromeTraceSink",
    "JsonlSink",
    "MemorySink",
    "PerfettoSink",
    "Sink",
    "SummarySink",
    "write_metrics_jsonl",
    # collect
    "TelemetryCollector",
    "TraceContext",
    "WorkerTelemetry",
    # progress
    "ProgressReporter",
    "disable_progress",
    "enable_progress",
    "heartbeat",
]
