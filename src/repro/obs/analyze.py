"""Offline trace analysis: the ``repro-obs`` console script.

Loads the artifacts the tracing layer writes — span JSONL streams
(:class:`~repro.obs.sinks.JsonlSink`), Chrome/Perfetto trace documents
(:class:`~repro.obs.sinks.PerfettoSink`), and the benchmark suite's
``BENCH_*.json`` summaries — and answers the questions a profiling
session actually asks:

``repro-obs report TRACE``
    Where did the time go?  Per-span-name aggregates (count, total,
    mean, max, self time), the critical path through the span tree (the
    chain of spans that determined the run's end time), and — when the
    trace contains a ``portfolio.race`` — a loser autopsy: how long each
    cancelled engine burned, and the last span it finished before the
    cancellation landed.

``repro-obs diff A B``
    What changed between two runs?  For two traces: per-span-name time
    attribution of the regression (or improvement).  For two
    ``BENCH_*.json`` files: per-benchmark mean deltas.

Everything here is read-only over JSON files; like the rest of
:mod:`repro.obs` it imports nothing from the wider ``repro`` package, so
the toolkit works on artifacts from any run, any machine.
"""

from __future__ import annotations

import argparse
import itertools
import json
import sys
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "SpanNode",
    "TraceDocument",
    "load_trace",
    "load_artifact",
    "aggregate",
    "critical_path",
    "portfolio_autopsy",
    "diff_traces",
    "diff_bench",
    "main",
]


class SpanNode:
    """One span in a loaded trace, with resolved children."""

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "start_ns",
        "end_ns",
        "pid",
        "lane",
        "status",
        "attrs",
        "children",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        start_ns: int,
        end_ns: int,
        pid: Optional[int] = None,
        lane: Optional[str] = None,
        status: str = "ok",
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.pid = pid
        self.lane = lane
        self.status = status
        self.attrs = attrs or {}
        self.children: List["SpanNode"] = []

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def self_ns(self) -> int:
        """Duration not covered by direct children (clamped at zero)."""
        return max(0, self.duration_ns - sum(c.duration_ns for c in self.children))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SpanNode(%r, id=%r, dur=%dns)" % (self.name, self.span_id, self.duration_ns)


class TraceDocument:
    """A fully linked span forest plus per-process lane labels."""

    def __init__(self, spans: List[SpanNode], lanes: Optional[Dict[int, Optional[str]]] = None):
        self.spans = spans
        self.lanes = lanes or {}
        self.by_id: Dict[int, SpanNode] = {s.span_id: s for s in spans}
        self.roots: List[SpanNode] = []
        for node in spans:
            parent = None if node.parent_id is None else self.by_id.get(node.parent_id)
            if parent is None or parent is node:
                self.roots.append(node)
            else:
                parent.children.append(node)
        for node in spans:
            node.children.sort(key=lambda c: c.start_ns)
            if node.lane is None and node.pid is not None:
                node.lane = self.lanes.get(node.pid)

    @property
    def pids(self) -> List[int]:
        return sorted({s.pid for s in self.spans if s.pid is not None})

    @property
    def span_ns(self) -> int:
        """Wall span of the whole trace (first start to last end)."""
        if not self.spans:
            return 0
        return max(s.end_ns for s in self.spans) - min(s.start_ns for s in self.spans)

    def find(self, name: str) -> List[SpanNode]:
        return [s for s in self.spans if s.name == name]

    def descendants(self, node: SpanNode) -> List[SpanNode]:
        out: List[SpanNode] = []
        stack = list(node.children)
        while stack:
            child = stack.pop()
            out.append(child)
            stack.extend(child.children)
        return out


# -- loading ----------------------------------------------------------------

def _lane_from_process_name(name: Any) -> Optional[str]:
    if isinstance(name, str) and name.startswith("worker:"):
        return name.split(":", 1)[1]
    return None


def _load_perfetto(document: Dict[str, Any]) -> TraceDocument:
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("not a trace-event document (no traceEvents list)")
    lanes: Dict[int, Optional[str]] = {}
    raw: List[Dict[str, Any]] = []
    for entry in events:
        if not isinstance(entry, dict):
            continue
        phase = entry.get("ph")
        if phase == "M" and entry.get("name") == "process_name":
            lanes[entry.get("pid")] = _lane_from_process_name(
                (entry.get("args") or {}).get("name")
            )
        elif phase == "X":
            raw.append(entry)
    nodes: List[SpanNode] = []
    ids = itertools.count(-1, -1)  # synthetic ids for foreign traces
    need_containment = False
    for entry in raw:
        args = dict(entry.get("args") or {})
        span_id = args.pop("span_id", None)
        parent_id = args.pop("parent_id", None)
        status = args.pop("status", "ok")
        if not isinstance(span_id, int):
            span_id = next(ids)
            need_containment = True
        start_ns = int(round(float(entry.get("ts", 0)) * 1000))
        nodes.append(
            SpanNode(
                span_id=span_id,
                parent_id=parent_id if isinstance(parent_id, int) else None,
                name=str(entry.get("name", "?")),
                start_ns=start_ns,
                end_ns=start_ns + int(round(float(entry.get("dur", 0)) * 1000)),
                pid=entry.get("pid"),
                lane=args.get("worker") or lanes.get(entry.get("pid")),
                status=str(status),
                attrs=args,
            )
        )
    if need_containment:
        _infer_containment(nodes)
    return TraceDocument(nodes, lanes)


def _infer_containment(nodes: List[SpanNode]) -> None:
    """Recover parentage by interval containment, per process.

    Only used for trace documents that lack explicit ``span_id`` args
    (traces produced by other tools); our own sinks always embed the tree.
    """
    by_pid: Dict[Any, List[SpanNode]] = {}
    for node in nodes:
        by_pid.setdefault(node.pid, []).append(node)
    for group in by_pid.values():
        group.sort(key=lambda n: (n.start_ns, -n.duration_ns))
        stack: List[SpanNode] = []
        for node in group:
            while stack and stack[-1].end_ns <= node.start_ns:
                stack.pop()
            node.parent_id = stack[-1].span_id if stack else None
            stack.append(node)


def _load_jsonl(lines: List[str]) -> TraceDocument:
    nodes: List[SpanNode] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        row = json.loads(line)
        if not isinstance(row, dict) or row.get("kind") != "span":
            continue
        nodes.append(
            SpanNode(
                span_id=row["span_id"],
                parent_id=row.get("parent_id"),
                name=row["name"],
                start_ns=row["start_ns"],
                end_ns=row["end_ns"],
                pid=row.get("pid"),
                lane=row.get("lane") or (row.get("attrs") or {}).get("worker"),
                status=row.get("status", "ok"),
                attrs=dict(row.get("attrs") or {}),
            )
        )
    return TraceDocument(nodes)


def load_trace(path: str) -> TraceDocument:
    """Load a trace file, sniffing Perfetto-document vs JSONL layout."""
    with open(path) as handle:
        text = handle.read()
    stripped = text.lstrip()
    if stripped.startswith("{") and '"traceEvents"' in text:
        return _load_perfetto(json.loads(text))
    return _load_jsonl(text.splitlines())


def load_artifact(path: str) -> Tuple[str, Any]:
    """Load ``path`` as ``("bench", dict)`` or ``("trace", TraceDocument)``."""
    with open(path) as handle:
        text = handle.read()
    stripped = text.lstrip()
    if stripped.startswith("{"):
        document = json.loads(text)
        if "benchmarks" in document:
            return ("bench", document)
        if "traceEvents" in document:
            return ("trace", _load_perfetto(document))
        raise ValueError("%s: unrecognised JSON artifact" % path)
    return ("trace", _load_jsonl(text.splitlines()))


# -- analyses ---------------------------------------------------------------

def aggregate(doc: TraceDocument) -> Dict[str, Dict[str, Any]]:
    """Per-span-name totals: count, total/mean/max duration, self time."""
    rows: Dict[str, Dict[str, Any]] = {}
    for node in doc.spans:
        row = rows.setdefault(
            node.name, {"count": 0, "total_ns": 0, "max_ns": 0, "self_ns": 0}
        )
        row["count"] += 1
        row["total_ns"] += node.duration_ns
        row["max_ns"] = max(row["max_ns"], node.duration_ns)
        row["self_ns"] += node.self_ns
    for row in rows.values():
        row["mean_ns"] = row["total_ns"] / row["count"]
    return rows


def critical_path(doc: TraceDocument) -> List[Dict[str, Any]]:
    """The chain of spans that determined the run's end time.

    Starts at the longest root and, at each step, descends into the child
    that finished last — the child the parent was (transitively) waiting
    on.  Each step carries its ``self_ns`` share: the part of the parent's
    time no child accounts for.
    """
    if not doc.roots:
        return []
    node: Optional[SpanNode] = max(doc.roots, key=lambda r: r.duration_ns)
    total = node.duration_ns or 1
    path = []
    while node is not None:
        last_child = max(node.children, key=lambda c: c.end_ns, default=None)
        path.append(
            {
                "name": node.name,
                "span_id": node.span_id,
                "pid": node.pid,
                "lane": node.lane,
                "status": node.status,
                "dur_ns": node.duration_ns,
                "self_ns": node.self_ns,
                "pct_of_root": 100.0 * node.duration_ns / total,
            }
        )
        node = last_child
    return path


def portfolio_autopsy(doc: TraceDocument) -> List[Dict[str, Any]]:
    """Per-engine post-mortem of every ``portfolio.race`` in the trace.

    For each race: the winner (parsed from the race span's ``winner``
    attribute), and per engine lane the time it burned, its span count,
    and the last span it finished before it won or was cancelled.
    """
    autopsies = []
    for race in doc.find("portfolio.race"):
        winner_text = str(race.attrs.get("winner") or "")
        winner = ""
        if winner_text.startswith("won by "):
            winner = winner_text[len("won by "):].split(" ", 1)[0].split("(", 1)[0]
        lanes: Dict[str, Dict[str, Any]] = {}
        for node in doc.descendants(race):
            if not node.lane:
                continue  # unlabelled coordinator-side spans
            if node.pid is not None and node.pid == race.pid:
                # Coordinator-side bookkeeping (obs.collect) carries the
                # worker label but is not the engine's own time.
                continue
            lane = lanes.setdefault(
                node.lane,
                {"engine": node.lane, "spans": 0, "busy_ns": 0, "pids": set(), "last": None},
            )
            lane["spans"] += 1
            if node.parent_id == race.span_id:
                # Lane roots only: children are contained in their parents,
                # so summing everything would double-count the nesting.
                lane["busy_ns"] += node.duration_ns
            if node.pid is not None:
                lane["pids"].add(node.pid)
            if lane["last"] is None or node.end_ns >= lane["last"].end_ns:
                lane["last"] = node
        engines = []
        for name in sorted(lanes):
            lane = lanes[name]
            last = lane["last"]
            engines.append(
                {
                    "engine": name,
                    "won": name == winner,
                    "spans": lane["spans"],
                    "busy_ns": lane["busy_ns"],
                    "pids": sorted(lane["pids"]),
                    "last_span": None if last is None else last.name,
                    "last_status": None if last is None else last.status,
                }
            )
        autopsies.append(
            {
                "race_span_id": race.span_id,
                "dur_ns": race.duration_ns,
                "engines_raced": race.attrs.get("engines", ""),
                "winner": winner,
                "detail": winner_text,
                "engines": engines,
            }
        )
    return autopsies


def diff_traces(a: TraceDocument, b: TraceDocument) -> List[Dict[str, Any]]:
    """Per-span-name time attribution of B minus A, largest shift first."""
    rows_a, rows_b = aggregate(a), aggregate(b)
    out = []
    for name in sorted(set(rows_a) | set(rows_b)):
        in_a = rows_a.get(name, {"count": 0, "total_ns": 0})
        in_b = rows_b.get(name, {"count": 0, "total_ns": 0})
        delta = in_b["total_ns"] - in_a["total_ns"]
        out.append(
            {
                "name": name,
                "count_a": in_a["count"],
                "count_b": in_b["count"],
                "total_ns_a": in_a["total_ns"],
                "total_ns_b": in_b["total_ns"],
                "delta_ns": delta,
            }
        )
    out.sort(key=lambda row: -abs(row["delta_ns"]))
    return out


def diff_bench(a: Dict[str, Any], b: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Per-benchmark mean deltas between two ``BENCH_*.json`` files."""
    def by_name(document):
        return {
            record.get("fullname") or record.get("name", "?"): record
            for record in document.get("benchmarks", [])
            if isinstance(record, dict)
        }

    in_a, in_b = by_name(a), by_name(b)
    out = []
    for name in sorted(set(in_a) | set(in_b)):
        mean_a = in_a.get(name, {}).get("mean")
        mean_b = in_b.get(name, {}).get("mean")
        row = {"name": name, "mean_a": mean_a, "mean_b": mean_b}
        if mean_a is not None and mean_b is not None:
            row["delta"] = mean_b - mean_a
            row["ratio"] = (mean_b / mean_a) if mean_a else None
        out.append(row)
    out.sort(key=lambda row: -abs(row.get("delta") or 0))
    return out


# -- rendering --------------------------------------------------------------

def _ms(ns: Optional[float]) -> str:
    return "-" if ns is None else "%.3f" % (ns / 1e6)


def _render_report(doc: TraceDocument, top: int, out) -> None:
    print(
        "trace: %d spans, %d process(es) %s, wall span %s ms"
        % (len(doc.spans), len(doc.pids) or 1, doc.pids, _ms(doc.span_ns)),
        file=out,
    )
    rows = aggregate(doc)
    print("\n== aggregates (top %d by total time) ==" % top, file=out)
    print(
        "%-36s %7s %12s %12s %12s %12s"
        % ("span", "count", "total_ms", "mean_ms", "max_ms", "self_ms"),
        file=out,
    )
    for name in sorted(rows, key=lambda n: -rows[n]["total_ns"])[:top]:
        row = rows[name]
        print(
            "%-36s %7d %12s %12s %12s %12s"
            % (
                name,
                row["count"],
                _ms(row["total_ns"]),
                _ms(row["mean_ns"]),
                _ms(row["max_ns"]),
                _ms(row["self_ns"]),
            ),
            file=out,
        )
    path = critical_path(doc)
    print("\n== critical path ==", file=out)
    for depth, step in enumerate(path):
        lane = " [%s pid=%s]" % (step["lane"], step["pid"]) if step["lane"] else ""
        status = "" if step["status"] == "ok" else " status=%s" % step["status"]
        print(
            "%s%-s %s ms (self %s ms, %.1f%% of root)%s%s"
            % (
                "  " * depth,
                step["name"],
                _ms(step["dur_ns"]),
                _ms(step["self_ns"]),
                step["pct_of_root"],
                lane,
                status,
            ),
            file=out,
        )
    for autopsy in portfolio_autopsy(doc):
        print(
            "\n== portfolio autopsy (race %s ms, engines: %s) =="
            % (_ms(autopsy["dur_ns"]), autopsy["engines_raced"]),
            file=out,
        )
        if autopsy["detail"]:
            print(autopsy["detail"], file=out)
        print(
            "%-10s %6s %7s %12s %-28s %s"
            % ("engine", "won", "spans", "busy_ms", "last span", "last status"),
            file=out,
        )
        for engine in autopsy["engines"]:
            print(
                "%-10s %6s %7d %12s %-28s %s"
                % (
                    engine["engine"],
                    "yes" if engine["won"] else "no",
                    engine["spans"],
                    _ms(engine["busy_ns"]),
                    engine["last_span"] or "-",
                    engine["last_status"] or "-",
                ),
                file=out,
            )


def _report_payload(doc: TraceDocument, top: int) -> Dict[str, Any]:
    rows = aggregate(doc)
    ordered = sorted(rows, key=lambda n: -rows[n]["total_ns"])[:top]
    return {
        "spans": len(doc.spans),
        "pids": doc.pids,
        "wall_ns": doc.span_ns,
        "aggregates": {name: rows[name] for name in ordered},
        "critical_path": critical_path(doc),
        "portfolio": portfolio_autopsy(doc),
    }


# -- CLI --------------------------------------------------------------------

def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Analyse repro trace files (JSONL or Perfetto) and "
        "BENCH_*.json benchmark summaries.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser("report", help="aggregates, critical path, autopsy")
    report.add_argument("trace", help="trace file (--trace output, JSONL or Perfetto)")
    report.add_argument("--top", type=int, default=15, help="aggregate rows shown")
    report.add_argument("--json", action="store_true", help="machine-readable output")
    diff = sub.add_parser("diff", help="compare two traces or two BENCH files")
    diff.add_argument("a", help="baseline artifact")
    diff.add_argument("b", help="candidate artifact")
    diff.add_argument("--top", type=int, default=15, help="rows shown")
    diff.add_argument("--json", action="store_true", help="machine-readable output")
    args = parser.parse_args(argv)
    try:
        if args.command == "report":
            return _cmd_report(args)
        return _cmd_diff(args)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as error:
        print("repro-obs: %s" % error, file=sys.stderr)
        return 2


def _cmd_report(args) -> int:
    doc = load_trace(args.trace)
    if args.json:
        json.dump(_report_payload(doc, args.top), sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        _render_report(doc, args.top, sys.stdout)
    return 0


def _cmd_diff(args) -> int:
    kind_a, a = load_artifact(args.a)
    kind_b, b = load_artifact(args.b)
    if kind_a != kind_b:
        raise ValueError(
            "cannot diff %s against %s (%s vs %s)" % (args.a, args.b, kind_a, kind_b)
        )
    if kind_a == "bench":
        rows = diff_bench(a, b)
        payload: Dict[str, Any] = {"kind": "bench", "rows": rows[: args.top]}
        if not args.json:
            print("%-64s %12s %12s %12s" % ("benchmark", "mean_a_s", "mean_b_s", "delta_s"))
            for row in rows[: args.top]:
                print(
                    "%-64s %12s %12s %12s"
                    % (
                        row["name"][:64],
                        "-" if row["mean_a"] is None else "%.6f" % row["mean_a"],
                        "-" if row["mean_b"] is None else "%.6f" % row["mean_b"],
                        "-" if row.get("delta") is None else "%+.6f" % row["delta"],
                    )
                )
            return 0
    else:
        rows = diff_traces(a, b)
        payload = {"kind": "trace", "rows": rows[: args.top]}
        if not args.json:
            print(
                "%-36s %7s %7s %12s %12s %12s"
                % ("span", "n_a", "n_b", "total_a_ms", "total_b_ms", "delta_ms")
            )
            for row in rows[: args.top]:
                print(
                    "%-36s %7d %7d %12s %12s %+12.3f"
                    % (
                        row["name"],
                        row["count_a"],
                        row["count_b"],
                        _ms(row["total_ns_a"]),
                        _ms(row["total_ns_b"]),
                        row["delta_ns"] / 1e6,
                    )
                )
            return 0
    json.dump(payload, sys.stdout, indent=2, sort_keys=True)
    print()
    return 0


if __name__ == "__main__":  # pragma: no cover - module execution hook
    sys.exit(main())
