"""Symbolic (BDD-encoded) Kripke structures.

Where :class:`repro.kripke.compiled.CompiledKripkeStructure` freezes a
structure into *explicit* integer-indexed arrays, this module encodes it into
*boolean functions* over state bits, so that sets of states and the transition
relation are :mod:`repro.bdd` decision diagrams and never need to be
enumerated.  Two construction paths are provided:

* :meth:`SymbolicKripkeStructure.from_explicit` binary-encodes an existing
  explicit structure (state ``i`` becomes the bit pattern of ``i``) — this is
  what ``engine="bdd"`` uses when handed an ordinary
  :class:`~repro.kripke.structure.KripkeStructure`;
* :class:`ProcessFamilyEncoding` assigns each process of a synchronized
  family its own block of state bits, so the global transition relation of
  the family can be written down *directly* as a disjunction of per-rule
  relations — the explicit product graph is never built.  This is the path
  that unlocks ring sizes the explicit engines cannot reach (see
  :func:`repro.systems.token_ring.symbolic_token_ring`).

Variable-order convention
-------------------------
State bit ``k`` lives at BDD level ``2k`` (its *current* copy) and level
``2k + 1`` (its *next* copy).  Interleaving current/next keeps the
transition-relation BDDs small and makes the current↔next renames
order-preserving, so they are single structural walks.  For process families
the bits of one process are contiguous (process-major order), which keeps
processes that interact frequently close together in the order.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.bdd import BDDFunction, BDDManager
from repro.errors import BDDError, StructureError
from repro.kripke.compiled import compile_structure
from repro.kripke.indexed import IndexedKripkeStructure
from repro.kripke.structure import IndexedProp, KripkeStructure, Label, State
from repro.logic.ast import (
    Atom,
    ExactlyOne,
    FalseLiteral,
    Formula,
    IndexedAtom,
    TrueLiteral,
)

__all__ = ["SymbolicKripkeStructure", "ProcessFamilyEncoding", "symbolic_structure"]

#: Chunk size for partitioning the transition relation of explicit encodings.
_EXPLICIT_PARTITION_CHUNK = 256


class SymbolicKripkeStructure:
    """A Kripke structure encoded as BDDs over current/next state bits.

    Parameters
    ----------
    manager:
        The BDD manager owning every node below.
    num_bits:
        The number of state bits; current copies live at levels ``0, 2, …``
        and next copies at ``1, 3, …``.
    transition_parts:
        The partitioned transition relation: node ids whose disjunction is
        ``R`` as a function of current *and* next levels.  Keeping the parts
        separate lets pre-image computation run one fused ``relprod`` per
        part instead of building a monolithic relation.
    initial:
        The characteristic function of ``{s0}`` over current levels.
    domain:
        The characteristic function of the state set ``S`` over current
        levels, or ``None`` to take ``S`` to be the states reachable from
        ``initial`` (computed symbolically at construction).  Explicit
        encodings pass the set of valid codes; process families pass ``None``,
        mirroring how the explicit family builders restrict to reachable
        states.
    prop_nodes:
        Per-proposition characteristic functions over current levels.
    index_values:
        The index set ``I`` when the structure is indexed (enables ``Θ``).
    source:
        The explicit structure this encoding came from, when there is one.
    encode_assignment / decode_assignment:
        Callbacks translating between states and ``{level: bool}`` truth
        assignments over the current levels.  ``from_explicit`` fills them
        in automatically; family encoders supply their own.
    """

    def __init__(
        self,
        manager: BDDManager,
        num_bits: int,
        transition_parts: Sequence[int],
        initial: int,
        domain: Optional[int],
        prop_nodes: Mapping[Label, int],
        index_values: Optional[FrozenSet[int]] = None,
        source: Optional[KripkeStructure] = None,
        encode_assignment: Optional[Callable[[State], Dict[int, bool]]] = None,
        decode_assignment: Optional[Callable[[Mapping[int, bool]], State]] = None,
        name: Optional[str] = None,
    ) -> None:
        if num_bits < 1:
            raise StructureError("a symbolic structure needs at least one state bit")
        self.manager = manager
        self._num_bits = num_bits
        self._current_levels = tuple(2 * bit for bit in range(num_bits))
        self._next_levels = tuple(2 * bit + 1 for bit in range(num_bits))
        self._c2n = {2 * bit: 2 * bit + 1 for bit in range(num_bits)}
        self._n2c = {2 * bit + 1: 2 * bit for bit in range(num_bits)}
        # Rename-cache tags: keyed by direction and bit count, so two
        # structures with the same geometry on one manager share cache
        # entries (the mappings are identical) and different geometries
        # cannot collide.
        self._c2n_tag = ("c2n", num_bits)
        self._n2c_tag = ("n2c", num_bits)
        self._transition_parts = tuple(transition_parts)
        self._initial = initial
        if domain is None:
            self._domain = 1  # over-approximation used only while computing
            self._domain = self.reachable()
        else:
            self._domain = domain
        self._prop_nodes = dict(prop_nodes)
        self._index_values = index_values
        self._source = source
        self._encode_assignment = encode_assignment
        self._decode_assignment = decode_assignment
        self._name = name
        self._exactly_one_nodes: Dict[str, int] = {}
        self._transition_total: Optional[int] = None

    # -- basic accessors -----------------------------------------------------

    @property
    def name(self) -> Optional[str]:
        """Optional human-readable name of the structure."""
        return self._name

    @property
    def num_bits(self) -> int:
        """The number of state bits (half the number of BDD levels in use)."""
        return self._num_bits

    @property
    def current_levels(self) -> Tuple[int, ...]:
        """The BDD levels carrying the current-state bits (``0, 2, 4, …``)."""
        return self._current_levels

    @property
    def next_levels(self) -> Tuple[int, ...]:
        """The BDD levels carrying the next-state bits (``1, 3, 5, …``)."""
        return self._next_levels

    @property
    def initial(self) -> int:
        """The node encoding ``{s0}``."""
        return self._initial

    @property
    def domain(self) -> int:
        """The node encoding the state set ``S``."""
        return self._domain

    @property
    def transition_parts(self) -> Tuple[int, ...]:
        """The partitioned transition relation (disjunction of the parts)."""
        return self._transition_parts

    @property
    def index_values(self) -> Optional[FrozenSet[int]]:
        """The index set ``I`` when the source family is indexed."""
        return self._index_values

    @property
    def source(self) -> Optional[KripkeStructure]:
        """The explicit structure this encoding was built from, if any."""
        return self._source

    def function(self, node: int) -> BDDFunction:
        """Wrap a raw node id of this structure's manager."""
        return BDDFunction(self.manager, node)

    @property
    def transition(self) -> int:
        """The monolithic transition relation (the disjunction of the parts)."""
        if self._transition_total is None:
            total = 0
            for part in self._transition_parts:
                total = self.manager.apply_or(total, part)
            self._transition_total = total
        return self._transition_total

    # -- counting ---------------------------------------------------------------

    @property
    def num_states(self) -> int:
        """``|S|`` computed by BDD satisfy-count — no state is ever enumerated."""
        return self.manager.sat_count(self._domain, self._current_levels)

    @property
    def num_transitions(self) -> int:
        """``|R ∩ (S × S)|`` via satisfy-count over current and next levels."""
        manager = self.manager
        pairs = manager.apply_and(
            self.transition,
            manager.apply_and(
                self._domain, manager.rename(self._domain, self._c2n, self._c2n_tag)
            ),
        )
        return manager.sat_count(pairs, self._current_levels + self._next_levels)

    def count(self, node: int) -> int:
        """The number of domain states in the set encoded by ``node``."""
        return self.manager.sat_count(
            self.manager.apply_and(node, self._domain), self._current_levels
        )

    # -- images ------------------------------------------------------------------

    def preimage(self, node: int) -> int:
        """States of ``S`` with at least one successor in ``node`` (the EX pre-image).

        ``node`` must be a function of current levels only; it is renamed to
        next levels and one fused relational product per transition part
        eliminates the next-state bits.
        """
        manager = self.manager
        renamed = manager.rename(node, self._c2n, self._c2n_tag)
        result = 0
        for part in self._transition_parts:
            result = manager.apply_or(
                result, manager.relprod(part, renamed, self._next_levels)
            )
        return manager.apply_and(result, self._domain)

    def image(self, node: int) -> int:
        """Successors of the states in ``node`` (the post-image), over current levels."""
        manager = self.manager
        result = 0
        for part in self._transition_parts:
            result = manager.apply_or(
                result, manager.relprod(part, node, self._current_levels)
            )
        return manager.rename(result, self._n2c, self._n2c_tag)

    def reachable(self) -> int:
        """The least fixpoint of post-images from the initial state."""
        manager = self.manager
        current = manager.apply_and(self._initial, self._domain)
        frontier = current
        while frontier != 0:
            fresh = manager.apply_and(self.image(frontier), self._domain)
            frontier = manager.apply_and(fresh, manager.negate(current))
            current = manager.apply_or(current, frontier)
        return current

    def complement(self, node: int) -> int:
        """The complement of ``node`` *relative to the state set* ``S``."""
        manager = self.manager
        return manager.apply_and(self._domain, manager.negate(node))

    def is_total(self) -> bool:
        """Return ``True`` when every domain state has at least one successor."""
        manager = self.manager
        has_successor = manager.exists(self.transition, self._next_levels)
        deadlocked = manager.apply_and(self._domain, manager.negate(has_successor))
        return deadlocked == 0

    # -- atomic satisfaction -------------------------------------------------------

    def atom_node(self, formula: Formula) -> int:
        """The characteristic function of an atomic formula (cf. ``atom_mask``)."""
        manager = self.manager
        if isinstance(formula, TrueLiteral):
            return self._domain
        if isinstance(formula, FalseLiteral):
            return 0
        if isinstance(formula, Atom):
            return manager.apply_and(self._prop_nodes.get(formula.name, 0), self._domain)
        if isinstance(formula, IndexedAtom):
            return manager.apply_and(
                self._prop_nodes.get(IndexedProp(formula.name, formula.index), 0),
                self._domain,
            )
        if isinstance(formula, ExactlyOne):
            return self._exactly_one_node(formula.name)
        raise StructureError("atom_node expects an atomic formula, got %r" % (formula,))

    def _exactly_one_node(self, name: str) -> int:
        if self._index_values is None:
            raise StructureError(
                "the Θ ('exactly one') proposition is only meaningful on an "
                "indexed structure with a known index set"
            )
        cached = self._exactly_one_nodes.get(name)
        if cached is not None:
            return cached
        manager = self.manager
        # Same one-pass "at least one"/"at least two" trick as the compiled
        # engine, but on characteristic functions instead of bitmasks.
        at_least_one = 0
        at_least_two = 0
        for value in sorted(self._index_values):
            prop = self._prop_nodes.get(IndexedProp(name, value), 0)
            at_least_two = manager.apply_or(
                at_least_two, manager.apply_and(at_least_one, prop)
            )
            at_least_one = manager.apply_or(at_least_one, prop)
        result = manager.apply_and(
            manager.apply_and(at_least_one, manager.negate(at_least_two)), self._domain
        )
        self._exactly_one_nodes[name] = result
        return result

    # -- state <-> assignment translation ------------------------------------------

    def encode_state(self, state: State) -> Dict[int, bool]:
        """The current-level truth assignment encoding ``state``."""
        if self._encode_assignment is None:
            raise BDDError("this symbolic structure has no state encoder")
        return self._encode_assignment(state)

    def holds_at(self, node: int, state: State) -> bool:
        """Decide whether ``state`` belongs to the set encoded by ``node``."""
        return self.manager.evaluate(node, self.encode_state(state))

    def states_of(self, node: int) -> FrozenSet[State]:
        """Decode a state-set function back into a frozenset of states.

        With an explicit source the states are evaluated one by one (exact
        and cheap for the structure sizes where decoding matters); family
        encodings decode the satisfying assignments instead.  Either way this
        is an explicitly *non-symbolic* convenience for tests and reports —
        scalable callers should stay on :meth:`count` / :meth:`holds_at`.
        """
        if self._source is not None:
            return frozenset(
                state for state in self._source.states if self.holds_at(node, state)
            )
        if self._decode_assignment is None:
            raise BDDError("this symbolic structure has no state decoder")
        constrained = self.manager.apply_and(node, self._domain)
        return frozenset(
            self._decode_assignment(model)
            for model in self.manager.iter_models(constrained, self._current_levels)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        descriptor = self._name or "SymbolicKripkeStructure"
        return "<Symbolic %s: %d bits, %d states, %d transition parts>" % (
            descriptor,
            self._num_bits,
            self.num_states,
            len(self._transition_parts),
        )

    # -- construction from an explicit structure ------------------------------------

    @classmethod
    def from_explicit(cls, structure: KripkeStructure) -> "SymbolicKripkeStructure":
        """Binary-encode an explicit structure (state ``i`` ↦ bit pattern of ``i``).

        State indices follow the same deterministic repr-sort as
        :class:`~repro.kripke.compiled.CompiledKripkeStructure`, so the two
        compiled forms of one structure agree on which state is which.
        """
        compiled = compile_structure(structure)
        source = compiled.source
        n = compiled.num_states
        bits = max(1, (n - 1).bit_length())
        manager = BDDManager()

        def cube_of(index: int, offset: int) -> int:
            return manager.cube(
                {2 * bit + offset: bool(index >> bit & 1) for bit in range(bits)}
            )

        current_cubes = [cube_of(index, 0) for index in range(n)]
        next_cubes = [cube_of(index, 1) for index in range(n)]

        domain = 0
        for cube in current_cubes:
            domain = manager.apply_or(domain, cube)

        parts: List[int] = []
        for start in range(0, n, _EXPLICIT_PARTITION_CHUNK):
            part = 0
            for index in range(start, min(start + _EXPLICIT_PARTITION_CHUNK, n)):
                targets = 0
                for target in compiled.successors_of(index):
                    targets = manager.apply_or(targets, next_cubes[target])
                part = manager.apply_or(
                    part, manager.apply_and(current_cubes[index], targets)
                )
            parts.append(part)

        prop_nodes: Dict[Label, int] = {}
        for index, state in enumerate(compiled.states):
            for element in source.label(state):
                prop_nodes[element] = manager.apply_or(
                    prop_nodes.get(element, 0), current_cubes[index]
                )

        index_values = (
            source.index_values if isinstance(source, IndexedKripkeStructure) else None
        )

        def encode_assignment(state: State) -> Dict[int, bool]:
            index = compiled.index_of(state)
            return {2 * bit: bool(index >> bit & 1) for bit in range(bits)}

        return cls(
            manager,
            bits,
            parts,
            current_cubes[compiled.initial_index],
            domain,
            prop_nodes,
            index_values=index_values,
            source=source,
            encode_assignment=encode_assignment,
            name=source.name,
        )


def symbolic_structure(structure: KripkeStructure) -> SymbolicKripkeStructure:
    """Encode ``structure``, reusing an existing encoding for the same object.

    Mirrors :func:`repro.kripke.compiled.compile_structure`: structures are
    immutable after construction, so the symbolic form is memoised on the
    structure itself and shared by every checker touching the same object.
    """
    if isinstance(structure, SymbolicKripkeStructure):
        return structure
    cached = getattr(structure, "_symbolic_form", None)
    if cached is None:
        cached = SymbolicKripkeStructure.from_explicit(structure)
        structure._symbolic_form = cached
    return cached


class ProcessFamilyEncoding:
    """Bit-block allocator for encoding a synchronized process family directly.

    Each process of the family gets ``ceil(log2(len(parts)))`` state bits
    encoding which *part* (local situation) it is in; the caller then writes
    the family's global transition rules as BDDs over the per-process
    current/next literals this class hands out, without ever constructing the
    explicit product graph.  See
    :func:`repro.systems.token_ring.symbolic_token_ring` for the canonical
    usage.
    """

    def __init__(
        self,
        manager: BDDManager,
        indices: Sequence[int],
        parts: Sequence[str],
    ) -> None:
        if not indices:
            raise StructureError("a process family needs at least one process")
        if len(set(indices)) != len(indices):
            raise StructureError("process indices must be distinct")
        if len(parts) < 2:
            raise StructureError("a process needs at least two local parts")
        self.manager = manager
        self._indices = tuple(indices)
        self._parts = tuple(parts)
        self._part_codes = {part: code for code, part in enumerate(self._parts)}
        self._bits_per_process = max(1, (len(self._parts) - 1).bit_length())
        self._positions = {index: pos for pos, index in enumerate(self._indices)}
        self._current_cache: Dict[Tuple[int, str], int] = {}
        self._next_cache: Dict[Tuple[int, str], int] = {}
        self._unchanged_cache: Dict[int, int] = {}

    @property
    def indices(self) -> Tuple[int, ...]:
        """The process indices, in bit-block order."""
        return self._indices

    @property
    def parts(self) -> Tuple[str, ...]:
        """The local-part alphabet shared by every process."""
        return self._parts

    @property
    def num_bits(self) -> int:
        """Total state bits of the family encoding."""
        return len(self._indices) * self._bits_per_process

    @property
    def bits_per_process(self) -> int:
        """State bits per process (``ceil(log2(len(parts)))``)."""
        return self._bits_per_process

    def _block(self, index: int) -> int:
        try:
            return self._positions[index] * self._bits_per_process
        except KeyError:
            raise StructureError("%r is not a process index of this family" % (index,)) from None

    def _part_cube(self, index: int, part: str, offset: int) -> int:
        try:
            code = self._part_codes[part]
        except KeyError:
            raise StructureError("%r is not a local part of this family" % (part,)) from None
        block = self._block(index)
        return self.manager.cube(
            {
                2 * (block + bit) + offset: bool(code >> bit & 1)
                for bit in range(self._bits_per_process)
            }
        )

    def current(self, index: int, part: str) -> int:
        """The literal cube "process ``index`` is currently in ``part``"."""
        key = (index, part)
        node = self._current_cache.get(key)
        if node is None:
            node = self._part_cube(index, part, 0)
            self._current_cache[key] = node
        return node

    def next(self, index: int, part: str) -> int:
        """The literal cube "process ``index`` is in ``part`` in the next state"."""
        key = (index, part)
        node = self._next_cache.get(key)
        if node is None:
            node = self._part_cube(index, part, 1)
            self._next_cache[key] = node
        return node

    def current_in(self, index: int, parts: Sequence[str]) -> int:
        """Disjunction of :meth:`current` over several parts."""
        node = 0
        for part in parts:
            node = self.manager.apply_or(node, self.current(index, part))
        return node

    def unchanged(self, index: int) -> int:
        """The frame condition "process ``index`` keeps its current part"."""
        node = self._unchanged_cache.get(index)
        if node is not None:
            return node
        manager = self.manager
        block = self._block(index)
        node = 1
        for bit in reversed(range(self._bits_per_process)):
            level = 2 * (block + bit)
            bit_equal = manager.apply(
                "iff", manager.var(level), manager.var(level + 1)
            )
            node = manager.apply_and(bit_equal, node)
        self._unchanged_cache[index] = node
        return node

    def frame(self, changed: Sequence[int]) -> int:
        """The frame condition for a rule touching only the ``changed`` processes."""
        touched = set(changed)
        node = 1
        for index in self._indices:
            if index not in touched:
                node = self.manager.apply_and(node, self.unchanged(index))
        return node

    @property
    def current_levels(self) -> Tuple[int, ...]:
        """All current-state levels of the family, in order."""
        return tuple(2 * bit for bit in range(self.num_bits))

    def state_cube(self, assignment: Mapping[int, str]) -> int:
        """Encode a full global state (every process mapped to its part)."""
        missing = set(self._indices) - set(assignment)
        if missing:
            raise StructureError(
                "global state leaves processes %s unassigned" % sorted(missing)
            )
        node = 1
        for index in reversed(self._indices):
            node = self.manager.apply_and(self.current(index, assignment[index]), node)
        return node

    def decode(self, model: Mapping[int, bool]) -> Dict[int, str]:
        """Decode a current-level truth assignment into ``{process: part}``."""
        result: Dict[int, str] = {}
        for index in self._indices:
            block = self._block(index)
            code = 0
            for bit in range(self._bits_per_process):
                if model.get(2 * (block + bit), False):
                    code |= 1 << bit
            if code >= len(self._parts):
                raise StructureError(
                    "assignment decodes process %d to invalid part code %d" % (index, code)
                )
            result[index] = self._parts[code]
        return result

    def encode(self, assignment: Mapping[int, str]) -> Dict[int, bool]:
        """Encode ``{process: part}`` as a current-level truth assignment."""
        model: Dict[int, bool] = {}
        for index in self._indices:
            try:
                code = self._part_codes[assignment[index]]
            except KeyError:
                raise StructureError(
                    "global state is missing a valid part for process %d" % index
                ) from None
            block = self._block(index)
            for bit in range(self._bits_per_process):
                model[2 * (block + bit)] = bool(code >> bit & 1)
        return model
