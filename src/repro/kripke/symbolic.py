"""Symbolic (BDD-encoded) Kripke structures with clustered image computation.

Where :class:`repro.kripke.compiled.CompiledKripkeStructure` freezes a
structure into *explicit* integer-indexed arrays, this module encodes it into
*boolean functions* over state bits, so that sets of states and the transition
relation are :mod:`repro.bdd` decision diagrams and never need to be
enumerated.  Two construction paths are provided:

* :meth:`SymbolicKripkeStructure.from_explicit` binary-encodes an existing
  explicit structure (state ``i`` becomes the bit pattern of ``i``) — this is
  what ``engine="bdd"`` uses when handed an ordinary
  :class:`~repro.kripke.structure.KripkeStructure`;
* :class:`ProcessFamilyEncoding` assigns each process of a synchronized
  family its own block of state bits, so the global transition relation of
  the family can be written down *directly* as a disjunction of per-rule
  relations — the explicit product graph is never built.  This is the path
  that unlocks ring sizes the explicit engines cannot reach (see
  :func:`repro.systems.token_ring.symbolic_token_ring`).

Image computation
-----------------
The transition relation is kept *partitioned*.  Each part is either a single
BDD or a sequence of **conjuncts**; parts are assembled into clusters — small
single-BDD parts are OR-merged up to a node-size cap, conjunct-list parts
become conjoin-and-quantify pipelines with an **early-quantification
schedule**: walking the conjuncts in support order, a quantified variable is
eliminated by the fused ``relprod`` as soon as no later conjunct mentions it,
so the intermediate products stay small.  ``preimage`` additionally accepts a
*constraint* set that is conjoined before the first relational product,
confining the whole computation to a caller-supplied candidate set — only
worthwhile when that set is small (a current-vars × next-vars conjunction
multiplies BDD sizes under the interleaved order, which is why the EG
fixpoint of :mod:`repro.mc.symbolic` measured faster without it).

Variable-order convention
-------------------------
State bit ``k`` lives at BDD *variable* ``2k`` (its *current* copy) and
variable ``2k + 1`` (its *next* copy).  Variables are stable ids; the
manager may reorder their levels dynamically (Rudell sifting), and every
current/next pair is registered as a sifting *group* so the pair stays
adjacent and the current↔next renames remain order-preserving under any
order — the encoding therefore survives reorders unchanged.  Everything the
structure stores is held through reference-counted :class:`~repro.bdd.BDDFunction`
handles, so the manager's mark-and-sweep GC and the reorderer treat it as
roots.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.bdd import BDDFunction, BDDManager
from repro.errors import BDDError, StructureError
from repro.kripke.compiled import compile_structure
from repro.kripke.indexed import IndexedKripkeStructure
from repro.kripke.structure import IndexedProp, KripkeStructure, Label, State
from repro.obs import metrics as _metrics
from repro.obs.progress import heartbeat as _heartbeat
from repro.obs.trace import span as _obs_span
from repro.logic.ast import (
    Atom,
    ExactlyOne,
    FalseLiteral,
    Formula,
    IndexedAtom,
    TrueLiteral,
)

__all__ = ["SymbolicKripkeStructure", "ProcessFamilyEncoding", "symbolic_structure"]

#: Chunk size for partitioning the transition relation of explicit encodings.
_EXPLICIT_PARTITION_CHUNK = 256

#: Node-count cap when OR-merging small relation parts into one cluster.
_CLUSTER_NODE_CAP = 2048

#: A transition part as accepted by the constructor: one BDD edge, or a
#: sequence of conjunct edges to be conjoined with early quantification.
TransitionPart = Union[int, Sequence[int]]


class _Cluster:
    """One disjunct of the partitioned relation, with quantification schedules.

    ``pre_schedule``/``img_schedule`` are sequences of ``(conjunct,
    quantify_now)`` steps: conjoin the conjunct and eliminate exactly the
    quantified variables no later conjunct mentions.
    """

    __slots__ = ("conjuncts", "pre_schedule", "img_schedule")

    def __init__(
        self,
        conjuncts: Tuple[BDDFunction, ...],
        pre_schedule: Tuple[Tuple[BDDFunction, Tuple[int, ...]], ...],
        img_schedule: Tuple[Tuple[BDDFunction, Tuple[int, ...]], ...],
    ) -> None:
        self.conjuncts = conjuncts
        self.pre_schedule = pre_schedule
        self.img_schedule = img_schedule


def _schedule(
    conjuncts: Sequence[BDDFunction], quantify: Sequence[int]
) -> Tuple[Tuple[BDDFunction, Tuple[int, ...]], ...]:
    """Early-quantification schedule: eliminate each variable at its last mention.

    The target of the relational product is assumed to mention every
    quantified variable, so a variable can be eliminated at step ``i`` iff no
    conjunct after ``i`` mentions it; variables no conjunct mentions at all
    are eliminated in the first step.
    """
    supports = [conjunct.support() for conjunct in conjuncts]
    quantify_set = set(quantify)
    steps: List[Tuple[BDDFunction, Tuple[int, ...]]] = []
    seen_later: set = set()
    released: List[set] = []
    for support in reversed(supports):
        released.insert(0, (support - seen_later) & quantify_set)
        seen_later |= support
    unmentioned = quantify_set - seen_later
    for index, conjunct in enumerate(conjuncts):
        now = released[index]
        if index == 0:
            now = now | unmentioned
        steps.append((conjunct, tuple(sorted(now))))
    return tuple(steps)


class SymbolicKripkeStructure:
    """A Kripke structure encoded as BDDs over current/next state bits.

    Parameters
    ----------
    manager:
        The BDD manager owning every node below.
    num_bits:
        The number of state bits; current copies live at variables
        ``0, 2, …`` and next copies at ``1, 3, …``.
    transition_parts:
        The partitioned transition relation: a sequence of parts whose
        disjunction is ``R`` as a function of current *and* next variables.
        Each part is a single edge or a sequence of conjunct edges (clusters
        with early-quantification scheduling — see the module docstring).
    initial:
        The characteristic function of ``{s0}`` over current variables.
    domain:
        The characteristic function of the state set ``S`` over current
        variables, or ``None`` to take ``S`` to be the states reachable from
        ``initial`` (computed symbolically at construction).
    prop_nodes:
        Per-proposition characteristic functions over current variables.
    index_values:
        The index set ``I`` when the structure is indexed (enables ``Θ``).
    source:
        The explicit structure this encoding came from, when there is one.
    encode_assignment / decode_assignment:
        Callbacks translating between states and ``{var: bool}`` truth
        assignments over the current variables.
    """

    def __init__(
        self,
        manager: BDDManager,
        num_bits: int,
        transition_parts: Sequence[TransitionPart],
        initial: int,
        domain: Optional[int],
        prop_nodes: Mapping[Label, int],
        index_values: Optional[FrozenSet[int]] = None,
        source: Optional[KripkeStructure] = None,
        encode_assignment: Optional[Callable[[State], Dict[int, bool]]] = None,
        decode_assignment: Optional[Callable[[Mapping[int, bool]], State]] = None,
        name: Optional[str] = None,
        cluster_node_cap: int = _CLUSTER_NODE_CAP,
    ) -> None:
        if num_bits < 1:
            raise StructureError("a symbolic structure needs at least one state bit")
        # The whole encode (cluster build + reachable domain when needed)
        # is one "build.encode" span, so traces show where setup time goes
        # before any check starts.
        with _obs_span("build.encode") as sp:
            self._initialise(
                manager,
                num_bits,
                transition_parts,
                initial,
                domain,
                prop_nodes,
                index_values,
                source,
                encode_assignment,
                decode_assignment,
                name,
                cluster_node_cap,
            )
            sp.set(name=name, bits=num_bits, clusters=len(self._clusters))
        _metrics.gauge("build.state_bits").set(num_bits)
        _metrics.gauge("build.clusters").set(len(self._clusters))

    def _initialise(
        self,
        manager,
        num_bits,
        transition_parts,
        initial,
        domain,
        prop_nodes,
        index_values,
        source,
        encode_assignment,
        decode_assignment,
        name,
        cluster_node_cap,
    ) -> None:
        self.manager = manager
        self._num_bits = num_bits
        self._current_vars = tuple(2 * bit for bit in range(num_bits))
        self._next_vars = tuple(2 * bit + 1 for bit in range(num_bits))
        self._c2n = {2 * bit: 2 * bit + 1 for bit in range(num_bits)}
        self._n2c = {2 * bit + 1: 2 * bit for bit in range(num_bits)}
        for var in self._current_vars + self._next_vars:
            manager.var(var)
        # Keep every current/next pair a sifting block so the c2n/n2c renames
        # stay order-preserving under any dynamic reorder.  Groups already
        # registered on a *shared* manager (another encoding's pairs) are
        # preserved by merging them into the request; a manager that was
        # already reordered incompatibly simply keeps its existing blocks.
        pairs = {(2 * bit, 2 * bit + 1) for bit in range(num_bits)}
        mine = {var for pair in pairs for var in pair}
        for group in manager.variable_groups():
            if not mine.intersection(group):
                pairs.add(tuple(group))
        try:
            manager.set_variable_groups(sorted(pairs))
        except BDDError:  # pragma: no cover - shared-manager corner case
            pass
        self._clusters = self._build_clusters(transition_parts, cluster_node_cap)
        self._initial = BDDFunction(manager, initial)
        self._true = BDDFunction.true(manager)
        self._false = BDDFunction.false(manager)
        if domain is None:
            self._domain: Optional[BDDFunction] = None
            self._domain = self._reachable_fn()
        else:
            self._domain = BDDFunction(manager, domain)
        self._prop_nodes: Dict[Label, BDDFunction] = {
            label: BDDFunction(manager, node) for label, node in prop_nodes.items()
        }
        self._index_values = index_values
        self._source = source
        self._encode_assignment = encode_assignment
        self._decode_assignment = decode_assignment
        self._name = name
        self._exactly_one_nodes: Dict[str, BDDFunction] = {}
        self._transition_total: Optional[BDDFunction] = None

    # -- cluster construction ------------------------------------------------

    def _build_clusters(
        self, transition_parts: Sequence[TransitionPart], cap: int
    ) -> Tuple[_Cluster, ...]:
        manager = self.manager
        singles: List[int] = []
        multis: List[Tuple[int, ...]] = []
        for part in transition_parts:
            if isinstance(part, int):
                conjuncts: Tuple[int, ...] = (part,)
            else:
                conjuncts = tuple(part)
            if not conjuncts:
                continue
            if len(conjuncts) > 1:
                # Adaptive flattening: a conjunct part whose conjunction stays
                # small is cheaper as one BDD (one fused relational product
                # instead of a pipeline); parts that would blow past the cap
                # keep their conjoin-and-quantify schedule.
                flat = conjuncts[0]
                for conjunct in conjuncts[1:]:
                    flat = manager.apply_and(flat, conjunct)
                    if flat != 0 and manager.node_count(flat) > cap:
                        flat = None
                        break
                if flat is None:
                    multis.append(conjuncts)
                    continue
                conjuncts = (flat,)
            if conjuncts[0] != 0:
                singles.append(conjuncts[0])
        # OR-merge small single-BDD parts into clusters bounded by `cap`
        # nodes, ordered by support so related parts land together.
        singles.sort(key=lambda edge: tuple(sorted(manager.support(edge))))
        merged: List[int] = []
        accumulator = 0
        for edge in singles:
            candidate = manager.apply_or(accumulator, edge)
            if accumulator != 0 and manager.node_count(candidate) > cap:
                merged.append(accumulator)
                accumulator = edge
            else:
                accumulator = candidate
        if accumulator != 0:
            merged.append(accumulator)
        clusters: List[_Cluster] = []
        for conjunct_edges in [(edge,) for edge in merged] + multis:
            conjuncts = tuple(
                BDDFunction(manager, edge) for edge in conjunct_edges
            )
            clusters.append(
                _Cluster(
                    conjuncts,
                    _schedule(conjuncts, self._next_vars),
                    _schedule(conjuncts, self._current_vars),
                )
            )
        return tuple(clusters)

    # -- basic accessors -----------------------------------------------------

    @property
    def name(self) -> Optional[str]:
        """Optional human-readable name of the structure."""
        return self._name

    @property
    def num_bits(self) -> int:
        """The number of state bits (half the number of BDD variables in use)."""
        return self._num_bits

    @property
    def current_levels(self) -> Tuple[int, ...]:
        """The BDD variables carrying the current-state bits (``0, 2, 4, …``)."""
        return self._current_vars

    @property
    def next_levels(self) -> Tuple[int, ...]:
        """The BDD variables carrying the next-state bits (``1, 3, 5, …``)."""
        return self._next_vars

    @property
    def initial(self) -> int:
        """The edge encoding ``{s0}``."""
        return self._initial.node

    @property
    def domain(self) -> int:
        """The edge encoding the state set ``S``."""
        return self._domain.node

    @property
    def transition_parts(self) -> Tuple[Tuple[int, ...], ...]:
        """The clustered transition relation, one conjunct tuple per cluster."""
        return tuple(
            tuple(conjunct.node for conjunct in cluster.conjuncts)
            for cluster in self._clusters
        )

    @property
    def index_values(self) -> Optional[FrozenSet[int]]:
        """The index set ``I`` when the source family is indexed."""
        return self._index_values

    @property
    def source(self) -> Optional[KripkeStructure]:
        """The explicit structure this encoding was built from, if any."""
        return self._source

    def function(self, node: int) -> BDDFunction:
        """Wrap a raw edge of this structure's manager in a refcounted handle."""
        return BDDFunction(self.manager, node)

    @property
    def transition(self) -> int:
        """The monolithic transition relation (the disjunction of the clusters)."""
        if self._transition_total is None:
            total = self._false
            for cluster in self._clusters:
                conjunction = self._true
                for conjunct in cluster.conjuncts:
                    conjunction = conjunction & conjunct
                total = total | conjunction
            self._transition_total = total
        return self._transition_total.node

    # -- counting ---------------------------------------------------------------

    @property
    def num_states(self) -> int:
        """``|S|`` computed by BDD satisfy-count — no state is ever enumerated."""
        return self._domain.sat_count(self._current_vars)

    @property
    def num_transitions(self) -> int:
        """``|R ∩ (S × S)|`` via satisfy-count over current and next variables."""
        domain = self._domain
        pairs = self.function(self.transition) & domain & domain.rename(self._c2n)
        return pairs.sat_count(self._current_vars + self._next_vars)

    def count(self, node: int) -> int:
        """The number of domain states in the set encoded by ``node``."""
        return (self.function(node) & self._domain).sat_count(self._current_vars)

    # -- images ------------------------------------------------------------------

    def preimage_fn(
        self, target: BDDFunction, constraint: Optional[BDDFunction] = None
    ) -> BDDFunction:
        """States of ``S`` with a successor in ``target`` (the EX pre-image).

        ``target`` must be a function of current variables only; it is
        renamed to next variables and each cluster runs its conjoin-and-
        quantify schedule.  ``constraint`` (over current variables) is
        conjoined before the first relational product of every cluster,
        confining the whole computation to it; the result then equals
        ``constraint ∧ preimage(target)``.  Only profitable when the
        constraint is *small* — see the module docstring.
        """
        renamed = target.rename(self._c2n)
        if constraint is not None:
            renamed = renamed & constraint
        total = self._false
        for cluster in self._clusters:
            accumulator = renamed
            for conjunct, quantify_now in cluster.pre_schedule:
                accumulator = accumulator.relprod(conjunct, quantify_now)
                if accumulator.is_false:
                    break
            total = total | accumulator
        return total & self._domain

    def preimage(self, node: int, constraint: Optional[int] = None) -> int:
        """Raw-edge convenience wrapper of :meth:`preimage_fn`."""
        return self.preimage_fn(
            self.function(node),
            None if constraint is None else self.function(constraint),
        ).node

    def image_fn(self, source: BDDFunction) -> BDDFunction:
        """Successors of the states in ``source`` (post-image), over current variables."""
        total = self._false
        for cluster in self._clusters:
            accumulator = source
            for conjunct, quantify_now in cluster.img_schedule:
                accumulator = accumulator.relprod(conjunct, quantify_now)
                if accumulator.is_false:
                    break
            total = total | accumulator
        return total.rename(self._n2c)

    def image(self, node: int) -> int:
        """Raw-edge convenience wrapper of :meth:`image_fn`."""
        return self.image_fn(self.function(node)).node

    def _reachable_fn(self) -> BDDFunction:
        with _obs_span("bdd.reachable") as sp:
            domain = self._domain
            current = self._initial if domain is None else self._initial & domain
            frontier = current
            rounds = 0
            while not frontier.is_false:
                rounds += 1
                _heartbeat(
                    "bdd", fixpoint="reachable", round=rounds, live=self.manager._live
                )
                fresh = self.image_fn(frontier)
                if domain is not None:
                    fresh = fresh & domain
                frontier = fresh & ~current
                current = current | frontier
            sp.set(rounds=rounds)
        _metrics.counter("bdd.reachable.rounds").inc(rounds)
        return current

    def reachable(self) -> int:
        """The least fixpoint of post-images from the initial state."""
        return self._reachable_fn().node

    def complement(self, node: int) -> int:
        """The complement of ``node`` *relative to the state set* ``S``."""
        manager = self.manager
        return manager.apply_and(self._domain.node, manager.negate(node))

    def is_total(self) -> bool:
        """Return ``True`` when every domain state has at least one successor."""
        has_successor = self.preimage_fn(self._true)
        return (self._domain & ~has_successor).is_false

    # -- atomic satisfaction -------------------------------------------------------

    def atom_node(self, formula: Formula) -> int:
        """The characteristic function of an atomic formula (cf. ``atom_mask``)."""
        manager = self.manager
        domain = self._domain
        if isinstance(formula, TrueLiteral):
            return domain.node
        if isinstance(formula, FalseLiteral):
            return 0
        if isinstance(formula, Atom):
            prop = self._prop_nodes.get(formula.name)
            return 0 if prop is None else manager.apply_and(prop.node, domain.node)
        if isinstance(formula, IndexedAtom):
            prop = self._prop_nodes.get(IndexedProp(formula.name, formula.index))
            return 0 if prop is None else manager.apply_and(prop.node, domain.node)
        if isinstance(formula, ExactlyOne):
            return self._exactly_one_node(formula.name)
        raise StructureError("atom_node expects an atomic formula, got %r" % (formula,))

    def _exactly_one_node(self, name: str) -> int:
        if self._index_values is None:
            raise StructureError(
                "the Θ ('exactly one') proposition is only meaningful on an "
                "indexed structure with a known index set"
            )
        cached = self._exactly_one_nodes.get(name)
        if cached is not None:
            return cached.node
        # Same one-pass "at least one"/"at least two" trick as the compiled
        # engine, but on characteristic functions instead of bitmasks.
        at_least_one = self._false
        at_least_two = self._false
        for value in sorted(self._index_values):
            prop = self._prop_nodes.get(IndexedProp(name, value))
            if prop is None:
                continue
            at_least_two = at_least_two | (at_least_one & prop)
            at_least_one = at_least_one | prop
        result = at_least_one & ~at_least_two & self._domain
        self._exactly_one_nodes[name] = result
        return result.node

    # -- state <-> assignment translation ------------------------------------------

    def encode_state(self, state: State) -> Dict[int, bool]:
        """The current-variable truth assignment encoding ``state``."""
        if self._encode_assignment is None:
            raise BDDError("this symbolic structure has no state encoder")
        return self._encode_assignment(state)

    def decode_state(self, model: Mapping[int, bool]) -> State:
        """Decode a current-variable truth assignment into one source state.

        Family encodings use their ``decode_assignment`` callback; explicit
        encodings invert the binary state numbering of
        :meth:`from_explicit`.  This is how the SAT-based bounded model
        checker (:mod:`repro.mc.bmc`) turns solver models back into genuine
        counterexample states.
        """
        if self._decode_assignment is not None:
            return self._decode_assignment(model)
        if self._source is not None:
            compiled = compile_structure(self._source)
            index = 0
            for bit in range(self._num_bits):
                if model.get(2 * bit, False):
                    index |= 1 << bit
            if index >= compiled.num_states:
                raise BDDError(
                    "assignment decodes to state index %d, outside the %d-state "
                    "source structure" % (index, compiled.num_states)
                )
            return compiled.states[index]
        raise BDDError("this symbolic structure has no state decoder")

    def holds_at(self, node: int, state: State) -> bool:
        """Decide whether ``state`` belongs to the set encoded by ``node``."""
        return self.manager.evaluate(node, self.encode_state(state))

    def states_of(self, node: int) -> FrozenSet[State]:
        """Decode a state-set function back into a frozenset of states.

        With an explicit source the states are evaluated one by one (exact
        and cheap for the structure sizes where decoding matters); family
        encodings decode the satisfying assignments instead.  Either way this
        is an explicitly *non-symbolic* convenience for tests and reports —
        scalable callers should stay on :meth:`count` / :meth:`holds_at`.
        """
        if self._source is not None:
            return frozenset(
                state for state in self._source.states if self.holds_at(node, state)
            )
        if self._decode_assignment is None:
            raise BDDError("this symbolic structure has no state decoder")
        constrained = self.manager.apply_and(node, self._domain.node)
        return frozenset(
            self._decode_assignment(model)
            for model in self.manager.iter_models(constrained, self._current_vars)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        descriptor = self._name or "SymbolicKripkeStructure"
        return "<Symbolic %s: %d bits, %d states, %d transition clusters>" % (
            descriptor,
            self._num_bits,
            self.num_states,
            len(self._clusters),
        )

    # -- construction from an explicit structure ------------------------------------

    @classmethod
    def from_explicit(cls, structure: KripkeStructure) -> "SymbolicKripkeStructure":
        """Binary-encode an explicit structure (state ``i`` ↦ bit pattern of ``i``).

        State indices follow the same deterministic repr-sort as
        :class:`~repro.kripke.compiled.CompiledKripkeStructure`, so the two
        compiled forms of one structure agree on which state is which.
        """
        with _obs_span("build.compile", kind="explicit_to_symbolic") as sp:
            compiled = compile_structure(structure)
            n = compiled.num_states
            sp.set(states=n)
        source = compiled.source
        bits = max(1, (n - 1).bit_length())
        manager = BDDManager()

        def cube_of(index: int, offset: int) -> int:
            return manager.cube(
                {2 * bit + offset: bool(index >> bit & 1) for bit in range(bits)}
            )

        current_cubes = [cube_of(index, 0) for index in range(n)]
        next_cubes = [cube_of(index, 1) for index in range(n)]

        domain = 0
        for cube in current_cubes:
            domain = manager.apply_or(domain, cube)

        parts: List[int] = []
        for start in range(0, n, _EXPLICIT_PARTITION_CHUNK):
            part = 0
            for index in range(start, min(start + _EXPLICIT_PARTITION_CHUNK, n)):
                targets = 0
                for target in compiled.successors_of(index):
                    targets = manager.apply_or(targets, next_cubes[target])
                part = manager.apply_or(
                    part, manager.apply_and(current_cubes[index], targets)
                )
            parts.append(part)

        prop_nodes: Dict[Label, int] = {}
        for index, state in enumerate(compiled.states):
            for element in source.label(state):
                prop_nodes[element] = manager.apply_or(
                    prop_nodes.get(element, 0), current_cubes[index]
                )

        index_values = (
            source.index_values if isinstance(source, IndexedKripkeStructure) else None
        )

        def encode_assignment(state: State) -> Dict[int, bool]:
            index = compiled.index_of(state)
            return {2 * bit: bool(index >> bit & 1) for bit in range(bits)}

        return cls(
            manager,
            bits,
            parts,
            current_cubes[compiled.initial_index],
            domain,
            prop_nodes,
            index_values=index_values,
            source=source,
            encode_assignment=encode_assignment,
            name=source.name,
        )


def symbolic_structure(structure: KripkeStructure) -> SymbolicKripkeStructure:
    """Encode ``structure``, reusing an existing encoding for the same object.

    Mirrors :func:`repro.kripke.compiled.compile_structure`: structures are
    immutable after construction, so the symbolic form is memoised on the
    structure itself and shared by every checker touching the same object.
    """
    if isinstance(structure, SymbolicKripkeStructure):
        return structure
    cached = getattr(structure, "_symbolic_form", None)
    if cached is None:
        cached = SymbolicKripkeStructure.from_explicit(structure)
        structure._symbolic_form = cached
    return cached


class ProcessFamilyEncoding:
    """Bit-block allocator for encoding a synchronized process family directly.

    Each process of the family gets ``ceil(log2(len(parts)))`` state bits
    encoding which *part* (local situation) it is in; the caller then writes
    the family's global transition rules as BDDs over the per-process
    current/next literals this class hands out, without ever constructing the
    explicit product graph.  Every cached literal is externally referenced,
    so the construction is safe across garbage collections.  See
    :func:`repro.systems.token_ring.symbolic_token_ring` for the canonical
    usage.
    """

    def __init__(
        self,
        manager: BDDManager,
        indices: Sequence[int],
        parts: Sequence[str],
    ) -> None:
        if not indices:
            raise StructureError("a process family needs at least one process")
        if len(set(indices)) != len(indices):
            raise StructureError("process indices must be distinct")
        if len(parts) < 2:
            raise StructureError("a process needs at least two local parts")
        self.manager = manager
        self._indices = tuple(indices)
        self._parts = tuple(parts)
        self._part_codes = {part: code for code, part in enumerate(self._parts)}
        self._bits_per_process = max(1, (len(self._parts) - 1).bit_length())
        self._positions = {index: pos for pos, index in enumerate(self._indices)}
        self._current_cache: Dict[Tuple[int, str], int] = {}
        self._next_cache: Dict[Tuple[int, str], int] = {}
        self._unchanged_cache: Dict[int, int] = {}

    @property
    def indices(self) -> Tuple[int, ...]:
        """The process indices, in bit-block order."""
        return self._indices

    @property
    def parts(self) -> Tuple[str, ...]:
        """The local-part alphabet shared by every process."""
        return self._parts

    @property
    def num_bits(self) -> int:
        """Total state bits of the family encoding."""
        return len(self._indices) * self._bits_per_process

    @property
    def bits_per_process(self) -> int:
        """State bits per process (``ceil(log2(len(parts)))``)."""
        return self._bits_per_process

    def _block(self, index: int) -> int:
        try:
            return self._positions[index] * self._bits_per_process
        except KeyError:
            raise StructureError("%r is not a process index of this family" % (index,)) from None

    def _part_cube(self, index: int, part: str, offset: int) -> int:
        try:
            code = self._part_codes[part]
        except KeyError:
            raise StructureError("%r is not a local part of this family" % (part,)) from None
        block = self._block(index)
        return self.manager.cube(
            {
                2 * (block + bit) + offset: bool(code >> bit & 1)
                for bit in range(self._bits_per_process)
            }
        )

    def current(self, index: int, part: str) -> int:
        """The literal cube "process ``index`` is currently in ``part``"."""
        key = (index, part)
        node = self._current_cache.get(key)
        if node is None:
            node = self.manager.incref(self._part_cube(index, part, 0))
            self._current_cache[key] = node
        return node

    def next(self, index: int, part: str) -> int:
        """The literal cube "process ``index`` is in ``part`` in the next state"."""
        key = (index, part)
        node = self._next_cache.get(key)
        if node is None:
            node = self.manager.incref(self._part_cube(index, part, 1))
            self._next_cache[key] = node
        return node

    def current_in(self, index: int, parts: Sequence[str]) -> int:
        """Disjunction of :meth:`current` over several parts."""
        node = 0
        for part in parts:
            node = self.manager.apply_or(node, self.current(index, part))
        return node

    def unchanged(self, index: int) -> int:
        """The frame condition "process ``index`` keeps its current part"."""
        node = self._unchanged_cache.get(index)
        if node is not None:
            return node
        manager = self.manager
        block = self._block(index)
        node = 1
        for bit in reversed(range(self._bits_per_process)):
            var = 2 * (block + bit)
            bit_equal = manager.apply(
                "iff", manager.var(var), manager.var(var + 1)
            )
            node = manager.apply_and(bit_equal, node)
        self._unchanged_cache[index] = manager.incref(node)
        return node

    def frame(self, changed: Sequence[int]) -> int:
        """The frame condition for a rule touching only the ``changed`` processes."""
        touched = set(changed)
        node = 1
        for index in self._indices:
            if index not in touched:
                node = self.manager.apply_and(node, self.unchanged(index))
        return node

    @property
    def current_levels(self) -> Tuple[int, ...]:
        """All current-state variables of the family, in order."""
        return tuple(2 * bit for bit in range(self.num_bits))

    def state_cube(self, assignment: Mapping[int, str]) -> int:
        """Encode a full global state (every process mapped to its part)."""
        missing = set(self._indices) - set(assignment)
        if missing:
            raise StructureError(
                "global state leaves processes %s unassigned" % sorted(missing)
            )
        node = 1
        for index in reversed(self._indices):
            node = self.manager.apply_and(self.current(index, assignment[index]), node)
        return node

    def decode(self, model: Mapping[int, bool]) -> Dict[int, str]:
        """Decode a current-variable truth assignment into ``{process: part}``."""
        result: Dict[int, str] = {}
        for index in self._indices:
            block = self._block(index)
            code = 0
            for bit in range(self._bits_per_process):
                if model.get(2 * (block + bit), False):
                    code |= 1 << bit
            if code >= len(self._parts):
                raise StructureError(
                    "assignment decodes process %d to invalid part code %d" % (index, code)
                )
            result[index] = self._parts[code]
        return result

    def encode(self, assignment: Mapping[int, str]) -> Dict[int, bool]:
        """Encode ``{process: part}`` as a current-variable truth assignment."""
        model: Dict[int, bool] = {}
        for index in self._indices:
            try:
                code = self._part_codes[assignment[index]]
            except KeyError:
                raise StructureError(
                    "global state is missing a valid part for process %d" % index
                ) from None
            block = self._block(index)
            for bit in range(self._bits_per_process):
                model[2 * (block + bit)] = bool(code >> bit & 1)
        return model
