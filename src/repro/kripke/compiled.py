"""Compiled explicit-state representation of a Kripke structure.

The naive model checkers iterate Python ``frozenset``s of hashable states,
which dominates the running time of every fixpoint once the token-ring/product
structures grow.  :class:`CompiledKripkeStructure` freezes a
:class:`~repro.kripke.structure.KripkeStructure` into integer-indexed arrays:

* a state table assigning each state a dense index in ``range(|S|)``;
* successor/predecessor adjacency lists (tuples of state indices) plus the
  same relations as per-state *bitmasks* stored in arbitrary-precision ints;
* one bitmask per atomic proposition recording the states it labels.

A set of states is then a single Python int (bit ``i`` set iff state ``i`` is
in the set), so complement, union and intersection are one machine-word-per-64
-states operations instead of per-element hash lookups.  The compiled form is
immutable and shared: compile once, check a whole family of formulas against
it (see :class:`repro.mc.bitset.BitsetCTLModelChecker`).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.errors import StructureError
from repro.kripke.indexed import IndexedKripkeStructure
from repro.kripke.structure import (
    IndexedProp,
    KripkeStructure,
    Label,
    State,
)
from repro.logic.ast import (
    Atom,
    ExactlyOne,
    FalseLiteral,
    Formula,
    IndexedAtom,
    TrueLiteral,
)

__all__ = ["CompiledKripkeStructure", "bits_of", "popcount", "compile_structure"]


try:  # int.bit_count is Python >= 3.10; keep 3.9 working.
    (0).bit_count

    def popcount(mask: int) -> int:
        """The number of set bits in ``mask`` (the size of the encoded state set)."""
        return mask.bit_count()

except AttributeError:  # pragma: no cover - exercised only on Python 3.9

    def popcount(mask: int) -> int:
        """The number of set bits in ``mask`` (the size of the encoded state set)."""
        return bin(mask).count("1")


def bits_of(mask: int) -> Iterator[int]:
    """Yield the indices of the set bits of ``mask`` in increasing order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class CompiledKripkeStructure:
    """An immutable integer-indexed view of a Kripke structure.

    Parameters
    ----------
    source:
        The structure to compile.  Indexed structures keep their index set so
        that the ``Θ_i P_i`` proposition stays decidable on the compiled form.

    Notes
    -----
    State indices are assigned by sorting states on their ``repr`` — the same
    deterministic order :meth:`KripkeStructure.to_dict` uses — so two compiles
    of the same structure agree bit-for-bit.
    """

    def __init__(self, source: KripkeStructure) -> None:
        self._source = source
        ordered = sorted(source.states, key=repr)
        self._state_of: Tuple[State, ...] = tuple(ordered)
        self._index_of: Dict[State, int] = {state: i for i, state in enumerate(ordered)}
        n = len(ordered)
        self._num_states = n
        self._all_mask = (1 << n) - 1
        self._initial_index = self._index_of[source.initial_state]

        succ_lists: List[Tuple[int, ...]] = []
        succ_masks: List[int] = []
        for state in ordered:
            targets = sorted(self._index_of[t] for t in source.successors(state))
            succ_lists.append(tuple(targets))
            mask = 0
            for t in targets:
                mask |= 1 << t
            succ_masks.append(mask)
        pred_sets: List[List[int]] = [[] for _ in range(n)]
        for i, targets in enumerate(succ_lists):
            for t in targets:
                pred_sets[t].append(i)
        self._succ_lists = tuple(succ_lists)
        self._succ_masks = tuple(succ_masks)
        self._pred_lists = tuple(tuple(sources) for sources in pred_sets)
        pred_masks: List[int] = []
        for sources in pred_sets:
            mask = 0
            for s in sources:
                mask |= 1 << s
            pred_masks.append(mask)
        self._pred_masks = tuple(pred_masks)

        prop_masks: Dict[Label, int] = {}
        for i, state in enumerate(ordered):
            bit = 1 << i
            for element in source.label(state):
                prop_masks[element] = prop_masks.get(element, 0) | bit
        self._prop_masks = prop_masks

        if isinstance(source, IndexedKripkeStructure):
            self._index_values: Optional[FrozenSet[int]] = source.index_values
        else:
            self._index_values = None
        self._exactly_one_masks: Dict[str, int] = {}

    # -- basic accessors -----------------------------------------------------

    @property
    def source(self) -> KripkeStructure:
        """The structure this compilation was built from."""
        return self._source

    @property
    def num_states(self) -> int:
        """``|S|``."""
        return self._num_states

    @property
    def num_transitions(self) -> int:
        """``|R|``."""
        return sum(len(targets) for targets in self._succ_lists)

    @property
    def all_mask(self) -> int:
        """The bitmask encoding the full state set ``S``."""
        return self._all_mask

    @property
    def initial_index(self) -> int:
        """The index of the initial state ``s0``."""
        return self._initial_index

    @property
    def states(self) -> Tuple[State, ...]:
        """The state table: ``states[i]`` is the state with index ``i``."""
        return self._state_of

    def index_of(self, state: State) -> int:
        """The dense index assigned to ``state``."""
        try:
            return self._index_of[state]
        except KeyError:
            raise StructureError("%r is not a state of this structure" % (state,)) from None

    def state_of(self, index: int) -> State:
        """The state with dense index ``index``."""
        return self._state_of[index]

    def successors_of(self, index: int) -> Tuple[int, ...]:
        """Successor indices of the state with index ``index``."""
        return self._succ_lists[index]

    def predecessors_of(self, index: int) -> Tuple[int, ...]:
        """Predecessor indices of the state with index ``index``."""
        return self._pred_lists[index]

    def successor_mask(self, index: int) -> int:
        """Successors of state ``index`` as a bitmask."""
        return self._succ_masks[index]

    def predecessor_mask(self, index: int) -> int:
        """Predecessors of state ``index`` as a bitmask."""
        return self._pred_masks[index]

    def is_total(self) -> bool:
        """Return ``True`` when every state has at least one successor."""
        return all(self._succ_masks)

    # -- set <-> mask conversions ---------------------------------------------

    def mask_of(self, states: Iterable[State]) -> int:
        """Encode an iterable of states as a bitmask."""
        mask = 0
        index_of = self._index_of
        for state in states:
            try:
                mask |= 1 << index_of[state]
            except KeyError:
                raise StructureError("%r is not a state of this structure" % (state,)) from None
        return mask

    def states_of(self, mask: int) -> FrozenSet[State]:
        """Decode a bitmask back into a frozenset of states."""
        state_of = self._state_of
        return frozenset(state_of[i] for i in bits_of(mask))

    # -- atomic satisfaction ---------------------------------------------------

    def atom_mask(self, formula: Formula) -> int:
        """The bitmask of states satisfying an atomic formula.

        Handles ``true``/``false``, plain atoms, indexed atoms with concrete
        indices, and — when the source is an indexed structure — the
        ``Θ_i P_i`` ("exactly one") proposition.
        """
        if isinstance(formula, TrueLiteral):
            return self._all_mask
        if isinstance(formula, FalseLiteral):
            return 0
        if isinstance(formula, Atom):
            return self._prop_masks.get(formula.name, 0)
        if isinstance(formula, IndexedAtom):
            return self._prop_masks.get(IndexedProp(formula.name, formula.index), 0)
        if isinstance(formula, ExactlyOne):
            return self._exactly_one_mask(formula.name)
        raise StructureError("atom_mask expects an atomic formula, got %r" % (formula,))

    def _exactly_one_mask(self, name: str) -> int:
        if self._index_values is None:
            raise StructureError(
                "the Θ ('exactly one') proposition is only meaningful on an "
                "IndexedKripkeStructure with a known index set"
            )
        cached = self._exactly_one_masks.get(name)
        if cached is not None:
            return cached
        # A state satisfies Θ_i P_i iff exactly one index value labels it with
        # P; track "at least one" and "at least two" masks in one pass.
        at_least_one = 0
        at_least_two = 0
        for value in self._index_values:
            value_mask = self._prop_masks.get(IndexedProp(name, value), 0)
            at_least_two |= at_least_one & value_mask
            at_least_one |= value_mask
        result = at_least_one & ~at_least_two
        self._exactly_one_masks[name] = result
        return result

    # -- bulk transition images -------------------------------------------------

    def preimage(self, target: int) -> int:
        """States with at least one successor in ``target`` (the EX pre-image)."""
        result = 0
        pred_masks = self._pred_masks
        for i in bits_of(target):
            result |= pred_masks[i]
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        name = self._source.name or self._source.__class__.__name__
        return "<Compiled %s: %d states, %d transitions>" % (
            name,
            self._num_states,
            self.num_transitions,
        )


def compile_structure(structure: KripkeStructure) -> CompiledKripkeStructure:
    """Compile ``structure``, reusing an existing compilation for the same object.

    Structures are immutable after construction, so the compiled form is
    memoised on the structure itself: every checker/oracle touching the same
    object shares one compilation, and the memo's lifetime is exactly the
    structure's (no global cache to leak).
    """
    if isinstance(structure, CompiledKripkeStructure):
        return structure
    cached = getattr(structure, "_compiled_form", None)
    if cached is None:
        from repro.obs import metrics as _metrics
        from repro.obs.trace import span as _span

        with _span("build.compile", kind="bitset") as sp:
            cached = CompiledKripkeStructure(structure)
            sp.set(states=cached.num_states)
        _metrics.gauge("build.states").set(cached.num_states)
        structure._compiled_form = cached
    return cached
