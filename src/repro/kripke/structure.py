"""Kripke structures: the models of CTL* (Section 2 of the paper).

A Kripke structure is a tuple ``M = (S, R, L, s0)`` where ``S`` is a finite
set of states, ``R ⊆ S × S`` is a *total* transition relation, ``L`` labels
each state with the atomic propositions true in it, and ``s0`` is the initial
state.

States are arbitrary hashable Python objects — the library never imposes an
encoding.  Labels are sets whose elements are either plain strings (the
non-indexed propositions ``AP``) or :class:`IndexedProp` values (the indexed
propositions ``IP × I`` used by :class:`repro.kripke.indexed.IndexedKripkeStructure`).
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    Mapping,
    NamedTuple,
    Tuple,
    Union,
)

from repro.errors import StructureError
from repro.logic.ast import Atom, ExactlyOne, Formula, IndexedAtom

__all__ = ["State", "IndexedProp", "Label", "KripkeStructure"]

#: States are opaque hashable objects.
State = Hashable


class IndexedProp(NamedTuple):
    """An indexed atomic proposition ``name_index`` attached to a state label.

    ``index`` is normally a concrete process number; the reduction ``M|_i``
    (see :mod:`repro.kripke.reduction`) rewrites it to the canonical sentinel
    ``"*"`` so that reductions taken at different index values become directly
    comparable.
    """

    name: str
    index: Union[int, str]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "%s[%s]" % (self.name, self.index)


#: A label element is either a plain proposition name or an indexed proposition.
Label = Union[str, IndexedProp]


class KripkeStructure:
    """A finite Kripke structure ``(S, R, L, s0)``.

    Parameters
    ----------
    states:
        The state set.  May be any iterable of hashable objects.
    transitions:
        Either an iterable of ``(source, target)`` pairs or a mapping from a
        state to an iterable of its successors.
    labeling:
        Mapping from each state to the collection of propositions true in it.
        States missing from the mapping are labelled with the empty set.
    initial_state:
        The distinguished initial state ``s0``; must be a member of ``states``.
    name:
        Optional human-readable name used in reports and exports.

    Notes
    -----
    The constructor does *not* require the transition relation to be total;
    call :func:`repro.kripke.validation.validate` (or pass the structure
    through :func:`repro.kripke.reachable.restrict_to_reachable`) before model
    checking, since the CTL*/CTL semantics of the paper assume totality.
    """

    def __init__(
        self,
        states: Iterable[State],
        transitions: Union[Iterable[Tuple[State, State]], Mapping[State, Iterable[State]]],
        labeling: Mapping[State, Iterable[Label]],
        initial_state: State,
        name: str | None = None,
    ) -> None:
        self._states: FrozenSet[State] = frozenset(states)
        if not self._states:
            raise StructureError("a Kripke structure must have at least one state")
        if initial_state not in self._states:
            raise StructureError("initial state %r is not a member of the state set" % (initial_state,))
        self._initial_state = initial_state
        self._name = name

        self._successors: Dict[State, FrozenSet[State]] = {}
        pairs = self._transition_pairs_from(transitions)
        forward: Dict[State, set] = {state: set() for state in self._states}
        backward: Dict[State, set] = {state: set() for state in self._states}
        for source, target in pairs:
            if source not in self._states:
                raise StructureError("transition source %r is not a state" % (source,))
            if target not in self._states:
                raise StructureError("transition target %r is not a state" % (target,))
            forward[source].add(target)
            backward[target].add(source)
        self._successors = {state: frozenset(successors) for state, successors in forward.items()}
        self._predecessors = {state: frozenset(sources) for state, sources in backward.items()}

        labels: Dict[State, FrozenSet[Label]] = {}
        for state, props in labeling.items():
            if state not in self._states:
                raise StructureError("labelled state %r is not a state" % (state,))
            labels[state] = frozenset(props)
        for state in self._states:
            labels.setdefault(state, frozenset())
        self._labels = labels

    # -- transition-relation helpers ----------------------------------------

    @staticmethod
    def _transition_pairs_from(transitions) -> Iterator[Tuple[State, State]]:
        if isinstance(transitions, Mapping):
            for source, targets in transitions.items():
                for target in targets:
                    yield (source, target)
        else:
            for source, target in transitions:
                yield (source, target)

    # -- basic accessors -----------------------------------------------------

    @property
    def name(self) -> str | None:
        """Optional human-readable name of the structure."""
        return self._name

    @property
    def states(self) -> FrozenSet[State]:
        """The state set ``S``."""
        return self._states

    @property
    def initial_state(self) -> State:
        """The initial state ``s0``."""
        return self._initial_state

    @property
    def num_states(self) -> int:
        """``|S|``."""
        return len(self._states)

    @property
    def num_transitions(self) -> int:
        """``|R|``."""
        return sum(len(successors) for successors in self._successors.values())

    def successors(self, state: State) -> FrozenSet[State]:
        """The successors of ``state`` under ``R``."""
        try:
            return self._successors[state]
        except KeyError:
            raise StructureError("%r is not a state of this structure" % (state,)) from None

    def predecessors(self, state: State) -> FrozenSet[State]:
        """The predecessors of ``state`` under ``R``."""
        try:
            return self._predecessors[state]
        except KeyError:
            raise StructureError("%r is not a state of this structure" % (state,)) from None

    def transition_pairs(self) -> Iterator[Tuple[State, State]]:
        """Iterate over all ``(source, target)`` transition pairs."""
        for source in self._states:
            for target in self._successors[source]:
                yield (source, target)

    def label(self, state: State) -> FrozenSet[Label]:
        """The label ``L(state)``."""
        try:
            return self._labels[state]
        except KeyError:
            raise StructureError("%r is not a state of this structure" % (state,)) from None

    @property
    def atomic_propositions(self) -> FrozenSet[str]:
        """The non-indexed proposition names occurring in any label."""
        names = set()
        for label in self._labels.values():
            for element in label:
                if isinstance(element, str):
                    names.add(element)
        return frozenset(names)

    @property
    def indexed_propositions(self) -> FrozenSet[IndexedProp]:
        """The indexed propositions occurring in any label."""
        props = set()
        for label in self._labels.values():
            for element in label:
                if isinstance(element, IndexedProp):
                    props.add(element)
        return frozenset(props)

    def is_total(self) -> bool:
        """Return ``True`` when every state has at least one successor."""
        return all(self._successors[state] for state in self._states)

    def __contains__(self, state: State) -> bool:
        return state in self._states

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        descriptor = self._name or self.__class__.__name__
        return "<%s: %d states, %d transitions>" % (descriptor, self.num_states, self.num_transitions)

    # -- atomic satisfaction -------------------------------------------------

    def atom_holds(self, state: State, formula: Formula) -> bool:
        """Decide an atomic formula at ``state``.

        Plain :class:`~repro.logic.ast.Atom` nodes are looked up as strings in
        the label; :class:`~repro.logic.ast.IndexedAtom` nodes must carry a
        concrete (integer or canonical ``"*"``) index and are looked up as
        :class:`IndexedProp` values.  :class:`~repro.logic.ast.ExactlyOne`
        requires an :class:`repro.kripke.indexed.IndexedKripkeStructure`.
        """
        if isinstance(formula, Atom):
            return formula.name in self.label(state)
        if isinstance(formula, IndexedAtom):
            return IndexedProp(formula.name, formula.index) in self.label(state)
        if isinstance(formula, ExactlyOne):
            raise StructureError(
                "the Θ ('exactly one') proposition is only meaningful on an "
                "IndexedKripkeStructure with a known index set"
            )
        raise StructureError("atom_holds expects an atomic formula, got %r" % (formula,))

    # -- derived structures ---------------------------------------------------

    def with_labels(self, relabel) -> "KripkeStructure":
        """Return a copy of the structure with each label replaced by ``relabel(state, label)``."""
        labeling = {state: relabel(state, self._labels[state]) for state in self._states}
        return KripkeStructure(
            self._states,
            {state: self._successors[state] for state in self._states},
            labeling,
            self._initial_state,
            name=self._name,
        )

    def to_dict(self) -> dict:
        """Return a JSON-serialisable description (states become their ``repr``)."""
        state_ids = {state: index for index, state in enumerate(sorted(self._states, key=repr))}
        return {
            "name": self._name,
            "states": [repr(state) for state in sorted(self._states, key=repr)],
            "initial": state_ids[self._initial_state],
            "transitions": sorted(
                [state_ids[source], state_ids[target]] for source, target in self.transition_pairs()
            ),
            "labels": {
                str(state_ids[state]): sorted(str(element) for element in label)
                for state, label in self._labels.items()
            },
        }
