"""Kripke structures, indexed Kripke structures, and structure manipulation."""

from repro.kripke.builders import IndexedKripkeBuilder, KripkeBuilder
from repro.kripke.compiled import (
    CompiledKripkeStructure,
    bits_of,
    compile_structure,
    popcount,
)
from repro.kripke.export import to_dot, to_json
from repro.kripke.indexed import IndexedKripkeStructure
from repro.kripke.paths import (
    Lasso,
    enumerate_finite_paths,
    enumerate_lassos,
    is_path,
    random_walk,
)
from repro.kripke.product import interleaved_product, synchronous_product
from repro.kripke.reachable import reachable_states, restrict_to_reachable
from repro.kripke.reduction import CANONICAL_INDEX, reduce_to_index
from repro.kripke.stats import StructureStats, structure_stats
from repro.kripke.structure import IndexedProp, KripkeStructure, Label, State
from repro.kripke.symbolic import (
    ProcessFamilyEncoding,
    SymbolicKripkeStructure,
    symbolic_structure,
)
from repro.kripke.validation import assert_total, validate, validation_issues

__all__ = [
    "KripkeStructure",
    "IndexedKripkeStructure",
    "IndexedProp",
    "Label",
    "State",
    "KripkeBuilder",
    "IndexedKripkeBuilder",
    "CompiledKripkeStructure",
    "compile_structure",
    "bits_of",
    "popcount",
    "SymbolicKripkeStructure",
    "ProcessFamilyEncoding",
    "symbolic_structure",
    "validate",
    "validation_issues",
    "assert_total",
    "reachable_states",
    "restrict_to_reachable",
    "reduce_to_index",
    "CANONICAL_INDEX",
    "interleaved_product",
    "synchronous_product",
    "Lasso",
    "is_path",
    "enumerate_finite_paths",
    "enumerate_lassos",
    "random_walk",
    "to_dot",
    "to_json",
    "StructureStats",
    "structure_stats",
]
