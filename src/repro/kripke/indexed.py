"""Indexed Kripke structures: models of indexed CTL* (Section 4).

An indexed structure is ``M = (AP, IP, I, S, R, L, s0)``: a Kripke structure
whose labels may also contain *indexed* propositions drawn from ``IP × I``,
where ``I ⊆ ℕ`` is the set of process index values.  The global state graph of
a family of ``N`` identical processes is naturally an indexed structure: the
instance of proposition ``A`` belonging to process 5 is labelled ``A_5``.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Mapping, Tuple, Union

from repro.errors import StructureError
from repro.kripke.structure import IndexedProp, KripkeStructure, Label, State
from repro.logic.ast import ExactlyOne, Formula

__all__ = ["IndexedKripkeStructure"]


class IndexedKripkeStructure(KripkeStructure):
    """A Kripke structure with indexed atomic propositions.

    Parameters
    ----------
    index_values:
        The index set ``I`` (process numbers).  Every indexed proposition in a
        label must use an index from this set.
    indexed_prop_names:
        The set ``IP`` of indexed proposition *names*.  When omitted it is
        inferred from the labels.
    Other parameters are as for :class:`repro.kripke.structure.KripkeStructure`.
    """

    def __init__(
        self,
        states: Iterable[State],
        transitions: Union[Iterable[Tuple[State, State]], Mapping[State, Iterable[State]]],
        labeling: Mapping[State, Iterable[Label]],
        initial_state: State,
        index_values: Iterable[int],
        indexed_prop_names: Iterable[str] | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(states, transitions, labeling, initial_state, name=name)
        self._index_values: FrozenSet[int] = frozenset(index_values)
        if not self._index_values:
            raise StructureError("an indexed Kripke structure needs a non-empty index set I")

        inferred_names = {prop.name for prop in self.indexed_propositions}
        if indexed_prop_names is None:
            self._indexed_prop_names = frozenset(inferred_names)
        else:
            self._indexed_prop_names = frozenset(indexed_prop_names)
            unknown = inferred_names - self._indexed_prop_names
            if unknown:
                raise StructureError(
                    "labels use indexed propositions not declared in IP: %s" % sorted(unknown)
                )
        for prop in self.indexed_propositions:
            if prop.index not in self._index_values:
                raise StructureError(
                    "label uses index value %r which is not in the index set I" % (prop.index,)
                )

    # -- accessors -----------------------------------------------------------

    @property
    def index_values(self) -> FrozenSet[int]:
        """The index set ``I``."""
        return self._index_values

    @property
    def indexed_prop_names(self) -> FrozenSet[str]:
        """The set ``IP`` of indexed proposition names."""
        return self._indexed_prop_names

    # -- atomic satisfaction ---------------------------------------------------

    def atom_holds(self, state: State, formula: Formula) -> bool:
        """Decide an atomic formula, including the ``Θ_i P_i`` extension.

        ``Θ_i P_i`` ("exactly one") holds in a state precisely when there is
        exactly one index value ``c ∈ I`` with ``P_c`` in the state's label
        (Section 4 of the paper).
        """
        if isinstance(formula, ExactlyOne):
            label = self.label(state)
            count = sum(
                1
                for value in self._index_values
                if IndexedProp(formula.name, value) in label
            )
            return count == 1
        return super().atom_holds(state, formula)

    def count_index_values(self, state: State, prop_name: str) -> int:
        """Return how many index values satisfy ``prop_name`` in ``state``."""
        label = self.label(state)
        return sum(
            1 for value in self._index_values if IndexedProp(prop_name, value) in label
        )
