"""Reachability restriction.

The token-ring transition graph ``G_r`` of Section 5 is not a Kripke structure
as written — the state in which every process is delayed and nobody holds the
token has no successors — but restricting it to the states *reachable* from the
initial state yields one (the paper denotes the result ``M_r``).  This module
provides exactly that restriction for arbitrary structures.
"""

from __future__ import annotations

from collections import deque
from typing import FrozenSet

from repro.kripke.indexed import IndexedKripkeStructure
from repro.kripke.structure import KripkeStructure, State

__all__ = ["reachable_states", "restrict_to_reachable"]


def reachable_states(structure: KripkeStructure, source: State | None = None) -> FrozenSet[State]:
    """Return the set of states reachable from ``source`` (default: the initial state)."""
    start = structure.initial_state if source is None else source
    seen = {start}
    frontier = deque([start])
    while frontier:
        state = frontier.popleft()
        for successor in structure.successors(state):
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)
    return frozenset(seen)


def restrict_to_reachable(structure: KripkeStructure) -> KripkeStructure:
    """Return the sub-structure induced by the states reachable from the initial state.

    The result preserves the concrete class: restricting an
    :class:`IndexedKripkeStructure` yields an indexed structure with the same
    index set.
    """
    reachable = reachable_states(structure)
    transitions = {
        state: [target for target in structure.successors(state) if target in reachable]
        for state in reachable
    }
    labeling = {state: structure.label(state) for state in reachable}
    if isinstance(structure, IndexedKripkeStructure):
        return IndexedKripkeStructure(
            reachable,
            transitions,
            labeling,
            structure.initial_state,
            index_values=structure.index_values,
            indexed_prop_names=structure.indexed_prop_names,
            name=structure.name,
        )
    return KripkeStructure(
        reachable, transitions, labeling, structure.initial_state, name=structure.name
    )
