"""Validation of Kripke structures.

The CTL*/ICTL* semantics of the paper require the transition relation to be
*total* (every state has at least one successor) so that every state starts an
infinite path.  Model-checking a non-total structure silently gives wrong
answers for liveness formulas, so the checkers call :func:`validate` first.
"""

from __future__ import annotations

from typing import List

from repro.errors import ValidationError
from repro.kripke.structure import KripkeStructure

__all__ = ["validation_issues", "validate", "assert_total"]


def validation_issues(structure: KripkeStructure) -> List[str]:
    """Return human-readable descriptions of every validation problem found.

    Checks performed:

    * every state has at least one successor (the relation is total);
    * the initial state belongs to the state set (enforced by the constructor,
      re-checked here for completeness).
    """
    issues: List[str] = []
    if structure.initial_state not in structure.states:
        issues.append("initial state is not a member of the state set")
    deadlocks = [state for state in structure.states if not structure.successors(state)]
    for state in sorted(deadlocks, key=repr):
        issues.append("state %r has no successors (transition relation is not total)" % (state,))
    return issues


def validate(structure: KripkeStructure) -> None:
    """Raise :class:`ValidationError` if the structure is not a valid Kripke structure."""
    issues = validation_issues(structure)
    if issues:
        raise ValidationError(
            "invalid Kripke structure%s: %s"
            % (
                " %r" % structure.name if structure.name else "",
                "; ".join(issues[:10]) + (" ..." if len(issues) > 10 else ""),
            )
        )


def assert_total(structure: KripkeStructure) -> None:
    """Raise :class:`ValidationError` unless the transition relation is total."""
    if not structure.is_total():
        validate(structure)
