"""Path utilities: finite paths, lassos, and random walks.

A *path* in a Kripke structure is an infinite sequence of states related by
the transition relation; on finite structures every satisfiable path property
has an ultimately periodic ("lasso") witness, which is why the brute-force
oracle in :mod:`repro.mc.oracle` enumerates lassos.  Random walks are used by
the large-ring spot checks of experiment E8, where the global state graph of
the 1000-process ring is never built explicitly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterator, List, Sequence, Tuple

from repro.errors import StructureError
from repro.kripke.structure import KripkeStructure, State

__all__ = [
    "Lasso",
    "is_path",
    "is_lasso",
    "enumerate_finite_paths",
    "enumerate_lassos",
    "random_walk",
]


@dataclass(frozen=True)
class Lasso:
    """An ultimately periodic path ``stem · cycle^ω``.

    ``stem`` may be empty; ``cycle`` is non-empty and its last state has a
    transition back to its first state.  The first state of the lasso is
    ``stem[0]`` when the stem is non-empty, otherwise ``cycle[0]``.
    """

    stem: Tuple[State, ...]
    cycle: Tuple[State, ...]

    @property
    def first_state(self) -> State:
        """The state the lasso starts in."""
        return self.stem[0] if self.stem else self.cycle[0]

    def positions(self) -> Tuple[State, ...]:
        """The finite carrier of the lasso: stem followed by one unrolling of the cycle."""
        return tuple(self.stem) + tuple(self.cycle)

    def successor_position(self, position: int) -> int:
        """Return the position following ``position`` in the lasso's carrier."""
        total = len(self.stem) + len(self.cycle)
        if position < 0 or position >= total:
            raise IndexError("position %d outside lasso carrier of length %d" % (position, total))
        if position == total - 1:
            return len(self.stem)
        return position + 1


def is_path(structure: KripkeStructure, states: Sequence[State]) -> bool:
    """Return ``True`` when ``states`` is a finite path of ``structure`` (consecutive states related by R)."""
    if not states:
        return False
    for state in states:
        if state not in structure:
            return False
    return all(
        states[index + 1] in structure.successors(states[index])
        for index in range(len(states) - 1)
    )


def is_lasso(structure: KripkeStructure, lasso: Lasso) -> bool:
    """Return ``True`` when ``lasso`` is a real ultimately periodic path of ``structure``.

    Checks that the cycle is non-empty, that the stem-plus-cycle carrier is a
    finite path of the structure (consecutive states related by ``R``), and
    that the cycle *closes*: the last cycle state has a transition back to the
    first.  The witness-validity tests use this to pin down that every
    ``Lasso`` returned by :mod:`repro.mc.counterexample` denotes an actual
    infinite path.
    """
    if not lasso.cycle:
        return False
    if not is_path(structure, lasso.positions()):
        return False
    return lasso.cycle[0] in structure.successors(lasso.cycle[-1])


def enumerate_finite_paths(
    structure: KripkeStructure, source: State, length: int
) -> Iterator[Tuple[State, ...]]:
    """Yield every finite path of exactly ``length`` states starting at ``source``.

    Intended for small structures only — the number of paths grows
    exponentially with ``length``.
    """
    if length <= 0:
        return
    stack: List[Tuple[State, ...]] = [(source,)]
    while stack:
        path = stack.pop()
        if len(path) == length:
            yield path
            continue
        for successor in sorted(structure.successors(path[-1]), key=repr):
            stack.append(path + (successor,))


def enumerate_lassos(
    structure: KripkeStructure,
    source: State,
    max_stem: int | None = None,
    max_cycle: int | None = None,
) -> Iterator[Lasso]:
    """Yield lassos starting at ``source`` with simple stems and simple cycles.

    The stem visits no state twice and does not revisit states of the cycle;
    the cycle visits no state twice.  Such "simple" lassos are sufficient
    witnesses for many (not all) path properties and are used as a one-sided
    oracle by the tests.
    """
    stem_bound = structure.num_states if max_stem is None else max_stem
    cycle_bound = structure.num_states if max_cycle is None else max_cycle

    def cycles_from(start: State) -> Iterator[Tuple[State, ...]]:
        # Simple cycles beginning at `start`.
        stack: List[Tuple[State, ...]] = [(start,)]
        while stack:
            partial = stack.pop()
            current = partial[-1]
            for successor in sorted(structure.successors(current), key=repr):
                if successor == start:
                    yield partial
                elif successor not in partial and len(partial) < cycle_bound:
                    stack.append(partial + (successor,))

    stems: List[Tuple[State, ...]] = [(source,)]
    while stems:
        stem = stems.pop()
        anchor = stem[-1]
        for cycle in cycles_from(anchor):
            yield Lasso(stem=stem[:-1], cycle=cycle)
        if len(stem) < stem_bound:
            for successor in sorted(structure.successors(anchor), key=repr):
                if successor not in stem:
                    stems.append(stem + (successor,))


def random_walk(
    structure_or_successors,
    source: State,
    length: int,
    rng: random.Random | None = None,
    successors: Callable[[State], Sequence[State]] | None = None,
) -> List[State]:
    """Return a random path of ``length`` states starting at ``source``.

    Either pass a :class:`KripkeStructure`, or pass any object together with a
    ``successors`` callable for on-the-fly exploration of structures that are
    too large to build explicitly (experiment E8 uses this with the
    1000-process token ring).
    """
    rng = rng or random.Random()
    if successors is None:
        if not isinstance(structure_or_successors, KripkeStructure):
            raise StructureError(
                "random_walk needs a KripkeStructure or an explicit successors callable"
            )
        successors = structure_or_successors.successors
    walk = [source]
    current = source
    for _ in range(length - 1):
        options = sorted(successors(current), key=repr)
        if not options:
            break
        current = rng.choice(options)
        walk.append(current)
    return walk
