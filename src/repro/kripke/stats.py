"""Structure statistics used by the state-explosion experiments (E8)."""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.kripke.indexed import IndexedKripkeStructure
from repro.kripke.structure import KripkeStructure

__all__ = ["StructureStats", "structure_stats"]


@dataclass(frozen=True)
class StructureStats:
    """Summary statistics of a Kripke structure."""

    name: str
    num_states: int
    num_transitions: int
    num_atomic_propositions: int
    num_indexed_propositions: int
    num_index_values: int
    average_out_degree: float
    is_total: bool

    def as_dict(self) -> dict:
        """Return the statistics as a plain dictionary (for reports and benchmarks)."""
        return asdict(self)


def structure_stats(structure: KripkeStructure) -> StructureStats:
    """Compute :class:`StructureStats` for ``structure``."""
    num_states = structure.num_states
    num_transitions = structure.num_transitions
    index_values = (
        len(structure.index_values) if isinstance(structure, IndexedKripkeStructure) else 0
    )
    return StructureStats(
        name=structure.name or structure.__class__.__name__,
        num_states=num_states,
        num_transitions=num_transitions,
        num_atomic_propositions=len(structure.atomic_propositions),
        num_indexed_propositions=len(structure.indexed_propositions),
        num_index_values=index_values,
        average_out_degree=(num_transitions / num_states) if num_states else 0.0,
        is_total=structure.is_total(),
    )
