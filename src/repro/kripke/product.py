"""Products of Kripke structures.

Two product constructions are provided:

* :func:`interleaved_product` — the asynchronous (interleaving) product in
  which exactly one component moves per global transition.  This is the *free
  product* of Section 6 when the components do not interact; the global state
  graph of a family of non-communicating identical processes is obtained this
  way.
* :func:`synchronous_product` — every component moves simultaneously; included
  for completeness and used in tests of the correspondence machinery.

The components' labels are tagged with the component's index value, so the
result is an :class:`~repro.kripke.indexed.IndexedKripkeStructure` ready for
ICTL* model checking.
"""

from __future__ import annotations

from itertools import product as iter_product
from typing import Dict, List, Sequence, Set, Tuple

from repro.errors import CompositionError
from repro.kripke.indexed import IndexedKripkeStructure
from repro.kripke.structure import IndexedProp, KripkeStructure, State

__all__ = ["interleaved_product", "synchronous_product"]


def _tag_labels(
    components: Sequence[KripkeStructure], index_values: Sequence[int], global_state: Tuple[State, ...]
) -> Set:
    label: Set = set()
    for component, index_value, local_state in zip(components, index_values, global_state):
        for element in component.label(local_state):
            if isinstance(element, IndexedProp):
                raise CompositionError(
                    "component structures must use plain (non-indexed) labels; "
                    "the product adds the index"
                )
            label.add(IndexedProp(element, index_value))
    return label


def _check_components(
    components: Sequence[KripkeStructure], index_values: Sequence[int] | None
) -> List[int]:
    if not components:
        raise CompositionError("a product needs at least one component")
    if index_values is None:
        values = list(range(1, len(components) + 1))
    else:
        values = list(index_values)
    if len(values) != len(components):
        raise CompositionError(
            "got %d components but %d index values" % (len(components), len(values))
        )
    if len(set(values)) != len(values):
        raise CompositionError("index values must be distinct")
    return values


def interleaved_product(
    components: Sequence[KripkeStructure],
    index_values: Sequence[int] | None = None,
    name: str | None = None,
) -> IndexedKripkeStructure:
    """Return the interleaving (free) product of ``components``.

    Global states are tuples of component states; each global transition moves
    exactly one component along one of its local transitions.  Component
    labels (plain strings) become indexed propositions tagged with the
    component's index value.
    """
    values = _check_components(components, index_values)
    initial = tuple(component.initial_state for component in components)

    states: Set[Tuple[State, ...]] = set()
    transitions: Dict[Tuple[State, ...], Set[Tuple[State, ...]]] = {}
    frontier = [initial]
    states.add(initial)
    while frontier:
        current = frontier.pop()
        successors: Set[Tuple[State, ...]] = set()
        for position, component in enumerate(components):
            for local_successor in component.successors(current[position]):
                next_state = current[:position] + (local_successor,) + current[position + 1 :]
                successors.add(next_state)
                if next_state not in states:
                    states.add(next_state)
                    frontier.append(next_state)
        transitions[current] = successors

    labeling = {state: _tag_labels(components, values, state) for state in states}
    return IndexedKripkeStructure(
        states,
        transitions,
        labeling,
        initial,
        index_values=values,
        name=name or "interleaved_product",
    )


def synchronous_product(
    components: Sequence[KripkeStructure],
    index_values: Sequence[int] | None = None,
    name: str | None = None,
) -> IndexedKripkeStructure:
    """Return the synchronous product of ``components`` (all components step together)."""
    values = _check_components(components, index_values)
    initial = tuple(component.initial_state for component in components)

    states: Set[Tuple[State, ...]] = set()
    transitions: Dict[Tuple[State, ...], Set[Tuple[State, ...]]] = {}
    frontier = [initial]
    states.add(initial)
    while frontier:
        current = frontier.pop()
        successor_choices = [
            sorted(component.successors(local_state), key=repr)
            for component, local_state in zip(components, current)
        ]
        successors: Set[Tuple[State, ...]] = set()
        if all(successor_choices):
            for combination in iter_product(*successor_choices):
                next_state = tuple(combination)
                successors.add(next_state)
                if next_state not in states:
                    states.add(next_state)
                    frontier.append(next_state)
        transitions[current] = successors

    labeling = {state: _tag_labels(components, values, state) for state in states}
    return IndexedKripkeStructure(
        states,
        transitions,
        labeling,
        initial,
        index_values=values,
        name=name or "synchronous_product",
    )
