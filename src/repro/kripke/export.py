"""Export helpers: Graphviz DOT and JSON-friendly dictionaries.

These are convenience utilities for inspecting the structures produced by the
library (e.g. rendering Fig. 5.1, the two-process mutual-exclusion global
state graph, for comparison with the paper).
"""

from __future__ import annotations

import json
from typing import Callable

from repro.kripke.structure import KripkeStructure, State

__all__ = ["to_dot", "to_json"]


def _default_state_name(state: State) -> str:
    return repr(state)


def to_dot(
    structure: KripkeStructure,
    state_name: Callable[[State], str] | None = None,
    include_labels: bool = True,
) -> str:
    """Render ``structure`` as a Graphviz DOT digraph.

    Parameters
    ----------
    state_name:
        Optional function mapping a state to the node caption; defaults to
        ``repr``.
    include_labels:
        When true (default) each node caption also lists the atomic
        propositions true in the state.
    """
    naming = state_name or _default_state_name
    ordered = sorted(structure.states, key=repr)
    identifiers = {state: "s%d" % index for index, state in enumerate(ordered)}
    lines = ["digraph kripke {", "  rankdir=LR;"]
    for state in ordered:
        caption = naming(state)
        if include_labels:
            props = ", ".join(sorted(str(element) for element in structure.label(state)))
            caption = "%s\\n{%s}" % (caption, props)
        shape = "doublecircle" if state == structure.initial_state else "circle"
        lines.append(
            '  %s [label="%s", shape=%s];' % (identifiers[state], caption.replace('"', "'"), shape)
        )
    for source in ordered:
        for target in sorted(structure.successors(source), key=repr):
            lines.append("  %s -> %s;" % (identifiers[source], identifiers[target]))
    lines.append("}")
    return "\n".join(lines)


def to_json(structure: KripkeStructure, indent: int | None = 2) -> str:
    """Serialise ``structure`` to a JSON string (states rendered via ``repr``)."""
    return json.dumps(structure.to_dict(), indent=indent, sort_keys=True)
