"""The reduction ``M|_i`` of an indexed structure to a single index (Section 4).

Given an indexed structure ``M`` and an index value ``i ∈ I``, the reduction
``M|_i`` is the same structure with a new labelling that keeps only the
non-indexed propositions and the indexed propositions carrying index ``i``::

    L_i(s) = L(s) ∩ (AP ∪ IP × {i})

Two structures ``M`` and ``M'`` *(i, i′)-correspond* when ``M|_i`` and
``M'|_{i'}`` correspond in the Section 3 sense.  Because the two reductions use
different concrete index values, this module rewrites the surviving indexed
propositions to a canonical sentinel index (``"*"`` by default) so that the
labels of ``M|_i`` and ``M'|_{i'}`` become directly comparable, matching the
paper's identification of ``A_i`` with ``A_{i'}`` in Lemma 4.
"""

from __future__ import annotations

from typing import Union

from repro.errors import StructureError
from repro.kripke.indexed import IndexedKripkeStructure
from repro.kripke.structure import IndexedProp, KripkeStructure

__all__ = ["CANONICAL_INDEX", "reduce_to_index"]

#: Sentinel index used for the surviving indexed propositions of a reduction.
CANONICAL_INDEX = "*"


def reduce_to_index(
    structure: IndexedKripkeStructure,
    index: int,
    canonical_index: Union[int, str, None] = CANONICAL_INDEX,
) -> KripkeStructure:
    """Return the reduction ``M|_index`` as a plain Kripke structure.

    Parameters
    ----------
    structure:
        The indexed structure ``M``.
    index:
        The index value ``i`` to keep; must belong to ``structure.index_values``.
    canonical_index:
        The index value written on the surviving indexed propositions.  The
        default sentinel ``"*"`` makes reductions at different index values
        comparable; pass ``None`` to keep the original index value.

    Returns
    -------
    KripkeStructure
        Same states, transitions and initial state; labels restricted to
        ``AP ∪ IP × {index}``.
    """
    if index not in structure.index_values:
        raise StructureError(
            "index %r is not in the structure's index set %s"
            % (index, sorted(structure.index_values))
        )
    replacement = index if canonical_index is None else canonical_index

    def relabel(_state, label):
        kept = []
        for element in label:
            if isinstance(element, IndexedProp):
                if element.index == index:
                    kept.append(IndexedProp(element.name, replacement))
            else:
                kept.append(element)
        return frozenset(kept)

    reduced = structure.with_labels(relabel)
    return KripkeStructure(
        reduced.states,
        {state: reduced.successors(state) for state in reduced.states},
        {state: reduced.label(state) for state in reduced.states},
        reduced.initial_state,
        name="%s|%s" % (structure.name or "M", index),
    )
