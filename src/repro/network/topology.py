"""Index-set topologies: rings, lines, stars, cliques.

The paper's running example arranges processes in a ring and needs the
"closest neighbour to the left" function; other identical-process families use
different neighbourhood structures.  A topology here is simply a mapping from
each index value to the ordered tuple of its neighbours, plus ring-arithmetic
helpers.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import CompositionError

__all__ = [
    "ring_topology",
    "line_topology",
    "star_topology",
    "complete_topology",
    "left_neighbor",
    "right_neighbor",
    "ring_distance_left",
]


def _check_indices(indices: Sequence[int]) -> List[int]:
    values = list(indices)
    if len(values) < 1:
        raise CompositionError("a topology needs at least one index value")
    if len(set(values)) != len(values):
        raise CompositionError("index values must be distinct")
    return values


def ring_topology(indices: Sequence[int]) -> Dict[int, Tuple[int, ...]]:
    """Each index is adjacent to its left and right neighbours on the ring."""
    values = _check_indices(indices)
    size = len(values)
    return {
        values[position]: (values[(position - 1) % size], values[(position + 1) % size])
        for position in range(size)
    }


def line_topology(indices: Sequence[int]) -> Dict[int, Tuple[int, ...]]:
    """Each index is adjacent to its predecessor and successor on a line."""
    values = _check_indices(indices)
    result: Dict[int, Tuple[int, ...]] = {}
    for position, value in enumerate(values):
        neighbors = []
        if position > 0:
            neighbors.append(values[position - 1])
        if position + 1 < len(values):
            neighbors.append(values[position + 1])
        result[value] = tuple(neighbors)
    return result


def star_topology(indices: Sequence[int]) -> Dict[int, Tuple[int, ...]]:
    """The first index is the hub; every other index is adjacent only to the hub."""
    values = _check_indices(indices)
    hub = values[0]
    result: Dict[int, Tuple[int, ...]] = {hub: tuple(values[1:])}
    for value in values[1:]:
        result[value] = (hub,)
    return result


def complete_topology(indices: Sequence[int]) -> Dict[int, Tuple[int, ...]]:
    """Every index is adjacent to every other index."""
    values = _check_indices(indices)
    return {
        value: tuple(other for other in values if other != value) for value in values
    }


def left_neighbor(index: int, size: int) -> int:
    """The left neighbour of ``index`` on the ring ``1..size`` (decreasing index, wrapping)."""
    if not 1 <= index <= size:
        raise CompositionError("index %d outside ring 1..%d" % (index, size))
    return size if index == 1 else index - 1


def right_neighbor(index: int, size: int) -> int:
    """The right neighbour of ``index`` on the ring ``1..size`` (increasing index, wrapping)."""
    if not 1 <= index <= size:
        raise CompositionError("index %d outside ring 1..%d" % (index, size))
    return 1 if index == size else index + 1


def ring_distance_left(source: int, target: int, size: int) -> int:
    """How many left-steps it takes to walk from ``source`` to ``target`` on the ring ``1..size``."""
    if not 1 <= source <= size or not 1 <= target <= size:
        raise CompositionError("indices must lie in 1..%d" % size)
    return (source - target) % size
