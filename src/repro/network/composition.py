"""Composing a family of identical processes into a global indexed structure.

The composition interleaves the local transitions of ``n`` copies of a
:class:`~repro.network.process.ProcessTemplate`.  A copy's transition may be
guarded on (and may update) a *shared variable* — a token position, a
semaphore, a counter — which is how the example families synchronise without
a full process-algebra machinery.  In addition, *global rules* describe
transitions in which several processes move at once (e.g. a barrier release).

The global state is the pair ``(shared value, tuple of local states)``; the
resulting structure's labels are the local labels tagged with each process's
index value, plus whatever the optional ``shared_labeler`` contributes, so the
result is an :class:`~repro.kripke.indexed.IndexedKripkeStructure` ready for
ICTL* model checking and for the reduction/correspondence machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import CompositionError
from repro.kripke.indexed import IndexedKripkeStructure
from repro.kripke.structure import IndexedProp, Label
from repro.network.process import LocalState, ProcessTemplate

__all__ = ["GlobalState", "GlobalRule", "SharedVariableComposition"]

#: A global state of the composition: (shared variable value, local states).
GlobalState = Tuple[Hashable, Tuple[LocalState, ...]]


@dataclass(frozen=True)
class GlobalRule:
    """A transition in which several processes move simultaneously.

    ``guard`` receives the shared value and the tuple of local states;
    ``apply`` returns the new shared value and the new tuple of local states.
    Global rules model broadcast-style synchronisation such as a barrier
    release, which cannot be expressed as an interleaving of per-process
    moves.
    """

    name: str
    guard: Callable[[Hashable, Tuple[LocalState, ...]], bool]
    apply: Callable[[Hashable, Tuple[LocalState, ...]], Tuple[Hashable, Tuple[LocalState, ...]]]


class SharedVariableComposition:
    """Interleaved composition of ``n`` copies of a process template.

    Parameters
    ----------
    template:
        The process template to replicate.
    size:
        The number of copies; alternatively pass explicit ``index_values``.
    index_values:
        The index value of each copy (defaults to ``1..size``).
    shared_initial:
        Initial value of the shared variable (default ``None``, i.e. no shared
        state).
    shared_labeler:
        Optional callable mapping the shared value to extra label elements
        (plain strings or :class:`IndexedProp`) added to every state's label.
    global_rules:
        Optional broadcast-style rules (see :class:`GlobalRule`).
    """

    def __init__(
        self,
        template: ProcessTemplate,
        size: Optional[int] = None,
        index_values: Optional[Sequence[int]] = None,
        shared_initial: Hashable = None,
        shared_labeler: Optional[Callable[[Hashable], Iterable[Label]]] = None,
        global_rules: Sequence[GlobalRule] = (),
        name: Optional[str] = None,
    ) -> None:
        if index_values is None:
            if size is None or size < 1:
                raise CompositionError("provide a positive size or explicit index values")
            index_values = list(range(1, size + 1))
        values = list(index_values)
        if len(set(values)) != len(values):
            raise CompositionError("index values must be distinct")
        self._template = template
        self._index_values: Tuple[int, ...] = tuple(values)
        self._shared_initial = shared_initial
        self._shared_labeler = shared_labeler
        self._global_rules: Tuple[GlobalRule, ...] = tuple(global_rules)
        self._name = name or "%s×%d" % (template.name, len(values))

    # -- accessors -----------------------------------------------------------

    @property
    def size(self) -> int:
        """The number of copies."""
        return len(self._index_values)

    @property
    def index_values(self) -> Tuple[int, ...]:
        """The index value of each copy."""
        return self._index_values

    @property
    def initial_state(self) -> GlobalState:
        """The composed initial state."""
        locals_tuple = tuple(self._template.initial_state for _ in self._index_values)
        return (self._shared_initial, locals_tuple)

    # -- on-the-fly exploration --------------------------------------------------

    def successors(self, state: GlobalState) -> List[GlobalState]:
        """Return the successors of a global state (computed on the fly)."""
        shared, locals_tuple = state
        result: Set[GlobalState] = set()
        for position, index_value in enumerate(self._index_values):
            local_state = locals_tuple[position]
            for transition in self._template.transitions_from(local_state):
                if transition.guard is not None and not transition.guard(
                    shared, index_value, locals_tuple
                ):
                    continue
                new_shared = (
                    transition.update(shared, index_value, locals_tuple)
                    if transition.update is not None
                    else shared
                )
                new_locals = (
                    locals_tuple[:position] + (transition.target,) + locals_tuple[position + 1 :]
                )
                result.add((new_shared, new_locals))
        for rule in self._global_rules:
            if rule.guard(shared, locals_tuple):
                new_shared, new_locals = rule.apply(shared, locals_tuple)
                if len(new_locals) != len(locals_tuple):
                    raise CompositionError(
                        "global rule %r changed the number of processes" % rule.name
                    )
                result.add((new_shared, tuple(new_locals)))
        return sorted(result, key=repr)

    def label(self, state: GlobalState) -> Set[Label]:
        """Return the label of a global state (computed on the fly)."""
        shared, locals_tuple = state
        label: Set[Label] = set()
        for position, index_value in enumerate(self._index_values):
            for prop in self._template.label(locals_tuple[position]):
                label.add(IndexedProp(prop, index_value))
        if self._shared_labeler is not None:
            label.update(self._shared_labeler(shared))
        return label

    # -- explicit construction -----------------------------------------------------

    def build(self, max_states: Optional[int] = None) -> IndexedKripkeStructure:
        """Explore the reachable global state space and build the indexed structure.

        Parameters
        ----------
        max_states:
            Optional safety bound; exploration raises :class:`CompositionError`
            when the reachable state space exceeds it (a guard against
            accidentally asking for the 1000-process ring explicitly).
        """
        initial = self.initial_state
        states: Set[GlobalState] = {initial}
        transitions: Dict[GlobalState, List[GlobalState]] = {}
        frontier: List[GlobalState] = [initial]
        while frontier:
            current = frontier.pop()
            successors = self.successors(current)
            transitions[current] = successors
            for successor in successors:
                if successor not in states:
                    states.add(successor)
                    frontier.append(successor)
                    if max_states is not None and len(states) > max_states:
                        raise CompositionError(
                            "reachable state space exceeds the max_states bound of %d" % max_states
                        )
        labeling = {state: self.label(state) for state in states}
        return IndexedKripkeStructure(
            states,
            transitions,
            labeling,
            initial,
            index_values=self._index_values,
            name=self._name,
        )
