"""Process templates, families of identical processes, and their compositions."""

from repro.network.composition import GlobalRule, GlobalState, SharedVariableComposition
from repro.network.family import ProcessFamily
from repro.network.free_product import free_product
from repro.network.process import LocalTransition, ProcessTemplate
from repro.network.topology import (
    complete_topology,
    left_neighbor,
    line_topology,
    right_neighbor,
    ring_distance_left,
    ring_topology,
    star_topology,
)

__all__ = [
    "ProcessTemplate",
    "LocalTransition",
    "ProcessFamily",
    "SharedVariableComposition",
    "GlobalRule",
    "GlobalState",
    "free_product",
    "ring_topology",
    "line_topology",
    "star_topology",
    "complete_topology",
    "left_neighbor",
    "right_neighbor",
    "ring_distance_left",
]
