"""The free (unsynchronised) product of identical processes (Section 6).

In a *free* product the processes do not interact at all: the global state
graph is the interleaving of the local graphs, every local transition is
always enabled, and a process with no local transitions simply stutters.
Section 6 of the paper conjectures that a formula with at most ``k`` nested
index quantifiers cannot distinguish free products with more than ``k``
components and remarks that the free case is easy to prove; experiment E9
explores the conjecture empirically with the structures built here.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.kripke.indexed import IndexedKripkeStructure
from repro.kripke.product import interleaved_product
from repro.network.process import ProcessTemplate

__all__ = ["free_product"]


def free_product(
    template: ProcessTemplate,
    size: int,
    index_values: Optional[Sequence[int]] = None,
    name: Optional[str] = None,
) -> IndexedKripkeStructure:
    """Return the free product of ``size`` copies of ``template``.

    Guards and shared-variable updates on the template's transitions are
    ignored — by definition the free product has no interaction.  Local states
    with no outgoing transition receive a self-loop so that the product is a
    valid (total) Kripke structure.
    """
    component = template.to_kripke(require_total=True)
    components = [component] * size
    values = list(index_values) if index_values is not None else list(range(1, size + 1))
    return interleaved_product(
        components,
        index_values=values,
        name=name or "free(%s)×%d" % (template.name, size),
    )
