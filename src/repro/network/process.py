"""Finite-state process templates.

A :class:`ProcessTemplate` describes *one* process of a family of identical
processes: its local states, its local labelling (plain proposition names —
the composition machinery adds the process index), and its local transitions.
Transitions may carry guards and updates that refer to a shared global
variable, which is how simple synchronisation (a token, a semaphore, a
barrier counter) is modelled; see :mod:`repro.network.composition`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Hashable, Iterable, Mapping, Optional, Tuple

from repro.errors import CompositionError
from repro.kripke.structure import KripkeStructure

__all__ = ["LocalState", "Guard", "Update", "LocalTransition", "ProcessTemplate"]

#: Local states are opaque hashable objects (typically short strings).
LocalState = Hashable

#: A guard reads the shared variable, the process's index value, and the tuple
#: of all local states; it returns ``True`` when the transition is enabled.
Guard = Callable[[Hashable, int, Tuple[LocalState, ...]], bool]

#: An update produces the new value of the shared variable.
Update = Callable[[Hashable, int, Tuple[LocalState, ...]], Hashable]


@dataclass(frozen=True)
class LocalTransition:
    """A local transition of one process.

    ``guard`` and ``update`` are optional; a transition without a guard is
    always enabled and a transition without an update leaves the shared
    variable unchanged.  Guards and updates are ignored by the *free* product,
    which by definition involves no interaction.
    """

    source: LocalState
    target: LocalState
    action: str = "tau"
    guard: Optional[Guard] = field(default=None, compare=False)
    update: Optional[Update] = field(default=None, compare=False)


class ProcessTemplate:
    """The description of one process in a family of identical processes."""

    def __init__(
        self,
        name: str,
        states: Iterable[LocalState],
        initial_state: LocalState,
        labels: Mapping[LocalState, Iterable[str]],
        transitions: Iterable[LocalTransition],
    ) -> None:
        self._name = name
        self._states: FrozenSet[LocalState] = frozenset(states)
        if not self._states:
            raise CompositionError("a process template needs at least one local state")
        if initial_state not in self._states:
            raise CompositionError("initial local state %r is not a local state" % (initial_state,))
        self._initial_state = initial_state

        self._labels: Dict[LocalState, FrozenSet[str]] = {}
        for state, props in labels.items():
            if state not in self._states:
                raise CompositionError("labelled local state %r is not a local state" % (state,))
            self._labels[state] = frozenset(props)
        for state in self._states:
            self._labels.setdefault(state, frozenset())

        self._transitions: Tuple[LocalTransition, ...] = tuple(transitions)
        for transition in self._transitions:
            if transition.source not in self._states or transition.target not in self._states:
                raise CompositionError(
                    "transition %r uses a state outside the template" % (transition,)
                )

    # -- accessors -----------------------------------------------------------

    @property
    def name(self) -> str:
        """The template's name (used in composed-structure names)."""
        return self._name

    @property
    def states(self) -> FrozenSet[LocalState]:
        """The local state set."""
        return self._states

    @property
    def initial_state(self) -> LocalState:
        """The local initial state."""
        return self._initial_state

    @property
    def transitions(self) -> Tuple[LocalTransition, ...]:
        """All local transitions."""
        return self._transitions

    def label(self, state: LocalState) -> FrozenSet[str]:
        """The plain (non-indexed) labels of a local state."""
        return self._labels[state]

    def transitions_from(self, state: LocalState) -> Tuple[LocalTransition, ...]:
        """The local transitions leaving ``state``."""
        return tuple(t for t in self._transitions if t.source == state)

    # -- conversions -----------------------------------------------------------

    def to_kripke(self, require_total: bool = True) -> KripkeStructure:
        """View the template in isolation as a Kripke structure (guards ignored).

        When ``require_total`` is set, local states without outgoing
        transitions receive a self-loop so that the result is a valid Kripke
        structure (this matches the usual convention that an idle process
        stutters).
        """
        successors: Dict[LocalState, set] = {state: set() for state in self._states}
        for transition in self._transitions:
            successors[transition.source].add(transition.target)
        if require_total:
            for state, targets in successors.items():
                if not targets:
                    targets.add(state)
        return KripkeStructure(
            self._states,
            successors,
            {state: self._labels[state] for state in self._states},
            self._initial_state,
            name=self._name,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<ProcessTemplate %r: %d states, %d transitions>" % (
            self._name,
            len(self._states),
            len(self._transitions),
        )
