"""Families of identical processes.

A :class:`ProcessFamily` bundles a process template with the ingredients
needed to generate the global state graph for *any* number of copies: the
shared variable, its labelling, and optional global rules.  Example systems
(the round-robin ring, the barrier) are defined once as families and then
instantiated at several sizes by the experiments, which is exactly the shape
of reasoning the paper is about — "the same system, at size 2 and at size r".
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Optional, Sequence

from repro.kripke.indexed import IndexedKripkeStructure
from repro.kripke.structure import Label
from repro.network.composition import GlobalRule, SharedVariableComposition
from repro.network.free_product import free_product
from repro.network.process import ProcessTemplate

__all__ = ["ProcessFamily"]


class ProcessFamily:
    """A parameterized family of identical processes.

    Parameters
    ----------
    template:
        The per-process template.
    shared_initial_for:
        Callable mapping the family size to the initial shared value
        (default: always ``None``).
    shared_labeler_for:
        Callable mapping the family size to a shared-value labeller
        (default: no extra labels).
    global_rules_for:
        Callable mapping the family size to the tuple of global rules
        (default: none).
    """

    def __init__(
        self,
        template: ProcessTemplate,
        shared_initial_for: Optional[Callable[[int], Hashable]] = None,
        shared_labeler_for: Optional[Callable[[int], Callable[[Hashable], Iterable[Label]]]] = None,
        global_rules_for: Optional[Callable[[int], Sequence[GlobalRule]]] = None,
        name: Optional[str] = None,
    ) -> None:
        self._template = template
        self._shared_initial_for = shared_initial_for or (lambda size: None)
        self._shared_labeler_for = shared_labeler_for or (lambda size: None)
        self._global_rules_for = global_rules_for or (lambda size: ())
        self._name = name or template.name

    @property
    def template(self) -> ProcessTemplate:
        """The per-process template."""
        return self._template

    @property
    def name(self) -> str:
        """The family name."""
        return self._name

    def composition(self, size: int) -> SharedVariableComposition:
        """Return the (lazy) composition object for ``size`` copies."""
        return SharedVariableComposition(
            self._template,
            size=size,
            shared_initial=self._shared_initial_for(size),
            shared_labeler=self._shared_labeler_for(size),
            global_rules=self._global_rules_for(size),
            name="%s(%d)" % (self._name, size),
        )

    def instance(self, size: int, max_states: Optional[int] = None) -> IndexedKripkeStructure:
        """Build the explicit global state graph for ``size`` copies."""
        return self.composition(size).build(max_states=max_states)

    def free_instance(self, size: int) -> IndexedKripkeStructure:
        """Build the *free* (unsynchronised) product of ``size`` copies."""
        return free_product(self._template, size, name="free %s(%d)" % (self._name, size))
