"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "FormulaError",
    "ParseError",
    "FragmentError",
    "RestrictionError",
    "StructureError",
    "ValidationError",
    "ModelCheckingError",
    "InconclusiveError",
    "CorrespondenceError",
    "CompositionError",
    "BDDError",
    "SanitizerError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class FormulaError(ReproError):
    """A formula is malformed or used in a context where it is not allowed."""


class ParseError(FormulaError):
    """The textual formula syntax could not be parsed.

    Attributes
    ----------
    position:
        Index into the input text at which the error was detected, or ``None``
        when the error is not tied to a specific location (e.g. unexpected end
        of input).
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        self.position = position


class FragmentError(FormulaError):
    """A formula does not belong to the logic fragment required by an operation.

    Raised, for example, when the CTL model checker is handed a formula that is
    not in CTL, or when a next-free context receives a formula containing the
    next-time operator.
    """


class RestrictionError(FormulaError):
    """An ICTL* formula violates the syntactic restrictions of Section 4.

    The restrictions forbid nesting index quantifiers and forbid index
    quantifiers inside the operands of an until operator; without them the
    logic can count the number of processes (Fig. 4.1 of the paper).
    """


class StructureError(ReproError):
    """A Kripke structure is malformed or used incorrectly."""


class ValidationError(StructureError):
    """A structure failed validation (e.g. the transition relation is not total)."""


class ModelCheckingError(ReproError):
    """A model-checking run could not be carried out."""


class InconclusiveError(ModelCheckingError):
    """A bounded method exhausted its bound without deciding the property.

    Raised by the SAT-based bounded model checker when neither a
    counterexample (within the falsification bound) nor a k-induction proof
    (within the induction bound) was found — the property may still hold or
    fail at greater depths.
    """


class CorrespondenceError(ReproError):
    """A correspondence (bisimulation) relation is invalid or could not be built."""


class CompositionError(ReproError):
    """A network composition (product of processes) could not be constructed."""


class BDDError(ReproError):
    """A binary-decision-diagram operation was used incorrectly.

    Raised, for example, when two :class:`repro.bdd.BDDFunction` values from
    different managers are combined, when a satisfy-count is requested over a
    variable set that does not cover the function's support, or when a rename
    mapping is not order-preserving.
    """


class SanitizerError(ReproError):
    """A runtime sanitizer detected a corrupted engine invariant.

    Raised by :mod:`repro.bdd.sanitize` and :mod:`repro.sat.sanitize` when an
    opt-in audit (``REPRO_SANITIZE=1``) finds the unique table, the watch
    lists, the trail, or the reference counts in an inconsistent state — and
    by :func:`repro.bdd.sanitize.assert_no_leaks` when a scope exits while
    still holding external BDD references it did not hold on entry.
    """
