"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "FormulaError",
    "ParseError",
    "FragmentError",
    "RestrictionError",
    "StructureError",
    "ValidationError",
    "ModelCheckingError",
    "InconclusiveError",
    "CorrespondenceError",
    "CompositionError",
    "BDDError",
    "SanitizerError",
    "BudgetExceededError",
    "CancelledError",
    "EngineCrashError",
    "EngineDisagreementError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class FormulaError(ReproError):
    """A formula is malformed or used in a context where it is not allowed."""


class ParseError(FormulaError):
    """The textual formula syntax could not be parsed.

    Attributes
    ----------
    position:
        Index into the input text at which the error was detected, or ``None``
        when the error is not tied to a specific location (e.g. unexpected end
        of input).
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        self.position = position


class FragmentError(FormulaError):
    """A formula does not belong to the logic fragment required by an operation.

    Raised, for example, when the CTL model checker is handed a formula that is
    not in CTL, or when a next-free context receives a formula containing the
    next-time operator.
    """


class RestrictionError(FormulaError):
    """An ICTL* formula violates the syntactic restrictions of Section 4.

    The restrictions forbid nesting index quantifiers and forbid index
    quantifiers inside the operands of an until operator; without them the
    logic can count the number of processes (Fig. 4.1 of the paper).
    """


class StructureError(ReproError):
    """A Kripke structure is malformed or used incorrectly."""


class ValidationError(StructureError):
    """A structure failed validation (e.g. the transition relation is not total)."""


class ModelCheckingError(ReproError):
    """A model-checking run could not be carried out."""


class InconclusiveError(ModelCheckingError):
    """A bounded method exhausted its bound without deciding the property.

    Raised by the SAT-based bounded model checker when neither a
    counterexample (within the falsification bound) nor a k-induction proof
    (within the induction bound) was found — the property may still hold or
    fail at greater depths.

    The keyword attributes report how much of the budget the engine consumed
    before giving up, so a caller (the portfolio engine's degradation
    messages, a retry loop raising the bound) can act on the failure instead
    of guessing:

    ``depth_reached``
        The deepest BMC unrolling depth completed (``None`` for IC3).
    ``frames_opened``
        The number of IC3 frames opened (``None`` for BMC).
    ``conflicts_spent``
        Total SAT conflicts spent across the engine's solvers, when known.
    """

    def __init__(
        self,
        message: str,
        *,
        depth_reached: int | None = None,
        frames_opened: int | None = None,
        conflicts_spent: int | None = None,
    ) -> None:
        super().__init__(message)
        self.depth_reached = depth_reached
        self.frames_opened = frames_opened
        self.conflicts_spent = conflicts_spent

    def progress(self) -> dict:
        """The non-``None`` budget-consumption attributes as a dict."""
        fields = {
            "depth_reached": self.depth_reached,
            "frames_opened": self.frames_opened,
            "conflicts_spent": self.conflicts_spent,
        }
        return {key: value for key, value in fields.items() if value is not None}


class CorrespondenceError(ReproError):
    """A correspondence (bisimulation) relation is invalid or could not be built."""


class CompositionError(ReproError):
    """A network composition (product of processes) could not be constructed."""


class BDDError(ReproError):
    """A binary-decision-diagram operation was used incorrectly.

    Raised, for example, when two :class:`repro.bdd.BDDFunction` values from
    different managers are combined, when a satisfy-count is requested over a
    variable set that does not cover the function's support, or when a rename
    mapping is not order-preserving.
    """


class SanitizerError(ReproError):
    """A runtime sanitizer detected a corrupted engine invariant.

    Raised by :mod:`repro.bdd.sanitize` and :mod:`repro.sat.sanitize` when an
    opt-in audit (``REPRO_SANITIZE=1``) finds the unique table, the watch
    lists, the trail, or the reference counts in an inconsistent state — and
    by :func:`repro.bdd.sanitize.assert_no_leaks` when a scope exits while
    still holding external BDD references it did not hold on entry.
    """


class BudgetExceededError(ModelCheckingError):
    """A run overshot a :class:`repro.runtime.limits.ResourceBudget` ceiling.

    Raised from a cooperative checkpoint inside an engine hot loop (or by
    the portfolio supervisor when a whole race times out).  Structured so
    callers can tell *which* ceiling fell:

    ``resource``
        One of ``"deadline"``, ``"memory"``, ``"bdd_nodes"``,
        ``"sat_conflicts"``.
    ``limit`` / ``observed``
        The configured ceiling and the value that crossed it (seconds for
        the deadline, bytes for memory, counts otherwise).
    ``site``
        The checkpoint site that noticed (e.g. ``"sat.conflicts"``), or the
        supervisor's description of the race.
    """

    def __init__(
        self,
        message: str,
        *,
        resource: str = "deadline",
        limit: float | None = None,
        observed: float | None = None,
        site: str = "",
    ) -> None:
        super().__init__(message)
        self.resource = resource
        self.limit = limit
        self.observed = observed
        self.site = site


class CancelledError(ReproError):
    """A run was cooperatively cancelled at an engine checkpoint.

    Raised inside a worker when its cancellation token is set — e.g. a
    portfolio race already has a conclusive verdict and the losers are asked
    to stand down.  ``site`` names the checkpoint that observed the request.
    """

    def __init__(self, message: str, *, site: str = "") -> None:
        super().__init__(message)
        self.site = site


class EngineCrashError(ModelCheckingError):
    """Every worker of a portfolio race died without a conclusive verdict.

    Carries the per-engine post-mortem in ``outcomes`` — a mapping from
    engine name to a short diagnostic string (``"crashed (signal 9)"``,
    ``"hung (no heartbeat for 5.0s)"``, ``"MemoryError: ..."``) — so the
    failure is actionable rather than a silent hang.
    """

    def __init__(self, message: str, outcomes: dict | None = None) -> None:
        super().__init__(message)
        self.outcomes = dict(outcomes or {})


class EngineDisagreementError(ModelCheckingError):
    """Two engines returned different verdicts for the same property.

    Raised by :func:`repro.mc.oracle.crosscheck_ctl_engines` when any two
    satisfaction-set engines differ, and by the portfolio engine when a
    cancelled loser already delivered a verdict conflicting with the
    winner's.  A disagreement is always a bug in at least one engine, so
    the payload names everything needed to reproduce it:

    ``formula``
        The offending property.
    ``verdicts``
        Mapping from engine name to that engine's verdict (a bool for the
        portfolio, a sorted state list for satisfaction-set crosschecks).
    """

    def __init__(
        self, message: str, *, formula=None, verdicts: dict | None = None
    ) -> None:
        super().__init__(message)
        self.formula = formula
        self.verdicts = dict(verdicts or {})
