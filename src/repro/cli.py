"""Command-line interface: run the paper's experiments from a shell.

``python -m repro`` (or the ``repro-mc`` console script) checks the Section 5
token-ring properties and invariants on a ring of the requested size with the
requested engine, printing a small results table::

    $ python -m repro --engine bdd --ring-size 10
    M_10 via engine=bdd (direct symbolic encoding)
      states      : 10240
      transitions : 61430
      ...

The engine choices come from :data:`repro.mc.bitset.ENGINE_NAMES`.  With
``--engine bdd`` the ring is encoded *directly* as binary decision diagrams
(the explicit global state graph is never built), so sizes well beyond the
explicit engines' range remain tractable; with the explicit engines the
global graph is built first, exactly like the library's programmatic path.
``--engine bmc`` unrolls the same direct encoding into an incremental SAT
solver: the Section 5 invariants are proved by k-induction (or refuted with
a depth-minimal counterexample within ``--bound``), and the properties
outside the BMC invariant fragment are reported as skipped.  ``--fairness``
switches every check to the fairness-constrained semantics (per-process
scheduler fairness) and adds the fairness-dependent ``AF t_i`` liveness
family.  ``--experiments`` instead replays the full E1–E12 experiment suite
and prints one summary line per experiment.

The process exits non-zero when a checked property is violated (or an
experiment's headline claim fails to reproduce), so the command doubles as a
CI smoke check.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.timing import timed_call
from repro.mc.bitset import ENGINE_NAMES

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mc",
        description=(
            "Model check the Clarke-Grumberg-Browne token ring (PODC '86) "
            "with one of the engines: %s." % ", ".join(ENGINE_NAMES)
        ),
    )
    parser.add_argument(
        "--engine",
        choices=ENGINE_NAMES,
        default="bitset",
        help=(
            "engine to use (default: bitset; bdd and bmc never build the "
            "explicit graph)"
        ),
    )
    parser.add_argument(
        "--ring-size",
        type=int,
        default=4,
        metavar="N",
        help="number of processes r of the token ring M_r (default: 4)",
    )
    parser.add_argument(
        "--bound",
        type=int,
        default=None,
        metavar="K",
        help=(
            "with --engine bmc: falsification/induction depth ceiling "
            "(default: %d)" % _default_bound()
        ),
    )
    parser.add_argument(
        "--fairness",
        action="store_true",
        help=(
            "check under per-process scheduler fairness (every process is "
            "infinitely often delayed or holding the token) and include the "
            "fairness-dependent liveness family AF t_i"
        ),
    )
    parser.add_argument(
        "--experiments",
        action="store_true",
        help="run the full E1-E12 experiment suite instead of a single ring check",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "emit a JSON profile to stderr: per-phase wall times (build, each "
            "check) plus, for the bdd engine, live/peak node counts, cache "
            "hit/miss/evict statistics, and GC/reorder activity, and, for the "
            "bmc engine, SAT statistics (conflicts, decisions, propagations, "
            "learned clauses)"
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="with --experiments: use the smaller quick parameters",
    )
    return parser


def _default_bound() -> int:
    from repro.mc.bmc import DEFAULT_BOUND

    return DEFAULT_BOUND


def _run_ring_check(
    engine: str,
    size: int,
    fairness: bool,
    out,
    profile: bool = False,
    bound: Optional[int] = None,
) -> bool:
    from repro.errors import FragmentError
    from repro.systems import token_ring

    family = {}
    for name, formula in token_ring.ring_properties().items():
        family["property " + name] = formula
    for name, formula in token_ring.ring_invariants().items():
        family["invariant " + name] = formula
    constraint = None
    if fairness:
        constraint = token_ring.ring_scheduler_fairness(size)
        # The AF t_i family is only true under fairness — see E11.
        for name, formula in token_ring.fair_ring_properties().items():
            family["fair liveness " + name] = formula

    if engine == "bdd":
        from repro.mc.symbolic import SymbolicCTLModelChecker

        built = timed_call(token_ring.symbolic_token_ring, size)
        structure = built.value
        checker = SymbolicCTLModelChecker(structure, fairness=constraint)
        descriptor = "direct symbolic encoding"
    elif engine == "bmc":
        from repro.mc.bmc import BoundedModelChecker

        # The free domain skips the symbolic reachability fixpoint — the
        # whole point of BMC is that the bound, not the reachable set, pays.
        built = timed_call(token_ring.symbolic_token_ring, size, domain="free")
        structure = built.value
        checker = BoundedModelChecker(
            structure, bound=_default_bound() if bound is None else bound
        )
        descriptor = "SAT unrolling of the direct encoding, bound=%d" % checker.bound
    else:
        from repro.mc.indexed import ICTLStarModelChecker

        built = timed_call(token_ring.build_token_ring, size)
        structure = built.value
        checker = ICTLStarModelChecker(structure, engine=engine, fairness=constraint)
        descriptor = "explicit state graph"

    print("M_%d via engine=%s (%s)" % (size, engine, descriptor), file=out)
    if constraint is not None:
        print("  fairness    : %d conditions (d_i | t_i per process)" % len(constraint), file=out)
    if engine == "bmc":
        # No reachability fixpoint ran, so state counts are not available.
        print("  state bits  : %d" % structure.num_bits, file=out)
    else:
        print("  states      : %d" % structure.num_states, file=out)
        print("  transitions : %d" % structure.num_transitions, file=out)
    print("  build       : %.4fs" % built.seconds, file=out)
    print("", file=out)
    print("  %-34s %-8s %s" % ("check", "verdict", "seconds"), file=out)
    all_hold = True
    skipped = []
    phases = [{"name": "build", "seconds": built.seconds}]
    for name, formula in family.items():
        try:
            checked = timed_call(checker.check, formula)
        except FragmentError:
            skipped.append(name)
            continue
        all_hold = all_hold and checked.value
        phases.append({"name": "check %s" % name, "seconds": checked.seconds})
        verdict = str(checked.value)
        if engine == "bmc" and checker.last_detail:
            verdict = "%s (%s)" % (checked.value, checker.last_detail)
        print("  %-34s %-8s %.4f" % (name, verdict, checked.seconds), file=out)
    for name in skipped:
        print("  %-34s %-8s" % (name, "skipped (outside the BMC invariant fragment)"), file=out)
    print("", file=out)
    checked_what = "checked Section 5 properties and invariants" if skipped else (
        "all Section 5 properties and invariants"
    )
    if all_hold:
        print("  %s hold on M_%d" % (checked_what, size), file=out)
    else:
        print("  FAILURE: some property/invariant is violated on M_%d" % size, file=out)
    if profile:
        import json

        payload = {
            "engine": engine,
            "ring_size": size,
            "fairness": fairness,
            "phases": phases,
            "total_seconds": sum(phase["seconds"] for phase in phases),
        }
        if engine == "bdd":
            payload["bdd"] = structure.manager.stats().as_dict()
        if engine == "bmc":
            payload["bdd"] = structure.manager.stats().as_dict()
            payload["sat"] = checker.stats()
            payload["bound"] = checker.bound
        print(json.dumps(payload, indent=2, sort_keys=True), file=sys.stderr)
    return all_hold


#: Per-experiment extractor of the headline "did the paper's claim reproduce"
#: boolean from the experiment's result dictionary.
_EXPERIMENT_HEADLINES = {
    "E1_fig31": lambda r: r["corresponds"] and r["all_agree"],
    "E2_fig41": lambda r: r["counting_matches_size"],
    "E3_nexttime": lambda r: r["holds_only_when_size_divides_3"],
    "E4_fig51": lambda r: r["is_total"] and r["partition_invariant"],
    "E5_invariants": lambda r: r["all_hold"],
    "E6_properties": lambda r: r["all_hold"],
    # The paper's M_2 claim is refuted (documented deviation); the corrected
    # base-3 claim and the transfer workflow must reproduce.
    "E7_correspondence": lambda r: (
        r["corrected_claim_base3_corresponds"] and r["transfers_match_direct"]
    ),
    "E8_explosion": lambda r: (
        r["states_grow_monotonically"]
        and all(row["all_hold"] for row in r["symbolic_sweep"])
    ),
    "E9_conjecture": lambda r: r["conjecture_holds_on_family"],
    "E10_scaling": lambda r: all(row["corresponds"] for row in r["rows"]),
    "E11_fairness": lambda r: (
        r["unfair_fails_everywhere"]
        and r["fair_holds_everywhere"]
        and r["engines_agree"]
        and r["counterexample_valid"]
    ),
    "E12_bmc": lambda r: (
        r["bmc_found_everywhere"]
        and r["bdd_agrees_everywhere"]
        and r["counterexample_valid"]
        and r["bmc_depth_matches_bitset_oracle"]
    ),
}


def _run_experiments(engine: str, quick: bool, out) -> bool:
    from repro.analysis import experiments

    print("running E1-E12 (engine=%s, quick=%s)" % (engine, quick), file=out)
    ran = timed_call(experiments.run_all, quick=quick, engine=engine)
    print("  %-20s %s" % ("experiment", "reproduced"), file=out)
    ok = True
    for name, result in ran.value.items():
        headline = _EXPERIMENT_HEADLINES[name](result)
        ok = ok and headline
        print("  %-20s %s" % (name, headline), file=out)
    print("  total: %.2fs" % ran.seconds, file=out)
    return ok


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``python -m repro`` / the ``repro-mc`` console script."""
    args = build_parser().parse_args(argv)
    out = sys.stdout
    if args.ring_size < 1:
        print("error: --ring-size must be at least 1", file=sys.stderr)
        return 2
    if args.bound is not None and args.engine != "bmc":
        print("error: --bound only applies to --engine bmc", file=sys.stderr)
        return 2
    if args.bound is not None and args.bound < 0:
        print("error: --bound must be non-negative", file=sys.stderr)
        return 2
    if args.engine == "bmc" and args.fairness:
        print(
            "error: the bmc engine does not implement fairness-constrained "
            "semantics; use bitset, naive, or bdd",
            file=sys.stderr,
        )
        return 2
    if args.experiments:
        if args.engine == "bmc":
            print(
                "error: the experiment suite sweeps the full-CTL engines; the "
                "BMC story is replayed as E12 under any of them",
                file=sys.stderr,
            )
            return 2
        if args.fairness:
            print(
                "error: --fairness applies to single ring checks; the experiment "
                "suite already replays the fairness story as E11",
                file=sys.stderr,
            )
            return 2
        if args.profile:
            print(
                "error: --profile applies to single ring checks",
                file=sys.stderr,
            )
            return 2
        ok = _run_experiments(args.engine, args.quick, out)
    else:
        ok = _run_ring_check(
            args.engine,
            args.ring_size,
            args.fairness,
            out,
            profile=args.profile,
            bound=args.bound,
        )
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
