"""Command-line interface: run the paper's experiments from a shell.

``python -m repro`` (or the ``repro-mc`` console script) checks a property
family on a system of the requested size with the requested engine, printing
a small results table::

    $ python -m repro --engine bdd --size 10
    M_10 via engine=bdd (direct symbolic encoding)
      states      : 10240
      transitions : 61430
      ...

``--system`` picks the process family: the Section 5 token ``ring`` (the
default, checked against the paper's properties and invariants), the
lock-based ``mutex`` protocol, or the saturating ripple ``counter``.  The
engine choices come from :data:`repro.mc.bitset.ENGINE_NAMES`
(``docs/ENGINES.md`` is the when-to-use-which guide).  With ``--engine bdd``
the system is encoded *directly* as binary decision diagrams (the explicit
global state graph is never built), so sizes well beyond the explicit
engines' range remain tractable; with the explicit engines the global graph
is built first, exactly like the library's programmatic path.  The SAT
engines also start from the direct encoding but never run a reachability
fixpoint: ``--engine bmc`` unrolls it into an incremental solver and proves
invariants by k-induction (or refutes them with a depth-minimal
counterexample within ``--bound``), while ``--engine ic3`` proves them
*unboundedly* by property-directed reachability, reporting a re-verified
inductive-invariant certificate (``--bound`` then caps the frame count, a
divergence safety net rather than a proof parameter).  Properties outside a
SAT engine's fragment are reported as skipped.  ``--engine portfolio``
races the other engines per property in supervised worker processes —
first conclusive verdict wins, crashed or hung workers are restarted, and
``--workers`` caps the pool (see ``docs/RESILIENCE.md``).  ``--timeout``
and ``--memory-limit`` attach a resource budget that every engine observes
at its cooperative checkpoints; ``--buggy`` builds the seeded-bug system
variants.  ``--fairness`` switches
every check to the fairness-constrained semantics and adds the
fairness-dependent liveness family.  ``--experiments`` instead replays the
full E1–E13 experiment suite and prints one summary line per experiment.

The process exits non-zero when a checked property is violated (or an
experiment's headline claim fails to reproduce), so the command doubles as a
CI smoke check.

Observability (see ``docs/OBSERVABILITY.md``): ``--trace FILE`` records a
Chrome/Perfetto trace-event JSON of the run's nested spans (load it at
``ui.perfetto.dev``), ``--metrics FILE`` dumps the metrics registry as JSONL
(one labeled series per line), ``--progress`` prints rate-limited heartbeat
lines from the engines' outer loops, and ``--profile`` emits exactly one
JSON document on stderr summarising phases, engine statistics, and the
metrics snapshot.  For ``--engine portfolio`` the trace and metrics include
the raced workers' own telemetry (one Perfetto lane per engine,
``worker=<engine>``-labelled metric rows); analyse the artifacts offline
with the ``repro-obs`` console script (``repro-obs report``,
``repro-obs diff``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.timing import timed_call
from repro.mc.bitset import ENGINE_NAMES

__all__ = ["main", "build_parser"]

#: The system families the CLI can check, in presentation order.
SYSTEM_NAMES = ("ring", "mutex", "counter")

#: The engines that reject fairness-constrained semantics (SAT-based).
_SAT_ENGINES = ("bmc", "ic3")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mc",
        description=(
            "Model check a process family from the Clarke-Grumberg-Browne "
            "PODC '86 reproduction (systems: %s) with one of the engines: "
            "%s." % (", ".join(SYSTEM_NAMES), ", ".join(ENGINE_NAMES))
        ),
    )
    parser.add_argument(
        "--engine",
        choices=ENGINE_NAMES,
        default="bitset",
        help=(
            # Deliberate subset: the engines that skip the explicit graph.
            "engine to use (default: bitset; bdd, bmc and ic3 never build "  # repro-lint: disable=R001
            "the explicit graph — see docs/ENGINES.md)"
        ),
    )
    parser.add_argument(
        "--system",
        choices=SYSTEM_NAMES,
        default="ring",
        help=(
            "process family to check (default: ring — the paper's Section 5 "
            "token ring)"
        ),
    )
    parser.add_argument(
        "--size",
        "--ring-size",
        dest="size",
        type=int,
        default=4,
        metavar="N",
        help=(
            "number of processes of the family (default: 4); --ring-size is "
            "the backward-compatible alias"
        ),
    )
    parser.add_argument(
        "--bound",
        type=int,
        default=None,
        metavar="K",
        help=(
            "with --engine bmc: falsification/induction depth ceiling "
            "(default: %d); with --engine ic3: frame-count ceiling "
            "(default: %d)" % (_default_bound(), _default_frames())
        ),
    )
    parser.add_argument(
        "--fairness",
        action="store_true",
        help=(
            "check under per-process scheduler fairness and include the "
            "fairness-dependent liveness family (ring and mutex only)"
        ),
    )
    parser.add_argument(
        "--experiments",
        action="store_true",
        help="run the full E1-E13 experiment suite instead of a single check",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "emit a JSON profile to stderr: per-phase wall times (build, each "
            "check) plus, for the bdd engine, live/peak node counts, cache "
            "hit/miss/evict statistics, and GC/reorder activity; for the "
            "SAT engines, solver statistics (conflicts, decisions, "
            "propagations, learned/subsumed clauses) and, for ic3, the "
            "frame/obligation/generalization counters"
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="with --experiments: use the smaller quick parameters",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help=(
            "record a Chrome/Perfetto trace-event JSON of the run's nested "
            "spans to FILE (open it at ui.perfetto.dev, or analyse it with "
            "repro-obs report)"
        ),
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        default=None,
        help=(
            "write the metrics registry to FILE as JSONL, one labeled "
            "series per line"
        ),
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help=(
            "print rate-limited [progress] heartbeat lines from the "
            "engines' outer loops (fixpoint rounds, BMC depths, IC3 frames)"
        ),
    )
    parser.add_argument(
        "--buggy",
        action="store_true",
        help=(
            "build the seeded-bug variant of the system (every family has "
            "one) so violated properties exercise the counterexample and "
            "portfolio-disagreement paths"
        ),
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "wall-clock budget for the checks; engines observe it at their "
            "cooperative checkpoints and report BUDGET EXHAUSTED instead of "
            "running away (portfolio workers each get the full budget)"
        ),
    )
    parser.add_argument(
        "--memory-limit",
        type=int,
        default=None,
        metavar="MB",
        help=(
            "address-space ceiling in mebibytes, enforced with setrlimit; "
            "with --engine portfolio each worker process gets the ceiling, "
            "otherwise it applies to this process"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "with --engine portfolio: cap the number of racing worker "
            "processes (default: one per raced engine)"
        ),
    )
    return parser


def _default_bound() -> int:
    from repro.mc.bmc import DEFAULT_BOUND

    return DEFAULT_BOUND


def _default_frames() -> int:
    from repro.mc.ic3 import DEFAULT_MAX_FRAMES

    return DEFAULT_MAX_FRAMES


def _ring_family(size: int, fairness: bool):
    from repro.systems import token_ring

    family = {}
    for name, formula in token_ring.ring_properties().items():
        family["property " + name] = formula
    for name, formula in token_ring.ring_invariants().items():
        family["invariant " + name] = formula
    family["invariant mutual_exclusion"] = token_ring.ring_mutual_exclusion(size)
    constraint = None
    if fairness:
        constraint = token_ring.ring_scheduler_fairness(size)
        # The AF t_i family is only true under fairness — see E11.
        for name, formula in token_ring.fair_ring_properties().items():
            family["fair liveness " + name] = formula
    return family, constraint


def _mutex_family(size: int, fairness: bool):
    from repro.systems import mutex

    family = {"invariant mutual_exclusion": mutex.mutex_safety(size)}
    constraint = None
    if fairness:
        constraint = mutex.mutex_scheduler_fairness(size)
        # Eventual entry is only true under fairness (an all-idle loop
        # never goes critical).
        family["fair liveness eventual_entry"] = mutex.mutex_liveness()
    return family, constraint


def _counter_family(size: int, fairness: bool):
    from repro.systems import counter

    return {"invariant nonzero": counter.counter_nonzero(size)}, None


#: Per-system builders: (family+fairness factory, explicit builder,
#: symbolic builder, display name).
_SYSTEMS = {
    "ring": (_ring_family, "build_token_ring", "symbolic_token_ring", "M_%d"),
    "mutex": (_mutex_family, "build_mutex", "symbolic_mutex", "mutex(%d)"),
    "counter": (_counter_family, "build_counter", "symbolic_counter", "counter(%d)"),
}

_SYSTEM_MODULES = {"ring": "token_ring", "mutex": "mutex", "counter": "counter"}


def _make_budget(timeout: Optional[float], memory_limit: Optional[int]):
    """Build a :class:`~repro.runtime.limits.ResourceBudget`, or ``None``."""
    if timeout is None and memory_limit is None:
        return None
    from repro.runtime.limits import ResourceBudget

    return ResourceBudget(
        deadline_s=timeout,
        memory_bytes=None if memory_limit is None else memory_limit * 1024 * 1024,
    )


def _run_check(
    system: str,
    engine: str,
    size: int,
    fairness: bool,
    out,
    profile: bool = False,
    bound: Optional[int] = None,
    buggy: bool = False,
    timeout: Optional[float] = None,
    memory_limit: Optional[int] = None,
    workers: Optional[int] = None,
) -> bool:
    import contextlib
    import importlib

    from repro.errors import (
        BudgetExceededError,
        EngineCrashError,
        FragmentError,
        InconclusiveError,
    )

    family_factory, explicit_name, symbolic_name, display = _SYSTEMS[system]
    module_name = "repro.systems." + _SYSTEM_MODULES[system]
    module = importlib.import_module(module_name)
    build_explicit = getattr(module, explicit_name)
    build_symbolic = getattr(module, symbolic_name)
    family, constraint = family_factory(size, fairness)
    label = display % size
    if buggy:
        label += " (buggy)"
    budget = _make_budget(timeout, memory_limit)

    if engine == "portfolio":
        from repro.runtime.portfolio import PortfolioModelChecker, builder_source

        sources = {
            "bitset": builder_source(module_name, explicit_name, size, buggy=buggy),
            "bdd": builder_source(module_name, symbolic_name, size, buggy=buggy),
            "bmc": builder_source(
                module_name, symbolic_name, size, buggy=buggy, domain="free"
            ),
            "ic3": builder_source(
                module_name, symbolic_name, size, buggy=buggy, domain="free"
            ),
        }
        if constraint is not None:  # pragma: no cover - rejected by main()
            raise FragmentError("the portfolio engine rejects fairness")
        built = timed_call(
            PortfolioModelChecker,
            sources=sources,
            workers=workers,
            bound=bound,
            budget=budget,
        )
        structure = None
        checker = built.value
        descriptor = "parallel portfolio racing %s" % ", ".join(checker.engines)
    elif engine == "bdd":
        from repro.mc.symbolic import SymbolicCTLModelChecker

        built = timed_call(build_symbolic, size, buggy=buggy)
        structure = built.value
        checker = SymbolicCTLModelChecker(structure, fairness=constraint)
        descriptor = "direct symbolic encoding"
    elif engine in _SAT_ENGINES:
        # The free domain skips the symbolic reachability fixpoint — the
        # whole point of the SAT engines is that the bound (bmc) or the
        # discovered invariant (ic3), not the reachable set, pays.
        built = timed_call(build_symbolic, size, buggy=buggy, domain="free")
        structure = built.value
        if engine == "bmc":
            from repro.mc.bmc import BoundedModelChecker

            checker = BoundedModelChecker(
                structure, bound=_default_bound() if bound is None else bound
            )
            descriptor = (
                "SAT unrolling of the direct encoding, bound=%d" % checker.bound
            )
        else:
            from repro.mc.ic3 import IC3ModelChecker

            checker = IC3ModelChecker(
                structure,
                max_frames=_default_frames() if bound is None else bound,
            )
            descriptor = (
                "IC3 over the direct encoding, max %d frames" % checker.max_frames
            )
    else:
        from repro.mc.indexed import ICTLStarModelChecker

        built = timed_call(build_explicit, size, buggy=buggy)
        structure = built.value
        # Concrete-index property families (pairwise mutual exclusion) are
        # already instantiated, which the Section 4 closedness restriction
        # would reject — so the explicit engines skip enforcement here.
        checker = ICTLStarModelChecker(
            structure,
            engine=engine,
            fairness=constraint,
            enforce_restrictions=False,
        )
        descriptor = "explicit state graph"

    print("%s via engine=%s (%s)" % (label, engine, descriptor), file=out)
    if constraint is not None:
        print("  fairness    : %d conditions" % len(constraint), file=out)
    if engine == "portfolio":
        # Structures are built worker-side, one natural encoding per engine.
        print("  workers     : %d" % len(checker.engines), file=out)
        if budget is not None:
            print("  budget      : %s" % budget.as_dict(), file=out)
    elif engine in _SAT_ENGINES:
        # No reachability fixpoint ran, so state counts are not available.
        print("  state bits  : %d" % structure.num_bits, file=out)
    else:
        print("  states      : %d" % structure.num_states, file=out)
        print("  transitions : %d" % structure.num_transitions, file=out)
    print("  build       : %.4fs" % built.seconds, file=out)
    print("", file=out)
    print("  %-34s %-8s %s" % ("check", "verdict", "seconds"), file=out)
    all_hold = True
    skipped = []
    inconclusive = []
    exhausted = []
    crashed = []
    phases = [{"name": "build", "seconds": built.seconds}]
    # For the in-process engines a budget is enforced at their cooperative
    # checkpoints; the portfolio hands it to the workers instead.
    budget_scope = contextlib.nullcontext()
    if budget is not None and engine != "portfolio":
        from repro.runtime import limits as _limits

        if budget.memory_bytes is not None:
            _limits.apply_memory_limit(budget.memory_bytes)
        budget_scope = _limits.active(budget)
    with budget_scope:
        for name, formula in family.items():
            try:
                checked = timed_call(checker.check, formula)
            except FragmentError:
                skipped.append(name)
                continue
            except InconclusiveError:
                # Like a fragment skip: the engine could not decide, which is
                # not a violation — the exit code only reflects what was
                # decided.
                inconclusive.append(name)
                continue
            except BudgetExceededError as error:
                exhausted.append((name, error))
                continue
            except EngineCrashError as error:
                crashed.append((name, error))
                continue
            all_hold = all_hold and checked.value
            phases.append({"name": "check %s" % name, "seconds": checked.seconds})
            verdict = str(checked.value)
            if engine in _SAT_ENGINES and checker.last_detail:
                verdict = "%s (%s)" % (checked.value, checker.last_detail)
            elif engine == "portfolio" and checker.last_detail:
                verdict = "%s (%s)" % (checked.value, checker.last_detail)
            print("  %-34s %-8s %.4f" % (name, verdict, checked.seconds), file=out)
    for name in skipped:
        print(
            "  %-34s %-8s" % (name, "skipped (outside the %s fragment)" % engine),
            file=out,
        )
    for name in inconclusive:
        print("  %-34s %-8s" % (name, "INCONCLUSIVE (raise --bound)"), file=out)
    for name, error in exhausted:
        print(
            "  %-34s %-8s" % (name, "BUDGET EXHAUSTED (%s)" % error.resource),
            file=out,
        )
    for name, error in crashed:
        print("  %-34s %-8s" % (name, "CRASHED (%s)" % error), file=out)
    print("", file=out)
    checked_what = (
        "checked properties and invariants"
        if skipped or inconclusive or exhausted or crashed
        else "all properties and invariants"
    )
    if all_hold:
        print("  %s hold on %s" % (checked_what, label), file=out)
    else:
        print("  FAILURE: some property/invariant is violated on %s" % label, file=out)
    if profile:
        import json

        from repro.obs.metrics import REGISTRY

        payload = {
            "schema": "repro.profile/v2",
            "mode": "check",
            "engine": engine,
            "system": system,
            "size": size,
            "fairness": fairness,
            "phases": phases,
            "total_seconds": sum(phase["seconds"] for phase in phases),
            "metrics": REGISTRY.snapshot(),
        }
        if engine == "portfolio":
            payload["portfolio"] = dict(checker.last_outcomes)
        if engine == "bdd":
            payload["bdd"] = structure.manager.stats().as_dict()
        if engine in _SAT_ENGINES:
            payload["bdd"] = structure.manager.stats().as_dict()
            payload["sat"] = checker.stats()
            if engine == "bmc":
                payload["bound"] = checker.bound
            else:
                payload["max_frames"] = checker.max_frames
                if checker.certificate is not None:
                    payload["certificate_clauses"] = (
                        checker.certificate.num_clauses
                    )
        print(json.dumps(payload, indent=2, sort_keys=True), file=sys.stderr)
    return all_hold


#: Per-experiment extractor of the headline "did the paper's claim reproduce"
#: boolean from the experiment's result dictionary.
_EXPERIMENT_HEADLINES = {
    "E1_fig31": lambda r: r["corresponds"] and r["all_agree"],
    "E2_fig41": lambda r: r["counting_matches_size"],
    "E3_nexttime": lambda r: r["holds_only_when_size_divides_3"],
    "E4_fig51": lambda r: r["is_total"] and r["partition_invariant"],
    "E5_invariants": lambda r: r["all_hold"],
    "E6_properties": lambda r: r["all_hold"],
    # The paper's M_2 claim is refuted (documented deviation); the corrected
    # base-3 claim and the transfer workflow must reproduce.
    "E7_correspondence": lambda r: (
        r["corrected_claim_base3_corresponds"] and r["transfers_match_direct"]
    ),
    "E8_explosion": lambda r: (
        r["states_grow_monotonically"]
        and all(row["all_hold"] for row in r["symbolic_sweep"])
    ),
    "E9_conjecture": lambda r: r["conjecture_holds_on_family"],
    "E10_scaling": lambda r: all(row["corresponds"] for row in r["rows"]),
    "E11_fairness": lambda r: (
        r["unfair_fails_everywhere"]
        and r["fair_holds_everywhere"]
        and r["engines_agree"]
        and r["counterexample_valid"]
    ),
    "E12_bmc": lambda r: (
        r["bmc_found_everywhere"]
        and r["bdd_agrees_everywhere"]
        and r["counterexample_valid"]
        and r["bmc_depth_matches_bitset_oracle"]
    ),
    "E13_ic3": lambda r: (
        r["ic3_proved_everywhere"]
        and r["bdd_agrees_everywhere"]
        and r["kinduction_inconclusive_on_ring"]
        and r["ic3_beats_bdd_on_counter"]
        and r["oracle_agrees"]
        and r["counterexample_valid"]
    ),
}


def _run_experiments(engine: str, quick: bool, out, profile: bool = False) -> bool:
    from repro.analysis import experiments

    print("running E1-E13 (engine=%s, quick=%s)" % (engine, quick), file=out)
    ran = timed_call(experiments.run_all, quick=quick, engine=engine)
    print("  %-20s %s" % ("experiment", "reproduced"), file=out)
    ok = True
    headlines = {}
    for name, result in ran.value.items():
        headline = _EXPERIMENT_HEADLINES[name](result)
        headlines[name] = headline
        ok = ok and headline
        print("  %-20s %s" % (name, headline), file=out)
    print("  total: %.2fs" % ran.seconds, file=out)
    if profile:
        import json

        from repro.obs.metrics import REGISTRY

        payload = {
            "schema": "repro.profile/v2",
            "mode": "experiments",
            "engine": engine,
            "quick": quick,
            "experiments": headlines,
            "total_seconds": ran.seconds,
            "metrics": REGISTRY.snapshot(),
        }
        print(json.dumps(payload, indent=2, sort_keys=True), file=sys.stderr)
    return ok


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``python -m repro`` / the ``repro-mc`` console script."""
    args = build_parser().parse_args(argv)
    out = sys.stdout
    if args.size < 1:
        print("error: --size (--ring-size) must be at least 1", file=sys.stderr)
        return 2
    if args.bound is not None and args.engine not in _SAT_ENGINES + ("portfolio",):
        print(
            "error: --bound only applies to the SAT engines or the portfolio "
            "(where it caps its SAT members)",
            file=sys.stderr,
        )
        return 2
    if args.bound is not None and args.bound < 0:
        print("error: --bound must be non-negative", file=sys.stderr)
        return 2
    if args.engine == "ic3" and args.bound is not None and args.bound < 1:
        print("error: the ic3 frame ceiling must be positive", file=sys.stderr)
        return 2
    if args.engine in _SAT_ENGINES and args.fairness:
        print(
            "error: the SAT engines (bmc, ic3) do not implement fairness-"
            "constrained semantics; use bitset, naive, or bdd",
            file=sys.stderr,
        )
        return 2
    if args.engine == "portfolio" and args.fairness:
        print(
            "error: the portfolio races the SAT engines, which reject "
            "fairness; use bitset, naive, or bdd",
            file=sys.stderr,
        )
        return 2
    if args.workers is not None and args.engine != "portfolio":
        print("error: --workers only applies to --engine portfolio", file=sys.stderr)
        return 2
    if args.workers is not None and args.workers < 1:
        print("error: --workers must be at least 1", file=sys.stderr)
        return 2
    if args.timeout is not None and args.timeout <= 0:
        print("error: --timeout must be positive", file=sys.stderr)
        return 2
    if args.memory_limit is not None and args.memory_limit < 1:
        print("error: --memory-limit must be at least 1 MiB", file=sys.stderr)
        return 2
    if args.system == "counter" and args.fairness:
        print(
            "error: the counter family has no fairness story (it is "
            "deterministic); use --system ring or mutex",
            file=sys.stderr,
        )
        return 2
    if args.experiments:
        if args.engine in _SAT_ENGINES or args.engine == "portfolio":
            print(
                "error: the experiment suite sweeps the full-CTL engines; the "
                "SAT stories are replayed as E12/E13 under any of them",
                file=sys.stderr,
            )
            return 2
        if (
            args.buggy
            or args.workers is not None
            or args.timeout is not None
            or args.memory_limit is not None
        ):
            print(
                "error: --buggy/--timeout/--memory-limit/--workers apply to "
                "single checks, not the experiment suite",
                file=sys.stderr,
            )
            return 2
        if args.system != "ring":
            print(
                "error: --system applies to single checks; the experiment "
                "suite already sweeps the mutex and counter families in E13",
                file=sys.stderr,
            )
            return 2
        if args.fairness:
            print(
                "error: --fairness applies to single checks; the experiment "
                "suite already replays the fairness story as E11",
                file=sys.stderr,
            )
            return 2

    from repro.obs import progress as obs_progress
    from repro.obs import trace as obs_trace
    from repro.obs.metrics import REGISTRY
    from repro.obs.sinks import ChromeTraceSink, write_metrics_jsonl

    # One run, one registry: repeated in-process main() calls (tests) must
    # not leak counts into each other's --profile/--metrics exports.
    REGISTRY.reset()
    sinks = []
    if args.trace is not None:
        sinks.append(ChromeTraceSink(args.trace))
    if sinks:
        obs_trace.enable(sinks, keep_records=False)
    if args.progress:
        # With --profile, stderr must stay exactly one JSON document, so
        # heartbeats move to stdout alongside the results table.
        obs_progress.enable_progress(stream=out if args.profile else None)
    ok = False
    interrupted = False
    try:
        if args.experiments:
            ok = _run_experiments(args.engine, args.quick, out, profile=args.profile)
        else:
            ok = _run_check(
                args.system,
                args.engine,
                args.size,
                args.fairness,
                out,
                profile=args.profile,
                bound=args.bound,
                buggy=args.buggy,
                timeout=args.timeout,
                memory_limit=args.memory_limit,
                workers=args.workers,
            )
    except KeyboardInterrupt:
        # Ctrl-C must never strand worker processes or lose the artifacts
        # collected so far: tear the supervisors down, fall through to the
        # flushes below, and exit with the conventional 130.
        interrupted = True
        from repro.runtime.supervisor import shutdown_all

        reaped = shutdown_all()
        print("", file=out)
        print(
            "interrupted: stopped after partial results"
            + (" (%d worker pool(s) torn down)" % reaped if reaped else ""),
            file=sys.stderr,
        )
    finally:
        if sinks:
            tracer = obs_trace.disable()
            if tracer is not None:
                tracer.close()
        if args.progress:
            obs_progress.disable_progress()
        if args.metrics is not None:
            write_metrics_jsonl(
                REGISTRY,
                args.metrics,
                extra={
                    "engine": args.engine,
                    "system": args.system,
                    "size": args.size,
                },
            )
    if interrupted:
        return 130
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
