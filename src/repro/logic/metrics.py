"""Simple structural metrics over formulas.

The metrics are used by the Section 6 experiment (the conjecture that a
formula with at most ``k`` levels of index quantifiers cannot distinguish free
products with more than ``k`` components) and by the benchmark reports.
"""

from __future__ import annotations

from repro.logic.ast import (
    Finally,
    Formula,
    Globally,
    IndexExists,
    IndexForall,
    Next,
    Release,
    Until,
    WeakUntil,
    walk,
)

__all__ = [
    "formula_size",
    "temporal_depth",
    "index_quantifier_count",
    "index_nesting_depth",
]

_TEMPORAL = (Next, Finally, Globally, Until, Release, WeakUntil)
_INDEX_QUANTIFIERS = (IndexExists, IndexForall)


def formula_size(formula: Formula) -> int:
    """Return the number of AST nodes in ``formula``."""
    return sum(1 for _ in walk(formula))


def temporal_depth(formula: Formula) -> int:
    """Return the maximum nesting depth of temporal operators."""
    inc = 1 if isinstance(formula, _TEMPORAL) else 0
    children = formula.children()
    if not children:
        return inc
    return inc + max(temporal_depth(child) for child in children)


def index_quantifier_count(formula: Formula) -> int:
    """Return the total number of index quantifiers (``∨_i`` and ``∧_i``)."""
    return sum(1 for node in walk(formula) if isinstance(node, _INDEX_QUANTIFIERS))


def index_nesting_depth(formula: Formula) -> int:
    """Return the maximum nesting depth of index quantifiers.

    This is the quantity ``k`` in the Section 6 conjecture: with at most ``k``
    nested index quantifiers it should be impossible to distinguish free
    products with more than ``k`` identical components.
    """
    inc = 1 if isinstance(formula, _INDEX_QUANTIFIERS) else 0
    children = formula.children()
    if not children:
        return inc
    return inc + max(index_nesting_depth(child) for child in children)
