"""Abstract syntax trees for CTL*, CTL, LTL, and indexed CTL* (ICTL*).

The paper works with CTL* *without* the next-time operator and extends it with
indexed atomic propositions (``A_i``), the index quantifiers ``∨_i f(i)`` /
``∧_i f(i)``, and the derived "exactly one index" proposition ``Θ_i P_i``.
This module defines a single immutable node hierarchy covering all of these
logics; fragment membership (CTL, LTL, next-free CTL*, restricted ICTL*) is
decided structurally by :mod:`repro.logic.syntax`.

Design notes
------------
* Nodes are frozen dataclasses: they hash and compare structurally, which lets
  the model checkers memoise satisfaction sets per sub-formula.
* The hierarchy contains both *core* operators (negation, disjunction,
  conjunction, ``E``, ``U``, ``X``, ``∨_i``) and *derived* operators
  (implication, ``A``, ``F``, ``G``, ``R``, ``W``, ``∧_i``).  Derived operators
  are first-class nodes so that formulas print the way the user wrote them;
  :func:`repro.logic.transform.expand` rewrites them into the core.
* Index variables are plain strings; concrete index values are integers.  An
  :class:`IndexedAtom` whose ``index`` is a string is *open*; one whose
  ``index`` is an integer refers to a specific process and makes the enclosing
  formula non-closed unless the integer index was produced by instantiating a
  quantifier (see :func:`repro.logic.transform.substitute_index`).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Iterator, Tuple, Union

__all__ = [
    "Formula",
    "TrueLiteral",
    "FalseLiteral",
    "Atom",
    "IndexedAtom",
    "ExactlyOne",
    "Not",
    "And",
    "Or",
    "Implies",
    "Iff",
    "Exists",
    "ForAll",
    "Next",
    "Until",
    "Release",
    "WeakUntil",
    "Finally",
    "Globally",
    "IndexExists",
    "IndexForall",
    "Index",
    "walk",
    "subformulas",
]

#: An index is either a variable name (open) or a concrete process number.
Index = Union[str, int]


@dataclass(frozen=True)
class Formula:
    """Base class of every formula node.

    The base class is never instantiated directly; it provides traversal
    helpers shared by all node types.
    """

    def children(self) -> Tuple["Formula", ...]:
        """Return the immediate sub-formulas of this node, in syntactic order."""
        result = []
        for field in fields(self):
            value = getattr(self, field.name)
            if isinstance(value, Formula):
                result.append(value)
        return tuple(result)

    def __str__(self) -> str:  # pragma: no cover - thin delegation
        from repro.logic.printer import format_formula

        return format_formula(self)

    # Convenience operator overloads.  These build derived nodes so that the
    # textual form of a formula matches how it was constructed in code.
    def __invert__(self) -> "Not":
        return Not(self)

    def __and__(self, other: "Formula") -> "And":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Or":
        return Or(self, other)

    def __rshift__(self, other: "Formula") -> "Implies":
        return Implies(self, other)


# ---------------------------------------------------------------------------
# Atomic formulas
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TrueLiteral(Formula):
    """The constant ``true``."""


@dataclass(frozen=True)
class FalseLiteral(Formula):
    """The constant ``false``."""


@dataclass(frozen=True)
class Atom(Formula):
    """A non-indexed atomic proposition ``A ∈ AP``."""

    name: str


@dataclass(frozen=True)
class IndexedAtom(Formula):
    """An indexed atomic proposition ``A_i`` with ``A ∈ IP``.

    ``index`` is either an index *variable* (a string, bound by an enclosing
    index quantifier) or a concrete process number (an integer).
    """

    name: str
    index: Index


@dataclass(frozen=True)
class ExactlyOne(Formula):
    """The derived proposition ``Θ_i P_i``: exactly one index value satisfies ``P``.

    Section 4 of the paper adds, for every ``P ∈ IP``, a special *non-indexed*
    atomic formula that is true in a state precisely when there is exactly one
    ``c ∈ I`` with ``P_c`` in the state's label.  The token-ring example uses
    it to state that exactly one process holds the token (``AG Θ_i t_i``).
    """

    name: str


# ---------------------------------------------------------------------------
# Boolean connectives
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Not(Formula):
    """Negation ``¬f``."""

    operand: Formula


@dataclass(frozen=True)
class And(Formula):
    """Binary conjunction ``f ∧ g``."""

    left: Formula
    right: Formula


@dataclass(frozen=True)
class Or(Formula):
    """Binary disjunction ``f ∨ g``."""

    left: Formula
    right: Formula


@dataclass(frozen=True)
class Implies(Formula):
    """Implication ``f ⇒ g`` (derived: ``¬f ∨ g``)."""

    left: Formula
    right: Formula


@dataclass(frozen=True)
class Iff(Formula):
    """Bi-implication ``f ⇔ g`` (derived)."""

    left: Formula
    right: Formula


# ---------------------------------------------------------------------------
# Path quantifiers (state formulas)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Exists(Formula):
    """The existential path quantifier ``E(g)``: some path from the state satisfies ``g``."""

    path: Formula


@dataclass(frozen=True)
class ForAll(Formula):
    """The universal path quantifier ``A(g)`` (derived: ``¬E(¬g)``)."""

    path: Formula


# ---------------------------------------------------------------------------
# Temporal operators (path formulas)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Next(Formula):
    """The next-time operator ``X g``.

    The paper deliberately *excludes* next-time from CTL* because it can be
    used to count processes (``AG(t_1 ⇒ XXX t_1)`` holds only in the
    three-process ring).  The node exists so that the library can demonstrate
    exactly that phenomenon; next-free contexts reject it via
    :func:`repro.logic.syntax.assert_next_free`.
    """

    operand: Formula


@dataclass(frozen=True)
class Until(Formula):
    """The (strong) until operator ``g₁ U g₂``."""

    left: Formula
    right: Formula


@dataclass(frozen=True)
class Release(Formula):
    """The release operator ``g₁ R g₂`` (derived: ``¬(¬g₁ U ¬g₂)``)."""

    left: Formula
    right: Formula


@dataclass(frozen=True)
class WeakUntil(Formula):
    """The weak until operator ``g₁ W g₂`` (derived: ``(g₁ U g₂) ∨ G g₁``)."""

    left: Formula
    right: Formula


@dataclass(frozen=True)
class Finally(Formula):
    """The eventuality operator ``F g`` (derived: ``true U g``)."""

    operand: Formula


@dataclass(frozen=True)
class Globally(Formula):
    """The invariance operator ``G g`` (derived: ``¬F ¬g``)."""

    operand: Formula


# ---------------------------------------------------------------------------
# Index quantifiers (state formulas)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IndexExists(Formula):
    """The index quantifier ``∨_i f(i)``: some process index satisfies ``f``."""

    variable: str
    body: Formula


@dataclass(frozen=True)
class IndexForall(Formula):
    """The index quantifier ``∧_i f(i)`` (derived: ``¬∨_i ¬f(i)``)."""

    variable: str
    body: Formula


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def walk(formula: Formula) -> Iterator[Formula]:
    """Yield ``formula`` and every sub-formula in pre-order."""
    stack = [formula]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children()))


def subformulas(formula: Formula) -> Tuple[Formula, ...]:
    """Return the distinct sub-formulas of ``formula`` (including itself).

    The result is ordered so that every formula appears *after* all of its
    proper sub-formulas, which is the evaluation order used by the model
    checkers.
    """
    seen = set()
    ordered = []

    def visit(node: Formula) -> None:
        if node in seen:
            return
        for child in node.children():
            visit(child)
        seen.add(node)
        ordered.append(node)

    visit(formula)
    return tuple(ordered)
