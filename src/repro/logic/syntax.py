"""Fragment classification and the ICTL* syntactic restrictions.

The paper uses several syntactic classes of formulas:

* *state formulas* vs. *path formulas* (Section 2);
* CTL*, which by convention in the paper excludes the next-time operator;
* CTL, the fragment where every temporal operator is immediately preceded by a
  path quantifier (this is the fragment the efficient labelling model checker
  of Clarke–Emerson–Sistla handles);
* *closed* indexed formulas, in which every indexed proposition is within the
  scope of an index quantifier (Section 4);
* *restricted* ICTL*, where index quantifiers may not be nested and may not
  appear inside the operands of an until (Section 4) — without the
  restriction the logic can count processes (Fig. 4.1).

This module implements predicates and ``assert_*`` helpers for all of them.
"""

from __future__ import annotations

from repro.errors import FragmentError, RestrictionError
from repro.logic.ast import (
    And,
    Atom,
    ExactlyOne,
    Exists,
    FalseLiteral,
    Finally,
    ForAll,
    Formula,
    Globally,
    Iff,
    Implies,
    IndexExists,
    IndexForall,
    IndexedAtom,
    Next,
    Not,
    Or,
    Release,
    TrueLiteral,
    Until,
    WeakUntil,
    walk,
)
from repro.logic.transform import free_index_variables

__all__ = [
    "is_state_formula",
    "is_path_formula",
    "is_next_free",
    "assert_next_free",
    "is_closed",
    "assert_closed",
    "is_ctl",
    "assert_ctl",
    "is_ltl_path_formula",
    "uses_indexing",
    "is_restricted_ictl",
    "assert_restricted_ictl",
    "restriction_violations",
]

_ATOMIC = (TrueLiteral, FalseLiteral, Atom, IndexedAtom, ExactlyOne)
_BOOLEAN = (Not, And, Or, Implies, Iff)
_TEMPORAL_UNARY = (Next, Finally, Globally)
_TEMPORAL_BINARY = (Until, Release, WeakUntil)
_PATH_QUANTIFIERS = (Exists, ForAll)
_INDEX_QUANTIFIERS = (IndexExists, IndexForall)


# ---------------------------------------------------------------------------
# State vs. path formulas
# ---------------------------------------------------------------------------


def is_state_formula(formula: Formula) -> bool:
    """Return ``True`` when ``formula`` is a state formula in the sense of Section 2.

    A state formula is an atomic proposition, a boolean combination of state
    formulas, a path quantifier applied to a path formula, or an index
    quantifier applied to a state formula.
    """
    if isinstance(formula, _ATOMIC):
        return True
    if isinstance(formula, _BOOLEAN):
        return all(is_state_formula(child) for child in formula.children())
    if isinstance(formula, _PATH_QUANTIFIERS):
        return is_path_formula(formula.path)
    if isinstance(formula, _INDEX_QUANTIFIERS):
        return is_state_formula(formula.body)
    if isinstance(formula, _TEMPORAL_UNARY + _TEMPORAL_BINARY):
        return False
    raise TypeError("unknown formula node: %r" % (formula,))


def is_path_formula(formula: Formula) -> bool:
    """Return ``True`` when ``formula`` is a path formula.

    Every state formula is also a path formula; in addition boolean and
    temporal combinations of path formulas are path formulas.
    """
    if is_state_formula(formula):
        return True
    if isinstance(formula, _BOOLEAN + _TEMPORAL_UNARY + _TEMPORAL_BINARY):
        return all(is_path_formula(child) for child in formula.children())
    return False


# ---------------------------------------------------------------------------
# Next-freeness
# ---------------------------------------------------------------------------


def is_next_free(formula: Formula) -> bool:
    """Return ``True`` when ``formula`` contains no next-time operator."""
    return not any(isinstance(node, Next) for node in walk(formula))


def assert_next_free(formula: Formula) -> None:
    """Raise :class:`FragmentError` if ``formula`` uses the next-time operator."""
    if not is_next_free(formula):
        raise FragmentError(
            "the paper's CTL* excludes the next-time operator "
            "(it can count processes); formula uses X: %s" % formula
        )


# ---------------------------------------------------------------------------
# Closedness of indexed formulas
# ---------------------------------------------------------------------------


def is_closed(formula: Formula) -> bool:
    """Return ``True`` when every indexed proposition is bound by a quantifier.

    Closed formulas cannot refer to a specific process, which is what makes the
    ICTL* correspondence theorem possible.  Indexed atoms with *concrete*
    integer indices make a formula non-closed.
    """
    if free_index_variables(formula):
        return False
    return not any(
        isinstance(node, IndexedAtom) and isinstance(node.index, int)
        for node in walk(formula)
    )


def assert_closed(formula: Formula) -> None:
    """Raise :class:`FragmentError` if ``formula`` is not closed."""
    if not is_closed(formula):
        raise FragmentError(
            "ICTL* formulas must be closed: every indexed proposition must be "
            "bound by an index quantifier and no concrete process numbers may "
            "appear (got %s)" % formula
        )


# ---------------------------------------------------------------------------
# CTL
# ---------------------------------------------------------------------------


def is_ctl(formula: Formula) -> bool:
    """Return ``True`` when ``formula`` is a CTL state formula.

    In CTL every temporal operator is immediately preceded by a path
    quantifier and its operands are again CTL state formulas.  Index
    quantifiers are permitted (over CTL bodies), which is what the ICTL*
    checker relies on to dispatch the Section 5 properties to the efficient
    labelling algorithm.
    """
    if isinstance(formula, _ATOMIC):
        return True
    if isinstance(formula, _BOOLEAN):
        return all(is_ctl(child) for child in formula.children())
    if isinstance(formula, _INDEX_QUANTIFIERS):
        return is_ctl(formula.body)
    if isinstance(formula, _PATH_QUANTIFIERS):
        path = formula.path
        if isinstance(path, _TEMPORAL_UNARY):
            return is_ctl(path.operand)
        if isinstance(path, _TEMPORAL_BINARY):
            return is_ctl(path.left) and is_ctl(path.right)
        return False
    return False


def assert_ctl(formula: Formula) -> None:
    """Raise :class:`FragmentError` if ``formula`` is not in CTL."""
    if not is_ctl(formula):
        raise FragmentError("formula is not in CTL: %s" % formula)


def is_ltl_path_formula(formula: Formula) -> bool:
    """Return ``True`` when ``formula`` is a pure path (LTL) formula.

    A pure path formula contains no path quantifiers and no index
    quantifiers; its leaves are atomic propositions.
    """
    return not any(
        isinstance(node, _PATH_QUANTIFIERS + _INDEX_QUANTIFIERS) for node in walk(formula)
    )


# ---------------------------------------------------------------------------
# The ICTL* restrictions of Section 4
# ---------------------------------------------------------------------------


def uses_indexing(formula: Formula) -> bool:
    """Return ``True`` when ``formula`` mentions indexed propositions or quantifiers."""
    return any(
        isinstance(node, (IndexedAtom, ExactlyOne) + _INDEX_QUANTIFIERS)
        for node in walk(formula)
    )


def restriction_violations(formula: Formula) -> list:
    """Return a list of human-readable descriptions of ICTL* restriction violations.

    The restrictions (Section 4 of the paper) are:

    1. The formula must be closed.
    2. The formula must not use the next-time operator.
    3. An index quantifier may not appear in the scope of another index
       quantifier (``∧_i`` abbreviates ``¬∨_i ¬``, so both count).
    4. Neither operand of an until (or of the derived ``F``/``G``/``R``/``W``
       operators, which expand to untils) may contain an index quantifier.

    An empty list means the formula is a well-formed restricted ICTL* formula.
    """
    violations = []
    if not is_state_formula(formula):
        violations.append("formula is not a state formula")
    if not is_closed(formula):
        violations.append("formula is not closed")
    if not is_next_free(formula):
        violations.append("formula uses the next-time operator X")
    violations.extend(_nesting_violations(formula, under_quantifier=False))
    violations.extend(_until_violations(formula))
    return violations


def _nesting_violations(formula: Formula, under_quantifier: bool) -> list:
    violations = []
    if isinstance(formula, _INDEX_QUANTIFIERS):
        if under_quantifier:
            violations.append(
                "index quantifier over '%s' is nested inside another index quantifier"
                % formula.variable
            )
        violations.extend(_nesting_violations(formula.body, under_quantifier=True))
        return violations
    for child in formula.children():
        violations.extend(_nesting_violations(child, under_quantifier))
    return violations


def _until_violations(formula: Formula) -> list:
    violations = []
    if isinstance(formula, _TEMPORAL_BINARY + (Finally, Globally)):
        for child in formula.children():
            if any(isinstance(node, _INDEX_QUANTIFIERS) for node in walk(child)):
                violations.append(
                    "index quantifier appears inside an operand of a temporal "
                    "operator (%s)" % type(formula).__name__
                )
    for child in formula.children():
        violations.extend(_until_violations(child))
    return violations


def is_restricted_ictl(formula: Formula) -> bool:
    """Return ``True`` when ``formula`` is a restricted (well-formed) ICTL* formula."""
    return not restriction_violations(formula)


def assert_restricted_ictl(formula: Formula) -> None:
    """Raise :class:`RestrictionError` unless ``formula`` is restricted ICTL*."""
    violations = restriction_violations(formula)
    if violations:
        raise RestrictionError(
            "formula violates the ICTL* restrictions: %s (formula: %s)"
            % ("; ".join(violations), formula)
        )
