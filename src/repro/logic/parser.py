"""A recursive-descent parser for a textual CTL*/ICTL* syntax.

The grammar (binding strength increases downward)::

    formula   :=  iff
    iff       :=  implies ( '<->' implies )*
    implies   :=  or ( '->' implies )?                    (right associative)
    or        :=  and ( '|' and )*
    and       :=  until ( '&' until )*
    until     :=  unary ( ('U' | 'R' | 'W') until )?      (right associative)
    unary     :=  '!' unary
               |  'E' unary | 'A' unary
               |  'X' unary | 'F' unary | 'G' unary
               |  'forall' IDENT '.' formula
               |  'exists' IDENT '.' formula
               |  'one' IDENT
               |  'true' | 'false'
               |  IDENT ( '[' (IDENT | NUMBER) ']' )?
               |  '(' formula ')'

Examples
--------
>>> parse("forall i . AG(d[i] -> AF c[i])")          # doctest: +ELLIPSIS
IndexForall(...)
>>> parse("AG one t")                                 # doctest: +ELLIPSIS
ForAll(...)

The printed form of a formula (``str(f)``) parses back to a structurally equal
formula.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ParseError
from repro.logic.ast import (
    And,
    Atom,
    ExactlyOne,
    Exists,
    FalseLiteral,
    Finally,
    ForAll,
    Formula,
    Globally,
    Iff,
    Implies,
    IndexExists,
    IndexForall,
    IndexedAtom,
    Next,
    Not,
    Or,
    Release,
    TrueLiteral,
    Until,
    WeakUntil,
)

__all__ = ["parse", "tokenize"]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<arrow2><->)
  | (?P<arrow>->)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<lbracket>\[)
  | (?P<rbracket>\])
  | (?P<dot>\.)
  | (?P<and>&)
  | (?P<or>\|)
  | (?P<not>!)
  | (?P<number>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)

#: Identifiers treated as keywords rather than proposition names.
_KEYWORDS = {"E", "A", "X", "F", "G", "U", "R", "W", "true", "false", "forall", "exists", "one"}

#: Compact path-quantifier/temporal combinations accepted as single tokens, so
#: that the familiar CTL spellings ``AG f``, ``EF f`` … parse without a space.
_COMBINED = {
    "AX": ("A", "X"),
    "AF": ("A", "F"),
    "AG": ("A", "G"),
    "EX": ("E", "X"),
    "EF": ("E", "F"),
    "EG": ("E", "G"),
}


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def tokenize(text: str) -> List[_Token]:
    """Split ``text`` into tokens; raises :class:`ParseError` on unknown characters."""
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError("unexpected character %r" % text[position], position)
        kind = match.lastgroup
        value = match.group()
        if kind != "ws":
            # A keyword immediately followed by '[' is an indexed proposition
            # whose name merely collides with the keyword (e.g. ``A[2]`` in the
            # Fig. 4.1 example), so keep it as a plain identifier.
            followed_by_index = match.end() < len(text) and text[match.end()] == "["
            if kind == "ident" and value in _COMBINED and not followed_by_index:
                for part in _COMBINED[value]:
                    tokens.append(_Token(part, part, position))
            else:
                if kind == "ident" and value in _KEYWORDS and not followed_by_index:
                    kind = value
                tokens.append(_Token(kind, value, position))
        position = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over a token list."""

    def __init__(self, tokens: List[_Token], text: str) -> None:
        self._tokens = tokens
        self._text = text
        self._index = 0

    # -- token helpers -----------------------------------------------------

    def _peek(self) -> Optional[_Token]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _advance(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of formula", len(self._text))
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._peek()
        if token is None or token.kind != kind:
            found = token.text if token is not None else "end of formula"
            position = token.position if token is not None else len(self._text)
            raise ParseError("expected %r but found %r" % (kind, found), position)
        return self._advance()

    def _accept(self, kind: str) -> Optional[_Token]:
        token = self._peek()
        if token is not None and token.kind == kind:
            return self._advance()
        return None

    # -- grammar -----------------------------------------------------------

    def parse(self) -> Formula:
        formula = self._iff()
        token = self._peek()
        if token is not None:
            raise ParseError("unexpected trailing input %r" % token.text, token.position)
        return formula

    def _iff(self) -> Formula:
        left = self._implies()
        while self._accept("arrow2"):
            right = self._implies()
            left = Iff(left, right)
        return left

    def _implies(self) -> Formula:
        left = self._or()
        if self._accept("arrow"):
            right = self._implies()
            return Implies(left, right)
        return left

    def _or(self) -> Formula:
        left = self._and()
        while self._accept("or"):
            right = self._and()
            left = Or(left, right)
        return left

    def _and(self) -> Formula:
        left = self._until()
        while self._accept("and"):
            right = self._until()
            left = And(left, right)
        return left

    def _until(self) -> Formula:
        left = self._unary()
        token = self._peek()
        if token is not None and token.kind in ("U", "R", "W"):
            self._advance()
            right = self._until()
            node = {"U": Until, "R": Release, "W": WeakUntil}[token.kind]
            return node(left, right)
        return left

    def _unary(self) -> Formula:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of formula", len(self._text))
        if token.kind == "not":
            self._advance()
            return Not(self._unary())
        if token.kind == "E":
            self._advance()
            return Exists(self._unary())
        if token.kind == "A":
            self._advance()
            return ForAll(self._unary())
        if token.kind == "X":
            self._advance()
            return Next(self._unary())
        if token.kind == "F":
            self._advance()
            return Finally(self._unary())
        if token.kind == "G":
            self._advance()
            return Globally(self._unary())
        if token.kind in ("forall", "exists"):
            self._advance()
            variable = self._expect("ident").text
            self._expect("dot")
            body = self._iff()
            node = IndexForall if token.kind == "forall" else IndexExists
            return node(variable, body)
        if token.kind == "one":
            self._advance()
            name = self._expect("ident").text
            return ExactlyOne(name)
        if token.kind == "true":
            self._advance()
            return TrueLiteral()
        if token.kind == "false":
            self._advance()
            return FalseLiteral()
        if token.kind == "ident":
            self._advance()
            if self._accept("lbracket"):
                index_token = self._peek()
                if index_token is None or index_token.kind not in ("ident", "number"):
                    raise ParseError(
                        "expected an index variable or number inside [...]",
                        index_token.position if index_token else len(self._text),
                    )
                self._advance()
                self._expect("rbracket")
                index = (
                    int(index_token.text) if index_token.kind == "number" else index_token.text
                )
                return IndexedAtom(token.text, index)
            return Atom(token.text)
        if token.kind == "lparen":
            self._advance()
            inner = self._iff()
            self._expect("rparen")
            return inner
        raise ParseError("unexpected token %r" % token.text, token.position)


def parse(text: str) -> Formula:
    """Parse ``text`` into a formula AST.

    Raises
    ------
    ParseError
        If the text is not a well-formed formula.
    """
    return _Parser(tokenize(text), text).parse()
