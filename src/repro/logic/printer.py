"""Rendering formulas back to the textual syntax accepted by the parser.

The printed form round-trips: ``parse(format_formula(f))`` is structurally
equal to ``f`` for every formula built from the public constructors.
"""

from __future__ import annotations

from repro.logic.ast import (
    And,
    Atom,
    ExactlyOne,
    Exists,
    FalseLiteral,
    Finally,
    ForAll,
    Formula,
    Globally,
    Iff,
    Implies,
    IndexExists,
    IndexForall,
    IndexedAtom,
    Next,
    Not,
    Or,
    Release,
    TrueLiteral,
    Until,
    WeakUntil,
)

__all__ = ["format_formula"]

# Binding strength of each operator family, used to decide where parentheses
# are required.  Larger numbers bind tighter.
_PRECEDENCE = {
    Iff: 1,
    Implies: 2,
    Or: 3,
    And: 4,
    Until: 5,
    Release: 5,
    WeakUntil: 5,
    Not: 6,
    Exists: 6,
    ForAll: 6,
    Next: 6,
    Finally: 6,
    Globally: 6,
}

_ATOMIC = (Atom, IndexedAtom, ExactlyOne, TrueLiteral, FalseLiteral)


def format_formula(formula: Formula) -> str:
    """Render ``formula`` in the textual syntax understood by :func:`repro.logic.parser.parse`."""
    return _render(formula, 0)


def _precedence(formula: Formula) -> int:
    if isinstance(formula, _ATOMIC):
        return 10
    if isinstance(formula, (IndexExists, IndexForall)):
        return 0
    return _PRECEDENCE[type(formula)]


def _render(formula: Formula, parent_precedence: int) -> str:
    text = _render_bare(formula)
    if _precedence(formula) < parent_precedence:
        return "(" + text + ")"
    return text


def _render_bare(formula: Formula) -> str:
    if isinstance(formula, TrueLiteral):
        return "true"
    if isinstance(formula, FalseLiteral):
        return "false"
    if isinstance(formula, Atom):
        return formula.name
    if isinstance(formula, IndexedAtom):
        return "%s[%s]" % (formula.name, formula.index)
    if isinstance(formula, ExactlyOne):
        return "one %s" % formula.name
    if isinstance(formula, Not):
        return "!" + _render(formula.operand, _PRECEDENCE[Not] + 1)
    if isinstance(formula, And):
        # '&' parses left-associatively, so a nested right operand needs parentheses.
        level = _PRECEDENCE[And]
        return "%s & %s" % (_render(formula.left, level), _render(formula.right, level + 1))
    if isinstance(formula, Or):
        level = _PRECEDENCE[Or]
        return "%s | %s" % (_render(formula.left, level), _render(formula.right, level + 1))
    if isinstance(formula, Implies):
        # '->' parses right-associatively.
        level = _PRECEDENCE[Implies]
        return "%s -> %s" % (_render(formula.left, level + 1), _render(formula.right, level))
    if isinstance(formula, Iff):
        # '<->' parses left-associatively.
        level = _PRECEDENCE[Iff]
        return "%s <-> %s" % (_render(formula.left, level), _render(formula.right, level + 1))
    if isinstance(formula, Until):
        level = _PRECEDENCE[Until]
        return "%s U %s" % (_render(formula.left, level + 1), _render(formula.right, level + 1))
    if isinstance(formula, Release):
        level = _PRECEDENCE[Release]
        return "%s R %s" % (_render(formula.left, level + 1), _render(formula.right, level + 1))
    if isinstance(formula, WeakUntil):
        level = _PRECEDENCE[WeakUntil]
        return "%s W %s" % (_render(formula.left, level + 1), _render(formula.right, level + 1))
    if isinstance(formula, Exists):
        return "E " + _render(formula.path, _PRECEDENCE[Exists])
    if isinstance(formula, ForAll):
        return "A " + _render(formula.path, _PRECEDENCE[ForAll])
    if isinstance(formula, Next):
        return "X " + _render(formula.operand, _PRECEDENCE[Next])
    if isinstance(formula, Finally):
        return "F " + _render(formula.operand, _PRECEDENCE[Finally])
    if isinstance(formula, Globally):
        return "G " + _render(formula.operand, _PRECEDENCE[Globally])
    if isinstance(formula, IndexExists):
        return "exists %s . %s" % (formula.variable, _render(formula.body, 0))
    if isinstance(formula, IndexForall):
        return "forall %s . %s" % (formula.variable, _render(formula.body, 0))
    raise TypeError("unknown formula node: %r" % (formula,))
