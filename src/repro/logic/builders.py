"""Convenience constructors for building formulas programmatically.

These helpers mirror the notation used in the paper: ``AG``, ``AF``, ``EF``,
``EG``, the quantified ``∧_i`` / ``∨_i`` forms, and the n-ary boolean
connectives.  They build the same AST nodes as :mod:`repro.logic.ast` but read
much closer to the formulas that appear in Section 5, e.g.::

    prop4 = index_forall("i", AG(implies(iatom("d", "i"), AF(iatom("c", "i")))))

which is the paper's ``∧_i AG(d_i ⇒ AF c_i)``.
"""

from __future__ import annotations

from typing import Iterable

from repro.logic.ast import (
    And,
    Atom,
    ExactlyOne,
    Exists,
    FalseLiteral,
    Finally,
    ForAll,
    Formula,
    Globally,
    Iff,
    Implies,
    Index,
    IndexExists,
    IndexForall,
    IndexedAtom,
    Next,
    Not,
    Or,
    Release,
    TrueLiteral,
    Until,
    WeakUntil,
)

__all__ = [
    "true",
    "false",
    "atom",
    "iatom",
    "exactly_one",
    "lnot",
    "land",
    "lor",
    "implies",
    "iff",
    "E",
    "A",
    "X",
    "F",
    "G",
    "U",
    "R",
    "W",
    "EX",
    "EF",
    "EG",
    "EU",
    "AX",
    "AF",
    "AG",
    "AU",
    "index_exists",
    "index_forall",
]


def true() -> TrueLiteral:
    """The constant ``true``."""
    return TrueLiteral()


def false() -> FalseLiteral:
    """The constant ``false``."""
    return FalseLiteral()


def atom(name: str) -> Atom:
    """A non-indexed atomic proposition."""
    return Atom(name)


def iatom(name: str, index: Index) -> IndexedAtom:
    """An indexed atomic proposition ``name_index``."""
    return IndexedAtom(name, index)


def exactly_one(name: str) -> ExactlyOne:
    """The ``Θ_i name_i`` proposition: exactly one index value satisfies ``name``."""
    return ExactlyOne(name)


def lnot(operand: Formula) -> Not:
    """Negation."""
    return Not(operand)


def land(*operands: Formula) -> Formula:
    """N-ary conjunction (right-nested); with no operands returns ``true``."""
    return _fold(And, operands, TrueLiteral())


def lor(*operands: Formula) -> Formula:
    """N-ary disjunction (right-nested); with no operands returns ``false``."""
    return _fold(Or, operands, FalseLiteral())


def _fold(node_type, operands: Iterable[Formula], empty: Formula) -> Formula:
    operands = list(operands)
    if not operands:
        return empty
    result = operands[-1]
    for operand in reversed(operands[:-1]):
        result = node_type(operand, result)
    return result


def implies(left: Formula, right: Formula) -> Implies:
    """Implication ``left ⇒ right``."""
    return Implies(left, right)


def iff(left: Formula, right: Formula) -> Iff:
    """Bi-implication ``left ⇔ right``."""
    return Iff(left, right)


def E(path: Formula) -> Exists:
    """Existential path quantifier."""
    return Exists(path)


def A(path: Formula) -> ForAll:
    """Universal path quantifier."""
    return ForAll(path)


def X(operand: Formula) -> Next:
    """Next-time (excluded from the paper's logic; see :class:`repro.logic.ast.Next`)."""
    return Next(operand)


def F(operand: Formula) -> Finally:
    """Eventually."""
    return Finally(operand)


def G(operand: Formula) -> Globally:
    """Always."""
    return Globally(operand)


def U(left: Formula, right: Formula) -> Until:
    """Strong until."""
    return Until(left, right)


def R(left: Formula, right: Formula) -> Release:
    """Release."""
    return Release(left, right)


def W(left: Formula, right: Formula) -> WeakUntil:
    """Weak until."""
    return WeakUntil(left, right)


def EX(operand: Formula) -> Exists:
    """``EX f``: some successor satisfies ``f``."""
    return Exists(Next(operand))


def EF(operand: Formula) -> Exists:
    """``EF f``: ``f`` is reachable along some path."""
    return Exists(Finally(operand))


def EG(operand: Formula) -> Exists:
    """``EG f``: some path satisfies ``f`` globally."""
    return Exists(Globally(operand))


def EU(left: Formula, right: Formula) -> Exists:
    """``E[left U right]``."""
    return Exists(Until(left, right))


def AX(operand: Formula) -> ForAll:
    """``AX f``: every successor satisfies ``f``."""
    return ForAll(Next(operand))


def AF(operand: Formula) -> ForAll:
    """``AF f``: ``f`` eventually holds along every path."""
    return ForAll(Finally(operand))


def AG(operand: Formula) -> ForAll:
    """``AG f``: ``f`` holds globally along every path."""
    return ForAll(Globally(operand))


def AU(left: Formula, right: Formula) -> ForAll:
    """``A[left U right]``."""
    return ForAll(Until(left, right))


def index_exists(variable: str, body: Formula) -> IndexExists:
    """The quantifier ``∨_variable body``."""
    return IndexExists(variable, body)


def index_forall(variable: str, body: Formula) -> IndexForall:
    """The quantifier ``∧_variable body``."""
    return IndexForall(variable, body)
