"""Structural transformations on formulas.

The important transformations are:

* :func:`expand` — rewrite derived operators into the core connectives
  (``¬``, ``∧``, ``∨``, ``E``, ``U``, ``X``, ``∨_i``).  The model checkers work
  on expanded formulas so that they only need to handle the core.
* :func:`negation_normal_form` — push negations down to the atoms (used by the
  LTL tableau construction and useful for readable counterexamples).
* :func:`substitute_index` — instantiate an index variable with a concrete
  process number, the operation at the heart of evaluating ``∨_i f(i)`` over a
  finite index set.
* :func:`instantiate_quantifiers` — eliminate index quantifiers over a given
  finite index set, producing a plain CTL* formula.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Set

from repro.errors import FormulaError
from repro.logic.ast import (
    And,
    Atom,
    ExactlyOne,
    Exists,
    FalseLiteral,
    Finally,
    ForAll,
    Formula,
    Globally,
    Iff,
    Implies,
    Index,
    IndexExists,
    IndexForall,
    IndexedAtom,
    Next,
    Not,
    Or,
    Release,
    TrueLiteral,
    Until,
    WeakUntil,
    walk,
)

__all__ = [
    "expand",
    "negation_normal_form",
    "substitute_index",
    "free_index_variables",
    "bound_index_variables",
    "atoms",
    "indexed_atom_names",
    "instantiate_quantifiers",
    "map_children",
]


def map_children(formula: Formula, mapper) -> Formula:
    """Rebuild ``formula`` with each child replaced by ``mapper(child)``.

    Leaf nodes are returned unchanged.  The helper keeps the individual
    transformations below free of per-node-type boilerplate.
    """
    if isinstance(formula, (TrueLiteral, FalseLiteral, Atom, IndexedAtom, ExactlyOne)):
        return formula
    if isinstance(formula, Not):
        return Not(mapper(formula.operand))
    if isinstance(formula, And):
        return And(mapper(formula.left), mapper(formula.right))
    if isinstance(formula, Or):
        return Or(mapper(formula.left), mapper(formula.right))
    if isinstance(formula, Implies):
        return Implies(mapper(formula.left), mapper(formula.right))
    if isinstance(formula, Iff):
        return Iff(mapper(formula.left), mapper(formula.right))
    if isinstance(formula, Exists):
        return Exists(mapper(formula.path))
    if isinstance(formula, ForAll):
        return ForAll(mapper(formula.path))
    if isinstance(formula, Next):
        return Next(mapper(formula.operand))
    if isinstance(formula, Finally):
        return Finally(mapper(formula.operand))
    if isinstance(formula, Globally):
        return Globally(mapper(formula.operand))
    if isinstance(formula, Until):
        return Until(mapper(formula.left), mapper(formula.right))
    if isinstance(formula, Release):
        return Release(mapper(formula.left), mapper(formula.right))
    if isinstance(formula, WeakUntil):
        return WeakUntil(mapper(formula.left), mapper(formula.right))
    if isinstance(formula, IndexExists):
        return IndexExists(formula.variable, mapper(formula.body))
    if isinstance(formula, IndexForall):
        return IndexForall(formula.variable, mapper(formula.body))
    raise TypeError("unknown formula node: %r" % (formula,))


# ---------------------------------------------------------------------------
# Derived-operator expansion
# ---------------------------------------------------------------------------


def expand(formula: Formula) -> Formula:
    """Rewrite derived operators into the core connectives.

    The core consists of ``true``, ``false``, atoms, ``¬``, ``∧``, ``∨``,
    ``E``, ``X``, ``U`` and ``∨_i``.  The rewrites are the standard ones used
    in the paper:

    * ``f ⇒ g``      becomes ``¬f ∨ g``
    * ``f ⇔ g``      becomes ``(¬f ∨ g) ∧ (¬g ∨ f)``
    * ``A(g)``       becomes ``¬E(¬g)``
    * ``F g``        becomes ``true U g``
    * ``G g``        becomes ``¬(true U ¬g)``
    * ``f R g``      becomes ``¬(¬f U ¬g)``
    * ``f W g``      becomes ``(f U g) ∨ ¬(true U ¬f)``
    * ``∧_i f(i)``   becomes ``¬∨_i ¬f(i)``
    """
    expanded = map_children(formula, expand)
    if isinstance(expanded, Implies):
        return Or(Not(expanded.left), expanded.right)
    if isinstance(expanded, Iff):
        left, right = expanded.left, expanded.right
        return And(Or(Not(left), right), Or(Not(right), left))
    if isinstance(expanded, ForAll):
        return Not(Exists(Not(expanded.path)))
    if isinstance(expanded, Finally):
        return Until(TrueLiteral(), expanded.operand)
    if isinstance(expanded, Globally):
        return Not(Until(TrueLiteral(), Not(expanded.operand)))
    if isinstance(expanded, Release):
        return Not(Until(Not(expanded.left), Not(expanded.right)))
    if isinstance(expanded, WeakUntil):
        left, right = expanded.left, expanded.right
        return Or(Until(left, right), Not(Until(TrueLiteral(), Not(left))))
    if isinstance(expanded, IndexForall):
        return Not(IndexExists(expanded.variable, Not(expanded.body)))
    return expanded


# ---------------------------------------------------------------------------
# Negation normal form
# ---------------------------------------------------------------------------


def negation_normal_form(formula: Formula) -> Formula:
    """Push negations inward so they only apply to atomic formulas.

    The input may contain derived operators; the output uses
    ``∧ / ∨ / ¬ (on atoms) / E / A / X / U / R / ∨_i / ∧_i``.
    """
    return _nnf(formula, negate=False)


def _nnf(formula: Formula, negate: bool) -> Formula:
    if isinstance(formula, TrueLiteral):
        return FalseLiteral() if negate else formula
    if isinstance(formula, FalseLiteral):
        return TrueLiteral() if negate else formula
    if isinstance(formula, (Atom, IndexedAtom, ExactlyOne)):
        return Not(formula) if negate else formula
    if isinstance(formula, Not):
        return _nnf(formula.operand, not negate)
    if isinstance(formula, And):
        node = Or if negate else And
        return node(_nnf(formula.left, negate), _nnf(formula.right, negate))
    if isinstance(formula, Or):
        node = And if negate else Or
        return node(_nnf(formula.left, negate), _nnf(formula.right, negate))
    if isinstance(formula, Implies):
        return _nnf(Or(Not(formula.left), formula.right), negate)
    if isinstance(formula, Iff):
        rewritten = And(Implies(formula.left, formula.right), Implies(formula.right, formula.left))
        return _nnf(rewritten, negate)
    if isinstance(formula, Exists):
        node = ForAll if negate else Exists
        return node(_nnf(formula.path, negate))
    if isinstance(formula, ForAll):
        node = Exists if negate else ForAll
        return node(_nnf(formula.path, negate))
    if isinstance(formula, Next):
        return Next(_nnf(formula.operand, negate))
    if isinstance(formula, Finally):
        if negate:
            return Globally(_nnf(formula.operand, True))
        return Finally(_nnf(formula.operand, False))
    if isinstance(formula, Globally):
        if negate:
            return Finally(_nnf(formula.operand, True))
        return Globally(_nnf(formula.operand, False))
    if isinstance(formula, Until):
        if negate:
            return Release(_nnf(formula.left, True), _nnf(formula.right, True))
        return Until(_nnf(formula.left, False), _nnf(formula.right, False))
    if isinstance(formula, Release):
        if negate:
            return Until(_nnf(formula.left, True), _nnf(formula.right, True))
        return Release(_nnf(formula.left, False), _nnf(formula.right, False))
    if isinstance(formula, WeakUntil):
        rewritten = Or(Until(formula.left, formula.right), Globally(formula.left))
        return _nnf(rewritten, negate)
    if isinstance(formula, IndexExists):
        node = IndexForall if negate else IndexExists
        return node(formula.variable, _nnf(formula.body, negate))
    if isinstance(formula, IndexForall):
        node = IndexExists if negate else IndexForall
        return node(formula.variable, _nnf(formula.body, negate))
    raise TypeError("unknown formula node: %r" % (formula,))


# ---------------------------------------------------------------------------
# Index variables
# ---------------------------------------------------------------------------


def substitute_index(formula: Formula, variable: str, value: Index) -> Formula:
    """Replace every free occurrence of index ``variable`` with ``value``.

    Quantifiers that re-bind ``variable`` shadow the substitution, exactly as
    in first-order logic.
    """
    if isinstance(formula, IndexedAtom):
        if formula.index == variable:
            return IndexedAtom(formula.name, value)
        return formula
    if isinstance(formula, (IndexExists, IndexForall)) and formula.variable == variable:
        return formula
    return map_children(formula, lambda child: substitute_index(child, variable, value))


def free_index_variables(formula: Formula) -> Set[str]:
    """Return the index variables that occur free in ``formula``."""
    if isinstance(formula, IndexedAtom):
        return {formula.index} if isinstance(formula.index, str) else set()
    if isinstance(formula, (IndexExists, IndexForall)):
        return free_index_variables(formula.body) - {formula.variable}
    result: Set[str] = set()
    for child in formula.children():
        result |= free_index_variables(child)
    return result


def bound_index_variables(formula: Formula) -> Set[str]:
    """Return every index variable bound by a quantifier somewhere in ``formula``."""
    return {
        node.variable
        for node in walk(formula)
        if isinstance(node, (IndexExists, IndexForall))
    }


def atoms(formula: Formula) -> Set[str]:
    """Return the names of the non-indexed atomic propositions used in ``formula``."""
    return {node.name for node in walk(formula) if isinstance(node, Atom)}


def indexed_atom_names(formula: Formula) -> Set[str]:
    """Return the names of the indexed atomic propositions used in ``formula``."""
    names = {node.name for node in walk(formula) if isinstance(node, IndexedAtom)}
    names |= {node.name for node in walk(formula) if isinstance(node, ExactlyOne)}
    return names


# ---------------------------------------------------------------------------
# Quantifier instantiation
# ---------------------------------------------------------------------------


def instantiate_quantifiers(formula: Formula, index_values: Iterable[int]) -> Formula:
    """Eliminate index quantifiers by instantiating them over ``index_values``.

    ``∨_i f(i)`` becomes the disjunction of ``f(c)`` over every ``c`` in the
    index set and ``∧_i f(i)`` the corresponding conjunction.  The result is a
    plain CTL* formula whose indexed atoms all carry concrete index values, so
    it can be handed to the (non-indexed) model checkers.

    Raises
    ------
    FormulaError
        If the index set is empty (quantification over an empty set has no
        sensible interpretation in the paper's semantics).
    """
    values: Sequence[int] = sorted(set(index_values))
    if not values:
        raise FormulaError("cannot instantiate index quantifiers over an empty index set")
    return _instantiate(formula, values)


def _instantiate(formula: Formula, values: Sequence[int]) -> Formula:
    if isinstance(formula, IndexExists):
        instances = [
            _instantiate(substitute_index(formula.body, formula.variable, value), values)
            for value in values
        ]
        return _fold_binary(Or, instances, FalseLiteral())
    if isinstance(formula, IndexForall):
        instances = [
            _instantiate(substitute_index(formula.body, formula.variable, value), values)
            for value in values
        ]
        return _fold_binary(And, instances, TrueLiteral())
    return map_children(formula, lambda child: _instantiate(child, values))


def _fold_binary(node_type, operands: Sequence[Formula], empty: Formula) -> Formula:
    if not operands:
        return empty
    result = operands[-1]
    for operand in reversed(operands[:-1]):
        result = node_type(operand, result)
    return result
