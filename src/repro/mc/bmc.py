"""SAT-based bounded model checking and k-induction (``engine="bmc"``).

Where the symbolic engine computes the *full* fixpoint — so even a bug three
steps from the initial state pays for the whole reachable-set construction —
bounded model checking asks a SAT solver one question per depth: *is there a
path of exactly ``k`` transitions from the initial state ending in a bad
state?*  The cost is proportional to the bound, which makes BMC the classic
complement to BDD symbolic checking for **falsification**; ``k``-induction
recovers unbounded **proofs** for inductive invariants.

Encoding
--------
The checker unrolls the transition relation of a
:class:`~repro.kripke.symbolic.SymbolicKripkeStructure` — the same clustered
BDD parts, over the same stable variable ids, that ``engine="bdd"`` uses —
into CNF.  Time frame ``t`` owns one solver variable per state bit; a BDD
over current/next variables is lowered by :func:`repro.sat.cnf.tseitin_bdd`
with current bit ``k`` mapped to frame ``t`` and next bit ``k`` to frame
``t + 1`` (one definition variable and four clauses per BDD node, complement
edges free).  Clusters stay factored: each conjunct tuple becomes a
conjunction of Tseitin outputs, the clusters' disjunction is asserted per
step.  Everything is **incremental**: one
:class:`~repro.sat.solver.Solver` per unrolling, frames appended as the
bound grows, per-depth questions asked through assumptions, and every
learned clause carried from bound to bound.

Queries
-------
* ``AG p`` (*invariant*): per depth ``k``, assume ``¬p`` at frame ``k`` —
  SAT gives a genuine minimal-depth counterexample path (decoded through
  :meth:`~repro.kripke.symbolic.SymbolicKripkeStructure.decode_state`);
  interleaved with the k-induction step — path of ``n`` transitions, ``p``
  on the first ``n`` frames, ``¬p`` on the last, all frames pairwise
  distinct (the *simple-path* strengthening that makes k-induction complete
  on finite structures) — whose UNSAT answer proves the invariant for
  **every** depth, with no bound ceiling.
* ``EF p``: the dual reachability question (witness path / unreachability
  proof).
* ``AF p`` / ``EG q`` (*liveness*): lasso search — frames ``0 … k`` with the
  last frame forced equal to an earlier one, the constraint (``¬p`` resp.
  ``q``) assumed on every cycle and stem frame; a model decodes to a
  :class:`~repro.kripke.paths.Lasso` whose infinite unrolling violates
  ``AF p`` (resp. witnesses ``EG q``).  Only the falsification direction is
  available: exhausting the bound raises
  :class:`~repro.errors.InconclusiveError` rather than guessing.

Boolean combinations of decidable sub-formulas and index quantifiers over
structures that know their index set are handled by recursion and
instantiation, so the Section 5 invariant family runs unchanged.  Fairness
constraints and nested/ branching-time operators outside the fragment raise
:class:`~repro.errors.FragmentError` — the three fixpoint engines
(:data:`repro.mc.bitset.CTL_ENGINES`) remain the decision procedures for
full CTL.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.bdd import BDDFunction
from repro.errors import (
    FragmentError,
    InconclusiveError,
    ModelCheckingError,
    ReproError,
)
from repro.kripke.paths import Lasso
from repro.kripke.structure import KripkeStructure, State
from repro.kripke.symbolic import SymbolicKripkeStructure, symbolic_structure
from repro.kripke.validation import assert_total
from repro.logic.ast import (
    And,
    Atom,
    ExactlyOne,
    Exists,
    FalseLiteral,
    Finally,
    ForAll,
    Formula,
    Globally,
    Iff,
    Implies,
    IndexExists,
    IndexForall,
    IndexedAtom,
    Not,
    Or,
    TrueLiteral,
    walk,
)
from repro.logic.transform import instantiate_quantifiers
from repro.mc.fairness import FairnessConstraint, normalize_fairness
from repro.obs import metrics as _metrics
from repro.obs.progress import heartbeat as _heartbeat
from repro.obs.trace import span as _obs_span
from repro.runtime.limits import checkpoint as _checkpoint
from repro.sat.cnf import tseitin_bdd
from repro.sat.solver import Solver, SolverStats

__all__ = ["BoundedModelChecker", "DEFAULT_BOUND"]

#: Default falsification/induction depth ceiling of :class:`BoundedModelChecker`.
DEFAULT_BOUND = 25

_ATOMIC = (TrueLiteral, FalseLiteral, Atom, IndexedAtom, ExactlyOne)

_PROPOSITIONAL = _ATOMIC + (Not, And, Or, Implies, Iff)


class _FrameLiterals(Mapping):
    """BDD variable id → solver literal for one time step.

    Current-state variable ``2k`` reads frame ``t``'s bit ``k``; next-state
    variable ``2k + 1`` reads frame ``t + 1``'s.
    """

    __slots__ = ("_unroller", "_step")

    def __init__(self, unroller: "_Unroller", step: int) -> None:
        self._unroller = unroller
        self._step = step

    def __getitem__(self, var: int) -> int:
        bit, offset = var >> 1, var & 1
        frame = self._unroller.frame(self._step + offset)
        if bit >= len(frame):
            raise KeyError(var)
        return frame[bit]

    def __iter__(self):  # pragma: no cover - Mapping protocol completeness
        raise NotImplementedError("frame mappings are index-only")

    def __len__(self) -> int:  # pragma: no cover - Mapping protocol completeness
        return 2 * len(self._unroller.frame(self._step))


class _Unroller:
    """An incremental CNF unrolling of one symbolic structure.

    Owns one :class:`~repro.sat.solver.Solver`; time frames (one solver
    variable per state bit) and transition steps are appended monotonically,
    so clauses and learned facts persist across deepening bounds.  Every BDD
    edge lowered into the solver is pinned through a refcounted
    :class:`~repro.bdd.BDDFunction` handle: the per-frame Tseitin caches key
    on node indices, which must survive the manager's mark-and-sweep GC.
    (Dynamic reordering rewrites nodes in place and would invalidate the
    caches — the BMC engine never triggers it and assumes the shared manager
    does not reorder between queries.)
    """

    def __init__(self, symbolic: SymbolicKripkeStructure) -> None:
        self.symbolic = symbolic
        self.solver = Solver()
        self._frames: List[List[int]] = []
        self._caches: List[Dict[int, int]] = []
        self._steps = 0
        self._equalities: Dict[Tuple[int, int], int] = {}
        self._loop_selectors: Dict[int, int] = {}
        self._pinned: Dict[int, BDDFunction] = {}

    @property
    def num_steps(self) -> int:
        """The number of transition steps asserted so far."""
        return self._steps

    def frame(self, step: int) -> List[int]:
        """The solver variables of time frame ``step`` (allocated on demand)."""
        while len(self._frames) <= step:
            self._frames.append(
                [self.solver.new_var() for _ in range(self.symbolic.num_bits)]
            )
            self._caches.append({})
        return self._frames[step]

    def literal(self, edge: int, step: int) -> int:
        """Tseitin-encode a BDD ``edge`` at time ``step``; returns a solver literal.

        The edge may mention current *and* next variables (next bits land in
        frame ``step + 1``).  Encodings are cached per step, so re-asserting
        the same relation parts or properties at one step is free.
        """
        self.frame(step)
        if edge not in self._pinned:
            self._pinned[edge] = self.symbolic.function(edge)
        return tseitin_bdd(
            self.symbolic.manager,
            edge,
            _FrameLiterals(self, step),
            self.solver,
            self._caches[step],
        )

    def assert_initial(self) -> None:
        """Constrain frame 0 to the structure's initial state."""
        self.solver.add_clause((self.literal(self.symbolic.initial, 0),))

    def assert_property(self, edge: int, step: int) -> None:
        """Permanently assert a current-variables BDD at ``step`` (k-induction)."""
        self.solver.add_clause((self.literal(edge, step),))

    def extend(self, steps: int) -> None:
        """Assert transition steps until ``steps`` of them constrain the unrolling."""
        if self._steps >= steps:
            return
        start = self._steps
        with _obs_span("bmc.unroll", from_step=start, to_step=steps):
            while self._steps < steps:
                step = self._steps
                cluster_literals = []
                for conjuncts in self.symbolic.transition_parts:
                    conjunct_literals = [self.literal(edge, step) for edge in conjuncts]
                    cluster_literals.append(self.solver.gate_and(conjunct_literals))
                self.solver.add_clause((self.solver.gate_or(cluster_literals),))
                self._steps += 1
            _metrics.counter("bmc.unrolled_steps", engine="bmc").inc(steps - start)

    # -- frame comparisons ---------------------------------------------------

    def equality_literal(self, left: int, right: int) -> int:
        """A literal equivalent to "frames ``left`` and ``right`` agree on every bit"."""
        key = (min(left, right), max(left, right))
        literal = self._equalities.get(key)
        if literal is None:
            solver = self.solver
            bits = [
                solver.gate_iff(a, b)
                for a, b in zip(self.frame(key[0]), self.frame(key[1]))
            ]
            literal = solver.gate_and(bits)
            self._equalities[key] = literal
        return literal

    def assert_distinct(self, left: int, right: int) -> None:
        """Permanently require frames ``left`` and ``right`` to differ (simple path)."""
        solver = self.solver
        solver.add_clause(
            [solver.gate_xor(a, b) for a, b in zip(self.frame(left), self.frame(right))]
        )

    def loop_selector(self, last: int) -> int:
        """A literal equivalent to "frame ``last`` equals some earlier frame"."""
        literal = self._loop_selectors.get(last)
        if literal is None:
            literal = self.solver.gate_or(
                [self.equality_literal(j, last) for j in range(last)]
            )
            self._loop_selectors[last] = literal
        return literal

    # -- model decoding ------------------------------------------------------

    def decode_frame(self, step: int) -> State:
        """Decode the last model's frame ``step`` into a source-structure state."""
        model = self.solver.model()
        assignment = {
            2 * bit: model[variable] for bit, variable in enumerate(self._frames[step])
        }
        return self.symbolic.decode_state(assignment)

    def decode_path(self, last: int) -> List[State]:
        """Decode frames ``0 … last`` of the last model into a state path."""
        return [self.decode_frame(step) for step in range(last + 1)]


class BoundedModelChecker:
    """Bounded model checker + k-induction prover over a SAT solver.

    Accepts a plain :class:`KripkeStructure` (binary-encoded on the spot,
    sharing the memoised encoding with ``engine="bdd"``) or an
    already-encoded :class:`SymbolicKripkeStructure` — direct family
    encodings built with ``domain="free"`` skip the symbolic reachability
    fixpoint entirely, which is the whole point of the engine.

    ``bound`` caps both the falsification depth and the induction length;
    :meth:`check` raises :class:`~repro.errors.InconclusiveError` when the
    cap is hit undecided.  Verdicts are memoised per formula, and
    :attr:`last_detail` reports how the most recent one was decided
    (``"counterexample at depth 3"``, ``"proved by 1-induction"``, …).

    With ``drat=True`` every successful k-induction step is certified by
    the independent :mod:`repro.sat.drat` forward RUP/DRAT checker (the
    inductor solvers log proofs; :attr:`last_proof_stats` reports the
    checker's counters).
    """

    #: BMC decides single verdicts, not satisfaction sets — the indexed
    #: front-end dispatches ``check`` directly when it sees this flag.
    supports_satisfaction_sets = False

    def __init__(
        self,
        structure: Union[KripkeStructure, SymbolicKripkeStructure],
        bound: int = DEFAULT_BOUND,
        validate_structure: bool = True,
        fairness: Optional[FairnessConstraint] = None,
        drat: bool = False,
    ) -> None:
        if normalize_fairness(fairness) is not None:
            raise FragmentError(
                "bounded model checking does not implement fairness-constrained "
                "semantics; use one of the fixpoint engines"
            )
        if bound < 0:
            raise ModelCheckingError("the BMC bound must be non-negative")
        self._symbolic = symbolic_structure(structure)
        if validate_structure and self._symbolic.source is not None:
            assert_total(self._symbolic.source)
        self._bound = bound
        self._stats = SolverStats()
        self._falsifier: Optional[_Unroller] = None
        self._inductors: Dict[int, _Unroller] = {}
        self._inductor_handles: List[BDDFunction] = []
        self._node_cache: Dict[Formula, BDDFunction] = {}
        self._verdicts: Dict[Formula, bool] = {}
        self._drat = drat
        self.last_detail: str = ""
        self.last_counterexample: Optional[List[State]] = None
        self.last_lasso: Optional[Lasso] = None
        #: RUP/DRAT checker counters of the last certified k-induction proof
        #: (populated only when ``drat=True`` and an induction step succeeded).
        self.last_proof_stats: Optional[Dict[str, int]] = None

    # -- accessors -----------------------------------------------------------

    @property
    def symbolic(self) -> SymbolicKripkeStructure:
        """The BDD encoding whose clustered relation parts are unrolled."""
        return self._symbolic

    @property
    def structure(self) -> Optional[KripkeStructure]:
        """The explicit source structure, when this checker was built from one."""
        return self._symbolic.source

    @property
    def bound(self) -> int:
        """The falsification/induction depth ceiling."""
        return self._bound

    @property
    def fairness(self) -> None:
        """Always ``None``: BMC rejects fairness constraints at construction."""
        return None

    def stats(self) -> Dict[str, int]:
        """Aggregated SAT statistics across every unrolling of this checker."""
        total = SolverStats()
        total.accumulate(self._stats)
        for unroller in self._all_unrollers():
            total.accumulate(unroller.solver.stats)
        payload = total.as_dict()
        payload["solvers"] = len(self._all_unrollers())
        return payload

    def _all_unrollers(self) -> List[_Unroller]:
        unrollers = list(self._inductors.values())
        if self._falsifier is not None:
            unrollers.insert(0, self._falsifier)
        return unrollers

    # -- public API ----------------------------------------------------------

    def check(self, formula: Formula, state: Optional[State] = None) -> bool:
        """Decide ``M, s0 ⊨ formula`` for the BMC fragment.

        Raises :class:`~repro.errors.FragmentError` outside the fragment and
        :class:`~repro.errors.InconclusiveError` when the bound is exhausted
        without a verdict.  Only the initial state is supported as the start
        state (that is where the unrolling is rooted).
        """
        if state is not None and not self._is_initial(state):
            raise ModelCheckingError(
                "the bounded model checker is rooted at the initial state; "
                "cannot check from %r" % (state,)
            )
        if formula in self._verdicts:
            self.last_detail = "memoised verdict"
            return self._verdicts[formula]
        with _obs_span("mc.check", engine="bmc"):
            verdict = self._decide(self._instantiate(formula))
        _metrics.counter("mc.checks", engine="bmc").inc()
        self._verdicts[formula] = verdict
        self.publish_metrics()
        return verdict

    def publish_metrics(self) -> None:
        """Snapshot the aggregated solver statistics into the registry."""
        for field, value in self.stats().items():
            if isinstance(value, int):
                _metrics.gauge("sat." + field, engine="bmc").set(value)

    def invariant_counterexample(
        self, invariant: Formula, bound: Optional[int] = None
    ) -> Optional[List[State]]:
        """A minimal-depth path from the initial state to a state violating ``invariant``.

        Pure falsification: no induction runs, and ``None`` only means "no
        violation within the bound".  ``invariant`` is the *body* ``p`` of
        ``AG p`` and must be propositional.
        """
        bad = self._bad_states_node(invariant)
        return self._falsify(bad, self._bound if bound is None else bound)

    def prove_invariant(
        self, invariant: Formula, bound: Optional[int] = None
    ) -> Optional[int]:
        """Prove ``AG invariant`` by k-induction; returns the successful ``k``.

        Sound only together with a base check (:meth:`check` interleaves
        both); ``None`` means no induction length up to the bound sufficed.
        """
        node = self._propositional_node(invariant)
        limit = self._bound if bound is None else bound
        for length in range(1, limit + 1):
            if self._induction_step(node.node, length):
                return length
        return None

    def af_counterexample(
        self, target: Formula, bound: Optional[int] = None
    ) -> Optional[Lasso]:
        """A lasso from the initial state along which ``target`` never holds.

        The finite certificate that ``AF target`` is violated.
        """
        avoid = self._bad_states_node(target)  # states where target fails
        return self._find_lasso(avoid, self._bound if bound is None else bound)

    def eg_witness(self, body: Formula, bound: Optional[int] = None) -> Optional[Lasso]:
        """A lasso from the initial state on which ``body`` holds forever (``EG body``)."""
        node = self._propositional_node(body)
        hold = self._symbolic.manager.apply_and(node.node, self._symbolic.domain)
        return self._find_lasso(hold, self._bound if bound is None else bound)

    # -- formula dispatch ------------------------------------------------------

    def _instantiate(self, formula: Formula) -> Formula:
        if any(isinstance(node, (IndexExists, IndexForall)) for node in walk(formula)):
            values = self._symbolic.index_values
            if values is None:
                raise FragmentError(
                    "formula %s has index quantifiers but the structure has no "
                    "index set" % (formula,)
                )
            return instantiate_quantifiers(formula, values)
        return formula

    def _decide(self, formula: Formula) -> bool:
        if isinstance(formula, Not):
            return not self._decide(formula.operand)
        if isinstance(formula, And):
            return self._decide_junction((formula.left, formula.right), is_and=True)
        if isinstance(formula, Or):
            return self._decide_junction((formula.left, formula.right), is_and=False)
        if isinstance(formula, Implies):
            return self._decide_junction(
                (Not(formula.left), formula.right), is_and=False
            )
        if isinstance(formula, ForAll):
            path = formula.path
            if isinstance(path, Globally):
                return self._decide_invariant(path.operand)
            if isinstance(path, Finally):
                lasso = self.af_counterexample(path.operand)
                if lasso is not None:
                    self.last_lasso = lasso
                    self.last_detail = "lasso counterexample (|stem|=%d, |cycle|=%d)" % (
                        len(lasso.stem),
                        len(lasso.cycle),
                    )
                    return False
                raise InconclusiveError(
                    "no lasso violating AF within bound %d; BMC cannot prove "
                    "liveness — use a fixpoint engine" % self._bound,
                    depth_reached=self._bound,
                    conflicts_spent=self._conflicts_spent(),
                )
        if isinstance(formula, Exists):
            path = formula.path
            if isinstance(path, Finally):
                return not self._decide_invariant(Not(path.operand))
            if isinstance(path, Globally):
                lasso = self.eg_witness(path.operand)
                if lasso is not None:
                    self.last_lasso = lasso
                    self.last_detail = "lasso witness (|stem|=%d, |cycle|=%d)" % (
                        len(lasso.stem),
                        len(lasso.cycle),
                    )
                    return True
                raise InconclusiveError(
                    "no EG lasso witness within bound %d; BMC cannot refute "
                    "EG — use a fixpoint engine" % self._bound,
                    depth_reached=self._bound,
                    conflicts_spent=self._conflicts_spent(),
                )
        if self._is_propositional(formula):
            node = self._propositional_node(formula)
            holds = self._symbolic.manager.apply_and(node.node, self._symbolic.initial)
            self.last_detail = "propositional evaluation at the initial state"
            return holds != 0
        raise FragmentError(
            "the BMC engine decides the invariant fragment — boolean/index-"
            "quantified combinations of AG p, EF p, AF p, EG p with "
            "propositional p — got %s" % (formula,)
        )

    def _decide_junction(self, operands, is_and: bool) -> bool:
        inconclusive: Optional[InconclusiveError] = None
        for operand in operands:
            try:
                value = self._decide(operand)
            except InconclusiveError as error:
                inconclusive = error
                continue
            if value is not is_and:
                return value  # short-circuit: one False kills ∧, one True saves ∨
        if inconclusive is not None:
            raise inconclusive
        return is_and

    def _decide_invariant(self, body: Formula) -> bool:
        """Interleaved BMC falsification and k-induction for ``AG body``."""
        node = self._propositional_node(body)
        bad = self._symbolic.complement(node.node)
        bad_fn = self._symbolic.function(bad)
        falsifier = self._falsifier_unroller()
        for depth in range(self._bound + 1):
            with _obs_span("bmc.depth", k=depth) as sp:
                _checkpoint(
                    "bmc.depth",
                    sat_conflicts=falsifier.solver.stats.conflicts,
                )
                _heartbeat(
                    "bmc",
                    k=depth,
                    conflicts=falsifier.solver.stats.conflicts,
                )
                falsifier.extend(depth)
                assumption = falsifier.literal(bad_fn.node, depth)
                if falsifier.solver.solve([assumption]):
                    self.last_counterexample = falsifier.decode_path(depth)
                    self.last_detail = "counterexample at depth %d" % depth
                    sp.set(outcome="counterexample")
                    return False
                if self._induction_step(node.node, depth + 1):
                    self.last_detail = "proved by %d-induction" % (depth + 1)
                    sp.set(outcome="induction")
                    return True
                sp.set(outcome="deepen")
        raise InconclusiveError(
            "invariant neither violated within depth %d nor provable by "
            "%d-induction; raise the bound" % (self._bound, self._bound + 1),
            depth_reached=self._bound,
            conflicts_spent=self._conflicts_spent(),
        )

    # -- SAT queries -----------------------------------------------------------

    def _falsifier_unroller(self) -> _Unroller:
        if self._falsifier is None:
            self._falsifier = _Unroller(self._symbolic)
            self._falsifier.assert_initial()
        return self._falsifier

    def _conflicts_spent(self) -> int:
        total = 0
        if self._falsifier is not None:
            total += self._falsifier.solver.stats.conflicts
        for unroller in self._inductors.values():
            total += unroller.solver.stats.conflicts
        return total

    def _falsify(self, bad_node: int, bound: int) -> Optional[List[State]]:
        bad_fn = self._symbolic.function(bad_node)
        falsifier = self._falsifier_unroller()
        for depth in range(bound + 1):
            with _obs_span("bmc.depth", k=depth, mode="falsify"):
                _checkpoint(
                    "bmc.depth",
                    sat_conflicts=falsifier.solver.stats.conflicts,
                )
                _heartbeat("bmc", k=depth, mode="falsify")
                falsifier.extend(depth)
                if falsifier.solver.solve([falsifier.literal(bad_fn.node, depth)]):
                    self.last_counterexample = falsifier.decode_path(depth)
                    self.last_detail = "counterexample at depth %d" % depth
                    return self.last_counterexample
        return None

    def _induction_step(self, property_node: int, length: int) -> bool:
        """The k-induction step at ``length`` transitions, with simple paths.

        Frames ``0 … length``, the property asserted on all but the last,
        every frame pairwise distinct; UNSAT of "last frame violates" means
        any violation needs a reachable loop-free run longer than ``length``
        — impossible once the base case covers depth ``length - 1``.
        """
        unroller = self._inductors.get(property_node)
        if unroller is None:
            unroller = _Unroller(self._symbolic)
            if self._drat:
                unroller.solver.start_proof()
            self._inductors[property_node] = unroller
            self._inductor_handles.append(self._symbolic.function(property_node))
        with _obs_span("bmc.induction", length=length):
            unroller.frame(0)
            while unroller.num_steps < length:
                step = unroller.num_steps
                unroller.assert_property(property_node, step)
                unroller.extend(step + 1)
                for earlier in range(step + 1):
                    unroller.assert_distinct(earlier, step + 1)
            bad = self._symbolic.complement(property_node)
            bad_fn = self._symbolic.function(bad)
            assumption = unroller.literal(bad_fn.node, length)
            proved = not unroller.solver.solve([assumption])
            if proved and self._drat:
                # The k-induction proof is exactly this UNSAT verdict;
                # certify the whole incremental transcript behind it.
                from repro.sat.drat import ProofError, check_proof

                try:
                    self.last_proof_stats = check_proof(unroller.solver.proof)
                except ProofError as error:
                    raise ModelCheckingError(
                        "k-induction produced an uncertifiable UNSAT proof: %s"
                        % error
                    ) from error
            return proved

    def _find_lasso(self, constraint_node: int, bound: int) -> Optional[Lasso]:
        constraint_fn = self._symbolic.function(constraint_node)
        falsifier = self._falsifier_unroller()
        assumptions: List[int] = []
        for length in range(1, bound + 1):
            _checkpoint(
                "bmc.lasso",
                sat_conflicts=falsifier.solver.stats.conflicts,
            )
            falsifier.extend(length)
            assumptions.append(falsifier.literal(constraint_fn.node, length - 1))
            selector = falsifier.loop_selector(length)
            if falsifier.solver.solve(assumptions + [selector]):
                states = falsifier.decode_path(length)
                for start in range(length):
                    if states[start] == states[length]:
                        lasso = Lasso(
                            stem=tuple(states[:start]),
                            cycle=tuple(states[start:length]),
                        )
                        self.last_lasso = lasso
                        return lasso
                raise ModelCheckingError(
                    "SAT model closed no loop; the loop selector encoding is "
                    "inconsistent"
                )  # pragma: no cover - guarded by construction
        return None

    # -- propositional lowering --------------------------------------------------

    @staticmethod
    def _is_propositional(formula: Formula) -> bool:
        return all(isinstance(node, _PROPOSITIONAL) for node in walk(formula))

    def _bad_states_node(self, body: Formula) -> int:
        """The domain states violating the propositional formula ``body``."""
        node = self._propositional_node(body)
        return self._symbolic.complement(node.node)

    def _propositional_node(self, formula: Formula) -> BDDFunction:
        cached = self._node_cache.get(formula)
        if cached is not None:
            return cached
        result = self._symbolic.function(self._propositional_edge(formula))
        self._node_cache[formula] = result
        return result

    def _propositional_edge(self, formula: Formula) -> int:
        symbolic = self._symbolic
        manager = symbolic.manager
        if isinstance(formula, _ATOMIC):
            return symbolic.atom_node(formula)
        if isinstance(formula, Not):
            return manager.negate(self._propositional_edge(formula.operand))
        if isinstance(formula, And):
            return manager.apply_and(
                self._propositional_edge(formula.left),
                self._propositional_edge(formula.right),
            )
        if isinstance(formula, Or):
            return manager.apply_or(
                self._propositional_edge(formula.left),
                self._propositional_edge(formula.right),
            )
        if isinstance(formula, Implies):
            return manager.apply_or(
                manager.negate(self._propositional_edge(formula.left)),
                self._propositional_edge(formula.right),
            )
        if isinstance(formula, Iff):
            return manager.apply(
                "iff",
                self._propositional_edge(formula.left),
                self._propositional_edge(formula.right),
            )
        raise FragmentError(
            "BMC properties must be propositional (boolean combinations of "
            "atoms); got %s" % (formula,)
        )

    # -- helpers ---------------------------------------------------------------

    def _is_initial(self, state: State) -> bool:
        source = self._symbolic.source
        if source is not None:
            return state == source.initial_state
        try:
            assignment = self._symbolic.encode_state(state)
        except (ReproError, KeyError, ValueError):
            # No encoder (or one that rejects this state): cannot prove it
            # is the initial state.
            return False
        return self._symbolic.manager.evaluate(self._symbolic.initial, assignment)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<BoundedModelChecker: %d bits, bound %d, %d solver(s)>" % (
            self._symbolic.num_bits,
            self._bound,
            len(self._all_unrollers()),
        )
