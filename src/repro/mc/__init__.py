"""Model checkers: CTL (the :data:`~repro.mc.bitset.ENGINE_NAMES` registry —
the naive/bitset/BDD fixpoint engines with optional fairness-constrained
semantics, plus the two SAT-based engines: bounded model checking with
k-induction and the unbounded IC3/PDR prover), existential LTL, CTL*, and
indexed CTL*.  ``docs/ENGINES.md`` is the when-to-use-which guide;
``docs/ARCHITECTURE.md`` maps how a system definition reaches each engine."""

from repro.mc.bmc import BoundedModelChecker
from repro.mc.ic3 import IC3ModelChecker, InvariantCertificate
from repro.mc.counterexample import (
    counterexample_af,
    counterexample_ag,
    resolve_checker,
    witness_ef,
    witness_eg,
    witness_eu,
)
from repro.mc.fairness import FairnessConstraint, normalize_fairness
from repro.mc.scc import strongly_connected_components
from repro.mc.bitset import (
    CTL_ENGINES,
    ENGINE_NAMES,
    BitsetCTLModelChecker,
    make_ctl_checker,
)
from repro.mc.bitset import check as check_ctl_bitset
from repro.mc.bitset import satisfaction_set as bitset_satisfaction_set
from repro.mc.ctl import CTLModelChecker
from repro.mc.ctl import check as check_ctl
from repro.mc.ctl import satisfaction_set as ctl_satisfaction_set
from repro.mc.ctlstar import CTLStarModelChecker
from repro.mc.ctlstar import check as check_ctlstar
from repro.mc.ctlstar import satisfaction_set as ctlstar_satisfaction_set
from repro.mc.indexed import ICTLStarModelChecker
from repro.mc.indexed import check as check_ictlstar
from repro.mc.indexed import check_batch as check_ictlstar_batch
from repro.mc.indexed import satisfaction_set as ictlstar_satisfaction_set
from repro.mc.ltl import exists_path_satisfying, existential_states
from repro.mc.symbolic import SymbolicCTLModelChecker
from repro.mc.symbolic import check as check_ctl_symbolic
from repro.mc.symbolic import satisfaction_set as symbolic_satisfaction_set
from repro.mc.oracle import (
    crosscheck_ctl_engines,
    find_lasso_witness,
    lasso_satisfies,
    simple_lasso_exists,
)

__all__ = [
    "BitsetCTLModelChecker",
    "BoundedModelChecker",
    "IC3ModelChecker",
    "InvariantCertificate",
    "CTL_ENGINES",
    "ENGINE_NAMES",
    "CTLModelChecker",
    "FairnessConstraint",
    "normalize_fairness",
    "strongly_connected_components",
    "resolve_checker",
    "make_ctl_checker",
    "check_ctl_bitset",
    "bitset_satisfaction_set",
    "CTLStarModelChecker",
    "ICTLStarModelChecker",
    "SymbolicCTLModelChecker",
    "check_ctl_symbolic",
    "symbolic_satisfaction_set",
    "check_ctl",
    "check_ctlstar",
    "check_ictlstar",
    "ctl_satisfaction_set",
    "ctlstar_satisfaction_set",
    "ictlstar_satisfaction_set",
    "existential_states",
    "exists_path_satisfying",
    "witness_ef",
    "witness_eu",
    "witness_eg",
    "counterexample_ag",
    "counterexample_af",
    "lasso_satisfies",
    "find_lasso_witness",
    "simple_lasso_exists",
    "crosscheck_ctl_engines",
    "check_ictlstar_batch",
]
