"""Model checkers: CTL, existential LTL, CTL*, and indexed CTL*."""

from repro.mc.counterexample import (
    counterexample_af,
    counterexample_ag,
    witness_ef,
    witness_eg,
    witness_eu,
)
from repro.mc.ctl import CTLModelChecker
from repro.mc.ctl import check as check_ctl
from repro.mc.ctl import satisfaction_set as ctl_satisfaction_set
from repro.mc.ctlstar import CTLStarModelChecker
from repro.mc.ctlstar import check as check_ctlstar
from repro.mc.ctlstar import satisfaction_set as ctlstar_satisfaction_set
from repro.mc.indexed import ICTLStarModelChecker
from repro.mc.indexed import check as check_ictlstar
from repro.mc.indexed import satisfaction_set as ictlstar_satisfaction_set
from repro.mc.ltl import exists_path_satisfying, existential_states
from repro.mc.oracle import find_lasso_witness, lasso_satisfies, simple_lasso_exists

__all__ = [
    "CTLModelChecker",
    "CTLStarModelChecker",
    "ICTLStarModelChecker",
    "check_ctl",
    "check_ctlstar",
    "check_ictlstar",
    "ctl_satisfaction_set",
    "ctlstar_satisfaction_set",
    "ictlstar_satisfaction_set",
    "existential_states",
    "exists_path_satisfying",
    "witness_ef",
    "witness_eu",
    "witness_eg",
    "counterexample_ag",
    "counterexample_af",
    "lasso_satisfies",
    "find_lasso_witness",
    "simple_lasso_exists",
]
