"""CTL model checking by the labelling algorithm of Clarke, Emerson and Sistla.

This is the algorithm the paper invokes in Section 5 ("we can use the CTL
model checking algorithm to establish the following properties").  It runs in
time linear in ``|S| + |R|`` per sub-formula by computing satisfaction sets
bottom-up with fixpoint iterations for ``EU`` and ``EG``.

The checker accepts CTL state formulas built from the derived operators
(``AG``, ``AF``, ``EF``, ``EG``, ``A[· U ·]`` …); universal operators are
rewritten into existential ones using the standard dualities.  Index
quantifiers are *not* handled here — :mod:`repro.mc.indexed` instantiates them
over the structure's finite index set first.

With a :class:`~repro.mc.fairness.FairnessConstraint` the path quantifiers
range over *fair* paths only (paths visiting every fairness set infinitely
often): ``EX``/``EU`` restrict their targets to the fair states, and fair
``EG`` is the SCC-restricted greatest fixpoint — the graph is restricted to
the operand's satisfaction set and the states that can reach a non-trivial
strongly connected component intersecting every fairness set survive.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.errors import FragmentError
from repro.kripke.structure import KripkeStructure, State
from repro.kripke.validation import assert_total
from repro.mc.fairness import FairnessConstraint, normalize_fairness
from repro.mc.scc import fair_components
from repro.obs import metrics as _metrics
from repro.obs.trace import span as _obs_span
from repro.logic.ast import (
    And,
    Atom,
    ExactlyOne,
    Exists,
    FalseLiteral,
    Finally,
    ForAll,
    Formula,
    Globally,
    Iff,
    Implies,
    IndexExists,
    IndexForall,
    IndexedAtom,
    Next,
    Not,
    Or,
    Release,
    TrueLiteral,
    Until,
    WeakUntil,
)

__all__ = ["CTLModelChecker", "satisfaction_set", "check"]

_ATOMIC = (TrueLiteral, FalseLiteral, Atom, IndexedAtom, ExactlyOne)


class CTLModelChecker:
    """Labelling-algorithm CTL model checker bound to one Kripke structure.

    Satisfaction sets are memoised per formula, so checking a batch of
    formulas that share sub-formulas (e.g. the four Section 5 properties
    instantiated for every process) re-uses earlier work.
    """

    def __init__(
        self,
        structure: KripkeStructure,
        validate_structure: bool = True,
        fairness: Optional[FairnessConstraint] = None,
    ) -> None:
        if validate_structure:
            assert_total(structure)
        self._structure = structure
        self._fairness = normalize_fairness(fairness)
        self._cache: Dict[Formula, FrozenSet[State]] = {}
        self._fair_condition_sets: Optional[Tuple[FrozenSet[State], ...]] = None
        self._fair_states: Optional[FrozenSet[State]] = None

    @property
    def structure(self) -> KripkeStructure:
        """The structure this checker operates on."""
        return self._structure

    @property
    def fairness(self) -> Optional[FairnessConstraint]:
        """The fairness constraint the path quantifiers respect (``None``: all paths)."""
        return self._fairness

    # -- public API ----------------------------------------------------------

    def satisfaction_set(self, formula: Formula) -> FrozenSet[State]:
        """Return the set of states satisfying the CTL state formula ``formula``."""
        cached = self._cache.get(formula)
        if cached is not None:
            return cached
        result = self._compute(formula)
        self._cache[formula] = result
        return result

    def check(self, formula: Formula, state: Optional[State] = None) -> bool:
        """Decide ``M, state ⊨ formula`` (default state: the initial state)."""
        target = self._structure.initial_state if state is None else state
        with _obs_span("mc.check", engine="naive"):
            satisfied = self.satisfaction_set(formula)
        _metrics.counter("mc.checks", engine="naive").inc()
        return target in satisfied

    # -- recursive computation -------------------------------------------------

    def _compute(self, formula: Formula) -> FrozenSet[State]:
        structure = self._structure
        if isinstance(formula, TrueLiteral):
            return structure.states
        if isinstance(formula, FalseLiteral):
            return frozenset()
        if isinstance(formula, (Atom, IndexedAtom, ExactlyOne)):
            return frozenset(
                state for state in structure.states if structure.atom_holds(state, formula)
            )
        if isinstance(formula, Not):
            return structure.states - self.satisfaction_set(formula.operand)
        if isinstance(formula, And):
            return self.satisfaction_set(formula.left) & self.satisfaction_set(formula.right)
        if isinstance(formula, Or):
            return self.satisfaction_set(formula.left) | self.satisfaction_set(formula.right)
        if isinstance(formula, Implies):
            return self.satisfaction_set(Or(Not(formula.left), formula.right))
        if isinstance(formula, Iff):
            left = self.satisfaction_set(formula.left)
            right = self.satisfaction_set(formula.right)
            return frozenset(
                state
                for state in structure.states
                if (state in left) == (state in right)
            )
        if isinstance(formula, (IndexExists, IndexForall)):
            raise FragmentError(
                "the CTL checker does not handle index quantifiers; instantiate "
                "them with repro.mc.indexed first (formula: %s)" % formula
            )
        if isinstance(formula, Exists):
            return self._compute_exists(formula.path)
        if isinstance(formula, ForAll):
            return self._compute_forall(formula.path)
        raise FragmentError("formula is not a CTL state formula: %s" % formula)

    def _compute_exists(self, path: Formula) -> FrozenSet[State]:
        if isinstance(path, Next):
            return self._preimage(self._constrain(self.satisfaction_set(path.operand)))
        if isinstance(path, Finally):
            return self._eu(
                self._structure.states, self._constrain(self.satisfaction_set(path.operand))
            )
        if isinstance(path, Globally):
            return self._eg_op(self.satisfaction_set(path.operand))
        if isinstance(path, Until):
            return self._eu(
                self.satisfaction_set(path.left),
                self._constrain(self.satisfaction_set(path.right)),
            )
        if isinstance(path, Release):
            # E[f R g]  ≡  ¬A[¬f U ¬g]
            return self._structure.states - self._compute_forall(
                Until(Not(path.left), Not(path.right))
            )
        if isinstance(path, WeakUntil):
            # E[f W g]  ≡  E[f U g] ∨ EG f
            return self._compute_exists(Until(path.left, path.right)) | self._compute_exists(
                Globally(path.left)
            )
        raise FragmentError(
            "E must be applied to a single temporal operator over state formulas "
            "for CTL checking; got E(%s)" % path
        )

    def _compute_forall(self, path: Formula) -> FrozenSet[State]:
        states = self._structure.states
        if isinstance(path, Next):
            # AX f ≡ ¬EX ¬f
            return states - self._preimage(
                self._constrain(states - self.satisfaction_set(path.operand))
            )
        if isinstance(path, Finally):
            # AF f ≡ ¬EG ¬f
            return states - self._eg_op(states - self.satisfaction_set(path.operand))
        if isinstance(path, Globally):
            # AG f ≡ ¬EF ¬f
            return states - self._eu(
                states, self._constrain(states - self.satisfaction_set(path.operand))
            )
        if isinstance(path, Until):
            # A[f U g] ≡ ¬( E[¬g U (¬f ∧ ¬g)] ∨ EG ¬g )
            not_f = states - self.satisfaction_set(path.left)
            not_g = states - self.satisfaction_set(path.right)
            bad = self._eu(not_g, self._constrain(not_f & not_g)) | self._eg_op(not_g)
            return states - bad
        if isinstance(path, Release):
            # A[f R g] ≡ ¬E[¬f U ¬g]
            return states - self._compute_exists(Until(Not(path.left), Not(path.right)))
        if isinstance(path, WeakUntil):
            # A[f W g] ≡ ¬E[¬g U (¬f ∧ ¬g)]
            not_f = states - self.satisfaction_set(path.left)
            not_g = states - self.satisfaction_set(path.right)
            return states - self._eu(not_g, self._constrain(not_f & not_g))
        raise FragmentError(
            "A must be applied to a single temporal operator over state formulas "
            "for CTL checking; got A(%s)" % path
        )

    # -- fixpoint primitives -----------------------------------------------------

    def _preimage(self, target: FrozenSet[State]) -> FrozenSet[State]:
        """States with at least one successor in ``target`` (the EX pre-image)."""
        structure = self._structure
        return frozenset(
            state for state in structure.states if structure.successors(state) & target
        )

    def _eu(self, left: FrozenSet[State], right: FrozenSet[State]) -> FrozenSet[State]:
        """Least fixpoint for ``E[left U right]`` (backwards reachability through ``left``)."""
        structure = self._structure
        satisfied = set(right)
        frontier = list(right)
        while frontier:
            state = frontier.pop()
            for predecessor in structure.predecessors(state):
                if predecessor not in satisfied and predecessor in left:
                    satisfied.add(predecessor)
                    frontier.append(predecessor)
        return frozenset(satisfied)

    def _eg(self, operand: FrozenSet[State]) -> FrozenSet[State]:
        """Greatest fixpoint for ``EG operand`` (prune states with no successor inside)."""
        structure = self._structure
        current = set(operand)
        changed = True
        while changed:
            changed = False
            for state in list(current):
                if not (structure.successors(state) & current):
                    current.discard(state)
                    changed = True
        return frozenset(current)

    # -- fairness ----------------------------------------------------------------

    def fair_states(self) -> FrozenSet[State]:
        """The states starting at least one fair path (every state when unconstrained)."""
        if self._fairness is None:
            return self._structure.states
        if self._fair_states is None:
            self._fair_states = self._fair_eg(self._structure.states)
        return self._fair_states

    def fairness_condition_sets(self) -> Tuple[FrozenSet[State], ...]:
        """The (plain-semantics) satisfaction sets of the fairness conditions."""
        if self._fairness is None:
            return ()
        if self._fair_condition_sets is None:
            # Conditions are evaluated under the *unconstrained* semantics —
            # the constraint defines fairness, so a plain sub-checker decides
            # its conditions (atomic conditions never notice the difference).
            plain = CTLModelChecker(self._structure, validate_structure=False)
            self._fair_condition_sets = tuple(
                plain.satisfaction_set(condition) for condition in self._fairness.conditions
            )
        return self._fair_condition_sets

    def _constrain(self, target: FrozenSet[State]) -> FrozenSet[State]:
        """Restrict an ``EX``/``EU`` target to the fair states (no-op when unconstrained)."""
        if self._fairness is None:
            return target
        return target & self.fair_states()

    def _eg_op(self, operand: FrozenSet[State]) -> FrozenSet[State]:
        """Dispatch ``EG`` to the plain or the fairness-constrained fixpoint."""
        if self._fairness is None:
            return self._eg(operand)
        return self._fair_eg(operand)

    def _fair_eg(self, operand: FrozenSet[State]) -> FrozenSet[State]:
        """SCC-restricted greatest fixpoint for fair ``EG operand``.

        Restrict the structure to ``operand``; a fair path staying inside it
        eventually tours a single strongly connected component, so the fair
        ``EG`` states are exactly the states that can reach — through
        ``operand`` — a non-trivial SCC of the restricted graph intersecting
        every fairness set.
        """
        structure = self._structure
        restricted: Dict[State, List[State]] = {
            state: [
                successor
                for successor in structure.successors(state)
                if successor in operand
            ]
            for state in operand
        }
        hub: set = set()
        for component in fair_components(
            list(operand), restricted, self.fairness_condition_sets()
        ):
            hub |= component
        return self._eu(operand, frozenset(hub))


def satisfaction_set(
    structure: KripkeStructure,
    formula: Formula,
    fairness: Optional[FairnessConstraint] = None,
) -> FrozenSet[State]:
    """One-shot helper: the satisfaction set of ``formula`` on ``structure``."""
    return CTLModelChecker(structure, fairness=fairness).satisfaction_set(formula)


def check(
    structure: KripkeStructure,
    formula: Formula,
    state: Optional[State] = None,
    fairness: Optional[FairnessConstraint] = None,
) -> bool:
    """One-shot helper: decide ``structure, state ⊨ formula`` (default: initial state)."""
    return CTLModelChecker(structure, fairness=fairness).check(formula, state)
