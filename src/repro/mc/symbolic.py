"""Symbolic CTL model checking over BDD-encoded state sets.

:class:`SymbolicCTLModelChecker` is the third engine next to the naive
frozenset checker and the compiled bitset checker: it computes EX/EU/EG as
fixpoints over :mod:`repro.bdd` decision diagrams, so a satisfaction set is a
boolean *function* of the state bits rather than an enumeration of states.
On explicit structures it is a drop-in replacement (``engine="bdd"``
anywhere an engine is accepted); its real payoff is checking
:class:`~repro.kripke.symbolic.SymbolicKripkeStructure` encodings built
directly from a process family, whose explicit product graph would be too
large to construct — see
:func:`repro.systems.token_ring.symbolic_token_ring` and the extended
explosion experiment.

The fixpoints drive the clustered pre-image of :mod:`repro.kripke.symbolic`
with the cheapest set that makes progress:

* ``EX f``   — one clustered pre-image;
* ``E[f U g]`` — least fixpoint iterated on the frontier: each round's
  pre-image only processes the states added in the previous round;
* ``EG f``  — the classic greatest fixpoint ``νZ. f ∧ EX Z``, *deliberately*
  iterated on the full (slowly shrinking) set: successive rounds re-hit
  almost every relational-product subproblem in the bounded caches, which
  makes the iteration incremental — a removal-propagation variant driving
  the constrained pre-image was measured 5× slower here (see :meth:`_eg`).

Under a :class:`~repro.mc.fairness.FairnessConstraint` the fair ``EG`` is
the Emerson–Lei nested μ/ν fixpoint

    ``νZ. f ∧ ⋀_i EX E[f U (Z ∧ F_i)]``

— one inner (frontier) ``EU`` round per fairness condition ``F_i`` per outer
iteration — and ``EX``/``EU`` targets are conjoined with the fair states
(``fair = fair-EG true``).  This is the one fair-``EG`` formulation that
never enumerates states, so fairness-constrained liveness stays checkable on
ring sizes only the symbolic encoding reaches.

Every memoised satisfaction set is held through a reference-counted
:class:`~repro.bdd.BDDFunction` handle, as is all fixpoint state, so the
manager's garbage collector and dynamic reordering can run at any operation
boundary without invalidating a checker.

Unlike the explicit checkers, the symbolic checker also *instantiates index
quantifiers itself* when the underlying encoding knows its index set: family
encodings have no explicit :class:`~repro.kripke.indexed.IndexedKripkeStructure`
to hand to :class:`repro.mc.indexed.ICTLStarModelChecker`, so the Section 5
properties can be checked directly against the symbolic ring.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple, Union

from repro.bdd import BDDFunction
from repro.errors import FragmentError, ValidationError
from repro.kripke.structure import KripkeStructure, State
from repro.kripke.symbolic import SymbolicKripkeStructure, symbolic_structure
from repro.kripke.validation import assert_total
from repro.mc.fairness import FairnessConstraint, normalize_fairness
from repro.obs import metrics as _metrics
from repro.obs.progress import heartbeat as _heartbeat
from repro.obs.trace import is_enabled as _tracing
from repro.obs.trace import span as _span
from repro.runtime.limits import checkpoint as _checkpoint
from repro.logic.ast import (
    And,
    Atom,
    ExactlyOne,
    Exists,
    FalseLiteral,
    Finally,
    ForAll,
    Formula,
    Globally,
    Iff,
    Implies,
    IndexExists,
    IndexForall,
    IndexedAtom,
    Next,
    Not,
    Or,
    Release,
    TrueLiteral,
    Until,
    WeakUntil,
    walk,
)
from repro.logic.transform import instantiate_quantifiers

__all__ = ["SymbolicCTLModelChecker", "satisfaction_set", "check"]

_ATOMIC = (TrueLiteral, FalseLiteral, Atom, IndexedAtom, ExactlyOne)


class SymbolicCTLModelChecker:
    """Fixpoint CTL model checker running on binary decision diagrams.

    Accepts either a plain :class:`KripkeStructure` (encoded on the spot,
    with the encoding memoised on the structure) or an already-encoded
    :class:`SymbolicKripkeStructure`, so a whole family of formulas shares
    one encoding.  Satisfaction BDDs are memoised per formula, exactly like
    the other engines memoise their satisfaction sets/masks.
    """

    def __init__(
        self,
        structure: Union[KripkeStructure, SymbolicKripkeStructure],
        validate_structure: bool = True,
        fairness: Optional[FairnessConstraint] = None,
    ) -> None:
        self._symbolic = symbolic_structure(structure)
        if validate_structure and not self._symbolic.is_total():
            source = self._symbolic.source
            if source is not None:
                assert_total(source)
            raise ValidationError(
                "the symbolic transition relation is not total on its state set"
            )
        self._fairness = normalize_fairness(fairness)
        self._cache: Dict[Formula, BDDFunction] = {}
        self._fair_condition_fns: Optional[Tuple[BDDFunction, ...]] = None
        self._fair_states_fn: Optional[BDDFunction] = None

    @property
    def fairness(self) -> Optional[FairnessConstraint]:
        """The fairness constraint the path quantifiers respect (``None``: all paths)."""
        return self._fairness

    @property
    def symbolic(self) -> SymbolicKripkeStructure:
        """The BDD encoding shared by every check against this instance."""
        return self._symbolic

    @property
    def structure(self) -> Optional[KripkeStructure]:
        """The explicit source structure, when this checker was built from one."""
        return self._symbolic.source

    # -- public API ----------------------------------------------------------

    def satisfaction_fn(self, formula: Formula) -> BDDFunction:
        """The satisfaction set of ``formula`` as a refcounted handle."""
        cached = self._cache.get(formula)
        if cached is not None:
            return cached
        with _span("bdd.satisfaction") as sp:
            if _tracing():
                sp.set(formula=str(formula)[:120])
            result = self._compute(self._instantiate(formula))
        self._cache[formula] = result
        return result

    def satisfaction_node(self, formula: Formula) -> int:
        """Return the satisfaction set of ``formula`` as a raw BDD edge id."""
        return self.satisfaction_fn(formula).node

    def satisfaction_bdd(self, formula: Formula) -> BDDFunction:
        """Return the satisfaction set as a :class:`repro.bdd.BDDFunction`."""
        return self.satisfaction_fn(formula)

    def satisfaction_set(self, formula: Formula) -> FrozenSet[State]:
        """Decode the satisfaction set into a frozenset of states.

        This enumerates (only) the satisfying states; scalable callers should
        prefer :meth:`check` / :meth:`satisfy_count`, which stay symbolic.
        """
        return self._symbolic.states_of(self.satisfaction_node(formula))

    def satisfy_count(self, formula: Formula) -> int:
        """The number of states satisfying ``formula``, by BDD satisfy-count."""
        return self._symbolic.count(self.satisfaction_node(formula))

    def check(self, formula: Formula, state: Optional[State] = None) -> bool:
        """Decide ``M, state ⊨ formula`` (default state: the initial state)."""
        with _span("mc.check", engine="bdd"):
            node = self.satisfaction_node(formula)
            if state is None:
                manager = self._symbolic.manager
                verdict = manager.apply_and(node, self._symbolic.initial) != 0
            else:
                verdict = self._symbolic.holds_at(node, state)
        _metrics.counter("mc.checks", engine="bdd").inc()
        self._symbolic.manager.publish_metrics(engine="bdd")
        return verdict

    def check_batch(
        self,
        formulas: Union[Mapping[str, Formula], Iterable[Formula]],
        state: Optional[State] = None,
    ) -> Dict:
        """Check a whole family of formulas against the one shared encoding.

        With a mapping the result is keyed by the mapping's names; with a
        plain iterable it is keyed by the formulas themselves.  Shared
        sub-formulas are computed once thanks to the per-formula memo.
        """
        if isinstance(formulas, Mapping):
            return {name: self.check(formula, state) for name, formula in formulas.items()}
        return {formula: self.check(formula, state) for formula in formulas}

    # -- index quantifiers ------------------------------------------------------

    def _instantiate(self, formula: Formula) -> Formula:
        has_quantifiers = any(
            isinstance(node, (IndexExists, IndexForall)) for node in walk(formula)
        )
        if not has_quantifiers:
            return formula
        index_values = self._symbolic.index_values
        if index_values is None:
            raise FragmentError(
                "the symbolic CTL checker can only instantiate index quantifiers "
                "on an indexed encoding; instantiate them with repro.mc.indexed "
                "first (formula: %s)" % formula
            )
        return instantiate_quantifiers(formula, index_values)

    # -- recursive computation -------------------------------------------------

    def _fn(self, node: int) -> BDDFunction:
        return self._symbolic.function(node)

    def _domain_fn(self) -> BDDFunction:
        return self._fn(self._symbolic.domain)

    def _complement(self, operand: BDDFunction) -> BDDFunction:
        """The complement relative to the state set ``S``."""
        return self._domain_fn() & ~operand

    def _compute(self, formula: Formula) -> BDDFunction:
        symbolic = self._symbolic
        if isinstance(formula, _ATOMIC):
            return self._fn(symbolic.atom_node(formula))
        if isinstance(formula, Not):
            return self._complement(self.satisfaction_fn(formula.operand))
        if isinstance(formula, And):
            return self.satisfaction_fn(formula.left) & self.satisfaction_fn(formula.right)
        if isinstance(formula, Or):
            return self.satisfaction_fn(formula.left) | self.satisfaction_fn(formula.right)
        if isinstance(formula, Implies):
            return self._complement(self.satisfaction_fn(formula.left)) | (
                self.satisfaction_fn(formula.right)
            )
        if isinstance(formula, Iff):
            left = self.satisfaction_fn(formula.left)
            right = self.satisfaction_fn(formula.right)
            return self._complement(left ^ right)
        if isinstance(formula, Exists):
            return self._compute_exists(formula.path)
        if isinstance(formula, ForAll):
            return self._compute_forall(formula.path)
        raise FragmentError("formula is not a CTL state formula: %s" % formula)

    def _compute_exists(self, path: Formula) -> BDDFunction:
        symbolic = self._symbolic
        if isinstance(path, Next):
            return symbolic.preimage_fn(
                self._constrain(self.satisfaction_fn(path.operand))
            )
        if isinstance(path, Finally):
            return self._eu(
                self._domain_fn(), self._constrain(self.satisfaction_fn(path.operand))
            )
        if isinstance(path, Globally):
            return self._eg_op(self.satisfaction_fn(path.operand))
        if isinstance(path, Until):
            return self._eu(
                self.satisfaction_fn(path.left),
                self._constrain(self.satisfaction_fn(path.right)),
            )
        if isinstance(path, Release):
            # E[f R g]  ≡  ¬A[¬f U ¬g]
            return self._complement(
                self._compute_forall(Until(Not(path.left), Not(path.right)))
            )
        if isinstance(path, WeakUntil):
            # E[f W g]  ≡  E[f U g] ∨ EG f
            return self._compute_exists(Until(path.left, path.right)) | (
                self._compute_exists(Globally(path.left))
            )
        raise FragmentError(
            "E must be applied to a single temporal operator over state formulas "
            "for CTL checking; got E(%s)" % path
        )

    def _compute_forall(self, path: Formula) -> BDDFunction:
        symbolic = self._symbolic
        if isinstance(path, Next):
            # AX f ≡ ¬EX ¬f
            return self._complement(
                symbolic.preimage_fn(
                    self._constrain(
                        self._complement(self.satisfaction_fn(path.operand))
                    )
                )
            )
        if isinstance(path, Finally):
            # AF f ≡ ¬EG ¬f
            return self._complement(
                self._eg_op(self._complement(self.satisfaction_fn(path.operand)))
            )
        if isinstance(path, Globally):
            # AG f ≡ ¬EF ¬f
            return self._complement(
                self._eu(
                    self._domain_fn(),
                    self._constrain(
                        self._complement(self.satisfaction_fn(path.operand))
                    ),
                )
            )
        if isinstance(path, Until):
            # A[f U g] ≡ ¬( E[¬g U (¬f ∧ ¬g)] ∨ EG ¬g )
            not_f = self._complement(self.satisfaction_fn(path.left))
            not_g = self._complement(self.satisfaction_fn(path.right))
            bad = self._eu(not_g, self._constrain(not_f & not_g)) | self._eg_op(not_g)
            return self._complement(bad)
        if isinstance(path, Release):
            # A[f R g] ≡ ¬E[¬f U ¬g]
            return self._complement(
                self._compute_exists(Until(Not(path.left), Not(path.right)))
            )
        if isinstance(path, WeakUntil):
            # A[f W g] ≡ ¬E[¬g U (¬f ∧ ¬g)]
            not_f = self._complement(self.satisfaction_fn(path.left))
            not_g = self._complement(self.satisfaction_fn(path.right))
            return self._complement(self._eu(not_g, self._constrain(not_f & not_g)))
        raise FragmentError(
            "A must be applied to a single temporal operator over state formulas "
            "for CTL checking; got A(%s)" % path
        )

    # -- fixpoint primitives -----------------------------------------------------

    def _eu(self, left: BDDFunction, right: BDDFunction) -> BDDFunction:
        """Least fixpoint for ``E[left U right]``, iterated on the frontier.

        A state enters the fixpoint in round ``k`` only through a successor
        added in round ``k - 1``, so each round's pre-image is taken of the
        *newly added* states instead of the whole accumulated set.
        """
        symbolic = self._symbolic
        with _span("bdd.fixpoint.eu") as sp:
            # Frontier node sizes are only sampled when tracing: counting
            # BDD nodes walks the graph, which the disabled fast path
            # must not pay.
            trace_on = _tracing()
            frontier_nodes = []
            satisfied = right
            frontier = right
            rounds = 0
            while not frontier.is_false:
                rounds += 1
                _checkpoint("bdd.fixpoint")
                if trace_on:
                    frontier_nodes.append(symbolic.manager.node_count(frontier.node))
                reached = left & symbolic.preimage_fn(frontier)
                frontier = reached & ~satisfied
                satisfied = satisfied | frontier
            sp.set(rounds=rounds, frontier_nodes=frontier_nodes)
        _metrics.counter("mc.fixpoint.rounds", engine="bdd", op="eu").inc(rounds)
        _metrics.histogram("mc.fixpoint.iterations", engine="bdd", op="eu").observe(
            rounds
        )
        return satisfied

    def _eg(self, operand: BDDFunction) -> BDDFunction:
        """Greatest fixpoint for ``EG operand``: ``νZ. operand ∧ EX Z``.

        Iterated on the full candidate set *by design*: the set shrinks
        slowly between rounds, so virtually every relational-product
        subproblem of round ``k`` is a cache hit in round ``k + 1`` — the
        bounded caches (with oldest-half eviction) make the classic
        iteration incremental.  A removal-propagation variant driving the
        constrained pre-image was measured 5× slower here: its per-round
        frontier targets are fresh BDDs that defeat exactly that reuse.
        """
        symbolic = self._symbolic
        with _span("bdd.fixpoint.eg") as sp:
            trace_on = _tracing()
            current = operand
            rounds = 0
            while True:
                rounds += 1
                _checkpoint("bdd.fixpoint")
                if trace_on:
                    sp.set(rounds=rounds, nodes=symbolic.manager.node_count(current.node))
                refined = current & symbolic.preimage_fn(current)
                if refined == current:
                    break
                current = refined
            sp.set(rounds=rounds)
        _metrics.counter("mc.fixpoint.rounds", engine="bdd", op="eg").inc(rounds)
        _metrics.histogram("mc.fixpoint.iterations", engine="bdd", op="eg").observe(
            rounds
        )
        return current

    # -- fairness ----------------------------------------------------------------

    def fair_states_fn(self) -> BDDFunction:
        """The fair states (starting at least one fair path) as a handle."""
        if self._fairness is None:
            return self._domain_fn()
        if self._fair_states_fn is None:
            self._fair_states_fn = self._fair_eg(self._domain_fn())
        return self._fair_states_fn

    def fair_states_node(self) -> int:
        """The fair states as a raw BDD edge id."""
        return self.fair_states_fn().node

    def fair_states(self) -> FrozenSet[State]:
        """The fair states, decoded (non-symbolic convenience for tests/reports)."""
        return self._symbolic.states_of(self.fair_states_node())

    def fairness_condition_fns(self) -> Tuple[BDDFunction, ...]:
        """The (plain-semantics) satisfaction handles of the fairness conditions."""
        if self._fairness is None:
            return ()
        if self._fair_condition_fns is None:
            # Conditions are decided under the unconstrained semantics by a
            # plain sub-checker sharing this instance's encoding.
            plain = SymbolicCTLModelChecker(self._symbolic, validate_structure=False)
            self._fair_condition_fns = tuple(
                plain.satisfaction_fn(condition)
                for condition in self._fairness.conditions
            )
        return self._fair_condition_fns

    def fairness_condition_nodes(self) -> Tuple[int, ...]:
        """The fairness-condition satisfaction sets as raw BDD edge ids."""
        return tuple(fn.node for fn in self.fairness_condition_fns())

    def fairness_condition_sets(self) -> Tuple[FrozenSet[State], ...]:
        """The fairness-condition satisfaction sets, decoded into frozensets."""
        states_of = self._symbolic.states_of
        return tuple(states_of(node) for node in self.fairness_condition_nodes())

    def _constrain(self, target: BDDFunction) -> BDDFunction:
        """Conjoin an ``EX``/``EU`` target with the fair states (no-op when unconstrained)."""
        if self._fairness is None:
            return target
        return target & self.fair_states_fn()

    def _eg_op(self, operand: BDDFunction) -> BDDFunction:
        """Dispatch ``EG`` to the plain or the fairness-constrained fixpoint."""
        if self._fairness is None:
            return self._eg(operand)
        return self._fair_eg(operand)

    def _fair_eg(self, operand: BDDFunction) -> BDDFunction:
        """Emerson–Lei fixpoint for fair ``EG operand``.

        ``νZ. operand ∧ ⋀_i EX E[Z U (Z ∧ F_i)]`` — each outer round shrinks
        ``Z`` to the states that can, for every fairness condition, stay
        inside ``Z`` until hitting the condition *and* ``Z`` again; the
        fixpoint is exactly the start of some fair ``operand``-path.  Two
        standard accelerations keep the nested fixpoint tractable on large
        encodings: the iteration starts from the plain ``EG`` (every fair
        ``operand``-path is in particular an infinite one, and the plain
        greatest fixpoint is far cheaper), and the inner until is confined
        to the current ``Z`` (a fair path's suffix is fair, so the true
        fixpoint survives the stronger condition while the inner fixpoints
        stay small).
        """
        symbolic = self._symbolic
        with _span("bdd.fixpoint.fair_eg", conditions=len(self._fairness or ())) as sp:
            condition_fns = self.fairness_condition_fns()
            current = self._eg(operand)
            rounds = 0
            result = None
            while result is None:
                rounds += 1
                _checkpoint("bdd.fixpoint")
                _heartbeat("bdd", fixpoint="fair_eg", round=rounds)
                refined = current
                for condition in condition_fns:
                    target = current & condition
                    refined = refined & symbolic.preimage_fn(self._eu(current, target))
                    if refined.is_false:
                        result = refined
                        break
                if result is None:
                    if refined == current:
                        result = current
                    else:
                        current = refined
            sp.set(rounds=rounds)
        _metrics.counter("mc.fixpoint.rounds", engine="bdd", op="fair_eg").inc(rounds)
        _metrics.histogram(
            "mc.fixpoint.iterations", engine="bdd", op="fair_eg"
        ).observe(rounds)
        return result


def satisfaction_set(
    structure: Union[KripkeStructure, SymbolicKripkeStructure],
    formula: Formula,
    fairness: Optional[FairnessConstraint] = None,
) -> FrozenSet[State]:
    """One-shot helper: the symbolic-engine satisfaction set of ``formula``."""
    return SymbolicCTLModelChecker(structure, fairness=fairness).satisfaction_set(formula)


def check(
    structure: Union[KripkeStructure, SymbolicKripkeStructure],
    formula: Formula,
    state: Optional[State] = None,
    fairness: Optional[FairnessConstraint] = None,
) -> bool:
    """One-shot helper: decide ``structure, state ⊨ formula`` with the BDD engine."""
    return SymbolicCTLModelChecker(structure, fairness=fairness).check(formula, state)
