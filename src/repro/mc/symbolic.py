"""Symbolic CTL model checking over BDD-encoded state sets.

:class:`SymbolicCTLModelChecker` is the third engine next to the naive
frozenset checker and the compiled bitset checker: it computes EX/EU/EG as
fixpoints over :mod:`repro.bdd` decision diagrams, so a satisfaction set is a
boolean *function* of the state bits rather than an enumeration of states.
On explicit structures it is a drop-in replacement (``engine="bdd"``
anywhere an engine is accepted); its real payoff is checking
:class:`~repro.kripke.symbolic.SymbolicKripkeStructure` encodings built
directly from a process family, whose explicit product graph would be too
large to construct — see
:func:`repro.systems.token_ring.symbolic_token_ring` and the extended
explosion experiment.

The fixpoints are the textbook symbolic ones:

* ``EX f``   — one pre-image: ``∃x'. R(x, x') ∧ f(x')``, computed as one
  fused ``relprod`` per partitioned-transition part;
* ``E[f U g]`` — least fixpoint ``Z = g ∨ (f ∧ EX Z)``, iterated on the
  *frontier* so each round's pre-image only processes newly added states;
* ``EG f``  — greatest fixpoint ``Z = f ∧ EX Z``.

Under a :class:`~repro.mc.fairness.FairnessConstraint` the fair ``EG`` is
the Emerson–Lei nested μ/ν fixpoint

    ``νZ. f ∧ ⋀_i EX E[f U (Z ∧ F_i)]``

— one inner ``EU`` round per fairness condition ``F_i`` per outer iteration —
and ``EX``/``EU`` targets are conjoined with the fair states
(``fair = fair-EG true``).  This is the one fair-``EG`` formulation that
never enumerates states, so fairness-constrained liveness stays checkable on
ring sizes only the symbolic encoding reaches.

Unlike the explicit checkers, the symbolic checker also *instantiates index
quantifiers itself* when the underlying encoding knows its index set: family
encodings have no explicit :class:`~repro.kripke.indexed.IndexedKripkeStructure`
to hand to :class:`repro.mc.indexed.ICTLStarModelChecker`, so the Section 5
properties can be checked directly against the symbolic ring.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple, Union

from repro.errors import FragmentError, ValidationError
from repro.kripke.structure import KripkeStructure, State
from repro.kripke.symbolic import SymbolicKripkeStructure, symbolic_structure
from repro.kripke.validation import assert_total
from repro.mc.fairness import FairnessConstraint, normalize_fairness
from repro.logic.ast import (
    And,
    Atom,
    ExactlyOne,
    Exists,
    FalseLiteral,
    Finally,
    ForAll,
    Formula,
    Globally,
    Iff,
    Implies,
    IndexExists,
    IndexForall,
    IndexedAtom,
    Next,
    Not,
    Or,
    Release,
    TrueLiteral,
    Until,
    WeakUntil,
    walk,
)
from repro.logic.transform import instantiate_quantifiers

__all__ = ["SymbolicCTLModelChecker", "satisfaction_set", "check"]

_ATOMIC = (TrueLiteral, FalseLiteral, Atom, IndexedAtom, ExactlyOne)


class SymbolicCTLModelChecker:
    """Fixpoint CTL model checker running on binary decision diagrams.

    Accepts either a plain :class:`KripkeStructure` (encoded on the spot,
    with the encoding memoised on the structure) or an already-encoded
    :class:`SymbolicKripkeStructure`, so a whole family of formulas shares
    one encoding.  Satisfaction BDDs are memoised per formula, exactly like
    the other engines memoise their satisfaction sets/masks.
    """

    def __init__(
        self,
        structure: Union[KripkeStructure, SymbolicKripkeStructure],
        validate_structure: bool = True,
        fairness: Optional[FairnessConstraint] = None,
    ) -> None:
        self._symbolic = symbolic_structure(structure)
        if validate_structure and not self._symbolic.is_total():
            source = self._symbolic.source
            if source is not None:
                assert_total(source)
            raise ValidationError(
                "the symbolic transition relation is not total on its state set"
            )
        self._fairness = normalize_fairness(fairness)
        self._cache: Dict[Formula, int] = {}
        self._fair_condition_nodes: Optional[Tuple[int, ...]] = None
        self._fair_states_node: Optional[int] = None

    @property
    def fairness(self) -> Optional[FairnessConstraint]:
        """The fairness constraint the path quantifiers respect (``None``: all paths)."""
        return self._fairness

    @property
    def symbolic(self) -> SymbolicKripkeStructure:
        """The BDD encoding shared by every check against this instance."""
        return self._symbolic

    @property
    def structure(self) -> Optional[KripkeStructure]:
        """The explicit source structure, when this checker was built from one."""
        return self._symbolic.source

    # -- public API ----------------------------------------------------------

    def satisfaction_node(self, formula: Formula) -> int:
        """Return the satisfaction set of ``formula`` as a raw BDD node id."""
        cached = self._cache.get(formula)
        if cached is not None:
            return cached
        result = self._compute(self._instantiate(formula))
        self._cache[formula] = result
        return result

    def satisfaction_bdd(self, formula: Formula):
        """Return the satisfaction set as a :class:`repro.bdd.BDDFunction`."""
        return self._symbolic.function(self.satisfaction_node(formula))

    def satisfaction_set(self, formula: Formula) -> FrozenSet[State]:
        """Decode the satisfaction set into a frozenset of states.

        This enumerates (only) the satisfying states; scalable callers should
        prefer :meth:`check` / :meth:`satisfy_count`, which stay symbolic.
        """
        return self._symbolic.states_of(self.satisfaction_node(formula))

    def satisfy_count(self, formula: Formula) -> int:
        """The number of states satisfying ``formula``, by BDD satisfy-count."""
        return self._symbolic.count(self.satisfaction_node(formula))

    def check(self, formula: Formula, state: Optional[State] = None) -> bool:
        """Decide ``M, state ⊨ formula`` (default state: the initial state)."""
        node = self.satisfaction_node(formula)
        if state is None:
            manager = self._symbolic.manager
            return manager.apply_and(node, self._symbolic.initial) != 0
        return self._symbolic.holds_at(node, state)

    def check_batch(
        self,
        formulas: Union[Mapping[str, Formula], Iterable[Formula]],
        state: Optional[State] = None,
    ) -> Dict:
        """Check a whole family of formulas against the one shared encoding.

        With a mapping the result is keyed by the mapping's names; with a
        plain iterable it is keyed by the formulas themselves.
        """
        if isinstance(formulas, Mapping):
            return {name: self.check(formula, state) for name, formula in formulas.items()}
        return {formula: self.check(formula, state) for formula in formulas}

    # -- index quantifiers ------------------------------------------------------

    def _instantiate(self, formula: Formula) -> Formula:
        has_quantifiers = any(
            isinstance(node, (IndexExists, IndexForall)) for node in walk(formula)
        )
        if not has_quantifiers:
            return formula
        index_values = self._symbolic.index_values
        if index_values is None:
            raise FragmentError(
                "the symbolic CTL checker can only instantiate index quantifiers "
                "on an indexed encoding; instantiate them with repro.mc.indexed "
                "first (formula: %s)" % formula
            )
        return instantiate_quantifiers(formula, index_values)

    # -- recursive computation -------------------------------------------------

    def _compute(self, formula: Formula) -> int:
        symbolic = self._symbolic
        manager = symbolic.manager
        if isinstance(formula, _ATOMIC):
            return symbolic.atom_node(formula)
        if isinstance(formula, Not):
            return symbolic.complement(self.satisfaction_node(formula.operand))
        if isinstance(formula, And):
            return manager.apply_and(
                self.satisfaction_node(formula.left), self.satisfaction_node(formula.right)
            )
        if isinstance(formula, Or):
            return manager.apply_or(
                self.satisfaction_node(formula.left), self.satisfaction_node(formula.right)
            )
        if isinstance(formula, Implies):
            return manager.apply_or(
                symbolic.complement(self.satisfaction_node(formula.left)),
                self.satisfaction_node(formula.right),
            )
        if isinstance(formula, Iff):
            left = self.satisfaction_node(formula.left)
            right = self.satisfaction_node(formula.right)
            return symbolic.complement(manager.apply_xor(left, right))
        if isinstance(formula, Exists):
            return self._compute_exists(formula.path)
        if isinstance(formula, ForAll):
            return self._compute_forall(formula.path)
        raise FragmentError("formula is not a CTL state formula: %s" % formula)

    def _compute_exists(self, path: Formula) -> int:
        symbolic = self._symbolic
        if isinstance(path, Next):
            return symbolic.preimage(self._constrain(self.satisfaction_node(path.operand)))
        if isinstance(path, Finally):
            return self._eu(
                symbolic.domain, self._constrain(self.satisfaction_node(path.operand))
            )
        if isinstance(path, Globally):
            return self._eg_op(self.satisfaction_node(path.operand))
        if isinstance(path, Until):
            return self._eu(
                self.satisfaction_node(path.left),
                self._constrain(self.satisfaction_node(path.right)),
            )
        if isinstance(path, Release):
            # E[f R g]  ≡  ¬A[¬f U ¬g]
            return symbolic.complement(
                self._compute_forall(Until(Not(path.left), Not(path.right)))
            )
        if isinstance(path, WeakUntil):
            # E[f W g]  ≡  E[f U g] ∨ EG f
            return symbolic.manager.apply_or(
                self._compute_exists(Until(path.left, path.right)),
                self._compute_exists(Globally(path.left)),
            )
        raise FragmentError(
            "E must be applied to a single temporal operator over state formulas "
            "for CTL checking; got E(%s)" % path
        )

    def _compute_forall(self, path: Formula) -> int:
        symbolic = self._symbolic
        manager = symbolic.manager
        if isinstance(path, Next):
            # AX f ≡ ¬EX ¬f
            return symbolic.complement(
                symbolic.preimage(
                    self._constrain(
                        symbolic.complement(self.satisfaction_node(path.operand))
                    )
                )
            )
        if isinstance(path, Finally):
            # AF f ≡ ¬EG ¬f
            return symbolic.complement(
                self._eg_op(symbolic.complement(self.satisfaction_node(path.operand)))
            )
        if isinstance(path, Globally):
            # AG f ≡ ¬EF ¬f
            return symbolic.complement(
                self._eu(
                    symbolic.domain,
                    self._constrain(
                        symbolic.complement(self.satisfaction_node(path.operand))
                    ),
                )
            )
        if isinstance(path, Until):
            # A[f U g] ≡ ¬( E[¬g U (¬f ∧ ¬g)] ∨ EG ¬g )
            not_f = symbolic.complement(self.satisfaction_node(path.left))
            not_g = symbolic.complement(self.satisfaction_node(path.right))
            bad = manager.apply_or(
                self._eu(not_g, self._constrain(manager.apply_and(not_f, not_g))),
                self._eg_op(not_g),
            )
            return symbolic.complement(bad)
        if isinstance(path, Release):
            # A[f R g] ≡ ¬E[¬f U ¬g]
            return symbolic.complement(
                self._compute_exists(Until(Not(path.left), Not(path.right)))
            )
        if isinstance(path, WeakUntil):
            # A[f W g] ≡ ¬E[¬g U (¬f ∧ ¬g)]
            not_f = symbolic.complement(self.satisfaction_node(path.left))
            not_g = symbolic.complement(self.satisfaction_node(path.right))
            return symbolic.complement(
                self._eu(not_g, self._constrain(manager.apply_and(not_f, not_g)))
            )
        raise FragmentError(
            "A must be applied to a single temporal operator over state formulas "
            "for CTL checking; got A(%s)" % path
        )

    # -- fixpoint primitives -----------------------------------------------------

    def _eu(self, left: int, right: int) -> int:
        """Least fixpoint for ``E[left U right]``, iterated on the frontier.

        A state enters the fixpoint in round ``k`` only through a successor
        added in round ``k - 1``, so each round's pre-image is taken of the
        *newly added* states instead of the whole accumulated set.
        """
        symbolic = self._symbolic
        manager = symbolic.manager
        satisfied = right
        frontier = right
        while frontier != 0:
            reached = manager.apply_and(left, symbolic.preimage(frontier))
            frontier = manager.apply_and(reached, manager.negate(satisfied))
            satisfied = manager.apply_or(satisfied, frontier)
        return satisfied

    def _eg(self, operand: int) -> int:
        """Greatest fixpoint for ``EG operand``: ``νZ. operand ∧ EX Z``."""
        symbolic = self._symbolic
        manager = symbolic.manager
        current = operand
        while True:
            refined = manager.apply_and(current, symbolic.preimage(current))
            if refined == current:
                return current
            current = refined

    # -- fairness ----------------------------------------------------------------

    def fair_states_node(self) -> int:
        """The fair states (starting at least one fair path) as a BDD node."""
        if self._fairness is None:
            return self._symbolic.domain
        if self._fair_states_node is None:
            self._fair_states_node = self._fair_eg(self._symbolic.domain)
        return self._fair_states_node

    def fair_states(self) -> FrozenSet[State]:
        """The fair states, decoded (non-symbolic convenience for tests/reports)."""
        return self._symbolic.states_of(self.fair_states_node())

    def fairness_condition_nodes(self) -> Tuple[int, ...]:
        """The (plain-semantics) satisfaction nodes of the fairness conditions."""
        if self._fairness is None:
            return ()
        if self._fair_condition_nodes is None:
            # Conditions are decided under the unconstrained semantics by a
            # plain sub-checker sharing this instance's encoding.
            plain = SymbolicCTLModelChecker(self._symbolic, validate_structure=False)
            self._fair_condition_nodes = tuple(
                plain.satisfaction_node(condition)
                for condition in self._fairness.conditions
            )
        return self._fair_condition_nodes

    def fairness_condition_sets(self) -> Tuple[FrozenSet[State], ...]:
        """The fairness-condition satisfaction sets, decoded into frozensets."""
        states_of = self._symbolic.states_of
        return tuple(states_of(node) for node in self.fairness_condition_nodes())

    def _constrain(self, target: int) -> int:
        """Conjoin an ``EX``/``EU`` target with the fair states (no-op when unconstrained)."""
        if self._fairness is None:
            return target
        return self._symbolic.manager.apply_and(target, self.fair_states_node())

    def _eg_op(self, operand: int) -> int:
        """Dispatch ``EG`` to the plain or the fairness-constrained fixpoint."""
        if self._fairness is None:
            return self._eg(operand)
        return self._fair_eg(operand)

    def _fair_eg(self, operand: int) -> int:
        """Emerson–Lei fixpoint for fair ``EG operand``.

        ``νZ. operand ∧ ⋀_i EX E[operand U (Z ∧ F_i)]`` — each outer round
        shrinks ``Z`` to the states that can, for every fairness condition,
        stay inside ``operand`` until hitting the condition *and* ``Z``
        again; the fixpoint is exactly the start of some fair
        ``operand``-path.
        """
        symbolic = self._symbolic
        manager = symbolic.manager
        condition_nodes = self.fairness_condition_nodes()
        current = operand
        while True:
            refined = operand
            for condition in condition_nodes:
                target = manager.apply_and(current, condition)
                refined = manager.apply_and(
                    refined, symbolic.preimage(self._eu(operand, target))
                )
            if refined == current:
                return current
            current = refined


def satisfaction_set(
    structure: Union[KripkeStructure, SymbolicKripkeStructure],
    formula: Formula,
    fairness: Optional[FairnessConstraint] = None,
) -> FrozenSet[State]:
    """One-shot helper: the symbolic-engine satisfaction set of ``formula``."""
    return SymbolicCTLModelChecker(structure, fairness=fairness).satisfaction_set(formula)


def check(
    structure: Union[KripkeStructure, SymbolicKripkeStructure],
    formula: Formula,
    state: Optional[State] = None,
    fairness: Optional[FairnessConstraint] = None,
) -> bool:
    """One-shot helper: decide ``structure, state ⊨ formula`` with the BDD engine."""
    return SymbolicCTLModelChecker(structure, fairness=fairness).check(formula, state)
