"""Model checking indexed CTL* (ICTL*) formulas on indexed Kripke structures.

For a *finite* index set ``I`` the semantics of the index quantifiers is just
a finite disjunction/conjunction: ``s ⊨ ∨_i f(i)`` iff ``s ⊨ f(c)`` for some
``c ∈ I``.  The checker therefore instantiates every quantifier over the
structure's index set and dispatches the resulting plain formula to the CTL
labelling algorithm when possible and to the full CTL* checker otherwise.
The ``Θ_i P_i`` ("exactly one") proposition is evaluated directly from the
structure's labels.

By default the checker *enforces* the Section 4 restrictions (closed, no
next-time, no nested index quantifiers, no index quantifiers inside until
operands).  The restrictions are what make the correspondence theorem of the
paper applicable — an unrestricted formula such as the Fig. 4.1 counting
formula can distinguish networks of different sizes, so verifying it on a
small instance says nothing about larger ones.  Pass
``enforce_restrictions=False`` to evaluate such formulas anyway (the Fig. 4.1
experiment does exactly this to demonstrate the problem).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional

from repro.errors import FragmentError
from repro.kripke.indexed import IndexedKripkeStructure
from repro.kripke.structure import State
from repro.kripke.validation import assert_total
from repro.logic.ast import Formula, IndexExists, IndexForall, walk
from repro.logic.syntax import (
    assert_restricted_ictl,
    is_ctl,
    is_state_formula,
)
from repro.logic.transform import free_index_variables, instantiate_quantifiers
from repro.mc.ctl import CTLModelChecker
from repro.mc.ctlstar import CTLStarModelChecker

__all__ = ["ICTLStarModelChecker", "satisfaction_set", "check"]


class ICTLStarModelChecker:
    """ICTL* model checker bound to one indexed Kripke structure."""

    def __init__(
        self,
        structure: IndexedKripkeStructure,
        enforce_restrictions: bool = True,
        validate_structure: bool = True,
    ) -> None:
        if validate_structure:
            assert_total(structure)
        self._structure = structure
        self._enforce_restrictions = enforce_restrictions
        self._ctl = CTLModelChecker(structure, validate_structure=False)
        self._ctlstar = CTLStarModelChecker(structure, validate_structure=False)
        self._cache: Dict[Formula, FrozenSet[State]] = {}

    @property
    def structure(self) -> IndexedKripkeStructure:
        """The indexed structure this checker operates on."""
        return self._structure

    # -- public API ----------------------------------------------------------

    def satisfaction_set(self, formula: Formula) -> FrozenSet[State]:
        """Return the set of states satisfying the ICTL* formula ``formula``."""
        cached = self._cache.get(formula)
        if cached is not None:
            return cached
        self._validate_formula(formula)
        instantiated = instantiate_quantifiers(formula, self._structure.index_values)
        if self._is_plain_ctl(instantiated):
            result = self._ctl.satisfaction_set(instantiated)
        else:
            result = self._ctlstar.satisfaction_set(instantiated)
        self._cache[formula] = result
        return result

    def check(self, formula: Formula, state: Optional[State] = None) -> bool:
        """Decide ``M, state ⊨ formula`` (default state: the initial state)."""
        target = self._structure.initial_state if state is None else state
        return target in self.satisfaction_set(formula)

    # -- helpers ---------------------------------------------------------------

    def _validate_formula(self, formula: Formula) -> None:
        if self._enforce_restrictions:
            assert_restricted_ictl(formula)
            return
        if not is_state_formula(formula):
            raise FragmentError("ICTL* checking decides state formulas; got %s" % formula)
        unbound = free_index_variables(formula)
        if unbound:
            raise FragmentError(
                "formula has free index variables %s; bind them with an index "
                "quantifier or substitute concrete process numbers" % sorted(unbound)
            )

    @staticmethod
    def _is_plain_ctl(formula: Formula) -> bool:
        if not is_ctl(formula):
            return False
        return not any(isinstance(node, (IndexExists, IndexForall)) for node in walk(formula))


def satisfaction_set(
    structure: IndexedKripkeStructure,
    formula: Formula,
    enforce_restrictions: bool = True,
) -> FrozenSet[State]:
    """One-shot helper: the satisfaction set of an ICTL* formula."""
    checker = ICTLStarModelChecker(structure, enforce_restrictions=enforce_restrictions)
    return checker.satisfaction_set(formula)


def check(
    structure: IndexedKripkeStructure,
    formula: Formula,
    state: Optional[State] = None,
    enforce_restrictions: bool = True,
) -> bool:
    """One-shot helper: decide an ICTL* formula at ``state`` (default: initial state)."""
    checker = ICTLStarModelChecker(structure, enforce_restrictions=enforce_restrictions)
    return checker.check(formula, state)
