"""Model checking indexed CTL* (ICTL*) formulas on indexed Kripke structures.

For a *finite* index set ``I`` the semantics of the index quantifiers is just
a finite disjunction/conjunction: ``s ⊨ ∨_i f(i)`` iff ``s ⊨ f(c)`` for some
``c ∈ I``.  The checker therefore instantiates every quantifier over the
structure's index set and dispatches the resulting plain formula to the CTL
labelling algorithm when possible and to the full CTL* checker otherwise.
The ``Θ_i P_i`` ("exactly one") proposition is evaluated directly from the
structure's labels.

By default the checker *enforces* the Section 4 restrictions (closed, no
next-time, no nested index quantifiers, no index quantifiers inside until
operands).  The restrictions are what make the correspondence theorem of the
paper applicable — an unrestricted formula such as the Fig. 4.1 counting
formula can distinguish networks of different sizes, so verifying it on a
small instance says nothing about larger ones.  Pass
``enforce_restrictions=False`` to evaluate such formulas anyway (the Fig. 4.1
experiment does exactly this to demonstrate the problem).

Formulas whose instantiation lands in plain CTL — every property the paper
actually checks — are dispatched to an engine selected by the ``engine``
parameter, any name from :data:`repro.mc.bitset.ENGINE_NAMES` (the registry
documented engine-by-engine in ``docs/ENGINES.md``).  The fixpoint engines
(``"bitset"``, ``"naive"``, ``"bdd"``) compute satisfaction sets and decide
full CTL; the SAT-based engines (``"bmc"``, ``"ic3"``) expose
``supports_satisfaction_sets = False``, decide only the invariant fragment,
answer :meth:`~ICTLStarModelChecker.check` (never satisfaction *sets*), and
honour the ``bound`` parameter (unrolling depth for ``"bmc"``, frame
ceiling for ``"ic3"``).

A :class:`repro.mc.fairness.FairnessConstraint` passed as ``fairness=`` is
forwarded to the CTL engine, so restricted ICTL* formulas are decided under
the fairness-constrained semantics; formulas that need the CTL* fallback are
rejected when fairness is set (fair CTL* is not implemented).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Union

from repro.errors import FragmentError
from repro.kripke.indexed import IndexedKripkeStructure
from repro.kripke.structure import State
from repro.kripke.validation import assert_total
from repro.logic.ast import Formula, IndexExists, IndexForall, walk
from repro.logic.syntax import (
    assert_restricted_ictl,
    is_ctl,
    is_state_formula,
)
from repro.logic.transform import free_index_variables, instantiate_quantifiers
from repro.mc.bitset import make_ctl_checker
from repro.mc.ctlstar import CTLStarModelChecker
from repro.mc.fairness import FairnessConstraint, normalize_fairness

__all__ = ["ICTLStarModelChecker", "satisfaction_set", "check", "check_batch"]


class ICTLStarModelChecker:
    """ICTL* model checker bound to one indexed Kripke structure."""

    def __init__(
        self,
        structure: IndexedKripkeStructure,
        enforce_restrictions: bool = True,
        validate_structure: bool = True,
        engine: str = "bitset",
        fairness: Optional[FairnessConstraint] = None,
        bound: Optional[int] = None,
    ) -> None:
        if validate_structure:
            assert_total(structure)
        self._structure = structure
        self._enforce_restrictions = enforce_restrictions
        self._engine = engine
        self._fairness = normalize_fairness(fairness)
        self._ctl = make_ctl_checker(
            structure,
            engine=engine,
            validate_structure=False,
            fairness=self._fairness,
            bound=bound,
        )
        self._ctlstar = CTLStarModelChecker(structure, validate_structure=False)
        self._cache: Dict[Formula, FrozenSet[State]] = {}

    @property
    def structure(self) -> IndexedKripkeStructure:
        """The indexed structure this checker operates on."""
        return self._structure

    @property
    def engine(self) -> str:
        """The engine in use (one of :data:`repro.mc.bitset.ENGINE_NAMES`)."""
        return self._engine

    @property
    def fairness(self) -> Optional[FairnessConstraint]:
        """The fairness constraint forwarded to the CTL engine (``None``: all paths)."""
        return self._fairness

    # -- public API ----------------------------------------------------------

    def satisfaction_set(self, formula: Formula) -> FrozenSet[State]:
        """Return the set of states satisfying the ICTL* formula ``formula``."""
        cached = self._cache.get(formula)
        if cached is not None:
            return cached
        if not getattr(self._ctl, "supports_satisfaction_sets", True):
            raise FragmentError(
                "engine %r decides single verdicts, not satisfaction sets; "
                "use check() or a fixpoint engine" % self._engine
            )
        self._validate_formula(formula)
        instantiated = instantiate_quantifiers(formula, self._structure.index_values)
        if self._is_plain_ctl(instantiated):
            result = self._ctl.satisfaction_set(instantiated)
        elif self._fairness is not None:
            raise FragmentError(
                "fairness-constrained checking is only implemented for the CTL "
                "fragment; %s instantiates outside CTL" % formula
            )
        else:
            result = self._ctlstar.satisfaction_set(instantiated)
        self._cache[formula] = result
        return result

    def check(self, formula: Formula, state: Optional[State] = None) -> bool:
        """Decide ``M, state ⊨ formula`` (default state: the initial state).

        Verdict-only engines (``supports_satisfaction_sets = False``, i.e.
        the SAT-based ``"bmc"`` and ``"ic3"``) are dispatched directly — the
        instantiated formula must then fall inside the engine's fragment.
        """
        if not getattr(self._ctl, "supports_satisfaction_sets", True):
            self._validate_formula(formula)
            instantiated = instantiate_quantifiers(formula, self._structure.index_values)
            return self._ctl.check(instantiated, state)
        target = self._structure.initial_state if state is None else state
        return target in self.satisfaction_set(formula)

    def check_batch(
        self,
        formulas: Union[Mapping[str, Formula], Iterable[Formula]],
        state: Optional[State] = None,
    ) -> Dict:
        """Check a whole family of ICTL* formulas against one compiled structure.

        The structure is validated and compiled once (at construction) and
        each instantiated formula is dispatched to the shared engine, whose
        per-sub-formula memo carries over between the formulas of the family.
        With a mapping the result is keyed by the mapping's names; with a
        plain iterable it is keyed by the formulas themselves.
        """
        if isinstance(formulas, Mapping):
            return {name: self.check(formula, state) for name, formula in formulas.items()}
        return {formula: self.check(formula, state) for formula in formulas}

    # -- helpers ---------------------------------------------------------------

    def _validate_formula(self, formula: Formula) -> None:
        if self._enforce_restrictions:
            assert_restricted_ictl(formula)
            return
        if not is_state_formula(formula):
            raise FragmentError("ICTL* checking decides state formulas; got %s" % formula)
        unbound = free_index_variables(formula)
        if unbound:
            raise FragmentError(
                "formula has free index variables %s; bind them with an index "
                "quantifier or substitute concrete process numbers" % sorted(unbound)
            )

    @staticmethod
    def _is_plain_ctl(formula: Formula) -> bool:
        if not is_ctl(formula):
            return False
        return not any(isinstance(node, (IndexExists, IndexForall)) for node in walk(formula))


def satisfaction_set(
    structure: IndexedKripkeStructure,
    formula: Formula,
    enforce_restrictions: bool = True,
    engine: str = "bitset",
    fairness: Optional[FairnessConstraint] = None,
) -> FrozenSet[State]:
    """One-shot helper: the satisfaction set of an ICTL* formula."""
    checker = ICTLStarModelChecker(
        structure, enforce_restrictions=enforce_restrictions, engine=engine, fairness=fairness
    )
    return checker.satisfaction_set(formula)


def check(
    structure: IndexedKripkeStructure,
    formula: Formula,
    state: Optional[State] = None,
    enforce_restrictions: bool = True,
    engine: str = "bitset",
    fairness: Optional[FairnessConstraint] = None,
    bound: Optional[int] = None,
) -> bool:
    """One-shot helper: decide an ICTL* formula at ``state`` (default: initial state)."""
    checker = ICTLStarModelChecker(
        structure,
        enforce_restrictions=enforce_restrictions,
        engine=engine,
        fairness=fairness,
        bound=bound,
    )
    return checker.check(formula, state)


def check_batch(
    structure: IndexedKripkeStructure,
    formulas: Union[Mapping[str, Formula], Iterable[Formula]],
    state: Optional[State] = None,
    enforce_restrictions: bool = True,
    engine: str = "bitset",
    fairness: Optional[FairnessConstraint] = None,
) -> Dict:
    """One-shot helper: check a family of ICTL* formulas, compiling the structure once."""
    checker = ICTLStarModelChecker(
        structure, enforce_restrictions=enforce_restrictions, engine=engine, fairness=fairness
    )
    return checker.check_batch(formulas, state)
