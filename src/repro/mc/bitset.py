"""CTL model checking over compiled bitset state sets.

:class:`BitsetCTLModelChecker` is a drop-in replacement for
:class:`repro.mc.ctl.CTLModelChecker` that runs the Clarke–Emerson–Sistla
labelling algorithm entirely on int bitmasks produced by
:class:`repro.kripke.compiled.CompiledKripkeStructure`:

* boolean connectives are single int operations (``&``, ``|``, complement
  against the all-states mask);
* ``E[f U g]`` is a predecessor-propagation worklist over adjacency lists —
  each transition is inspected at most once;
* ``EG f`` is the reverse-pruning fixpoint: per-state counts of successors
  still inside the candidate set are maintained and states are pruned when
  their count reaches zero, again touching each transition at most once.

The naive checker remains the differential-testing oracle — see
``tests/property/test_property_bitset.py`` — and is still available through
``engine="naive"`` wherever the library accepts an engine choice.

Fairness-constrained checking mirrors :class:`repro.mc.ctl.CTLModelChecker`:
``EX``/``EU`` targets are masked with the fair states and fair ``EG`` runs
the SCC-restricted fixpoint (Tarjan over the indices inside the operand
mask, keeping the non-trivial components whose mask intersects every
fairness mask).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple, Union

from repro.errors import FragmentError, ModelCheckingError
from repro.kripke.compiled import (
    CompiledKripkeStructure,
    bits_of,
    compile_structure,
    popcount,
)
from repro.kripke.structure import KripkeStructure, State
from repro.kripke.validation import assert_total
from repro.mc.fairness import FairnessConstraint, normalize_fairness
from repro.mc.scc import fair_components
from repro.obs import metrics as _metrics
from repro.obs.trace import span as _obs_span
from repro.runtime.limits import checkpoint as _checkpoint
from repro.logic.ast import (
    And,
    Atom,
    ExactlyOne,
    Exists,
    FalseLiteral,
    Finally,
    ForAll,
    Formula,
    Globally,
    Iff,
    Implies,
    IndexExists,
    IndexForall,
    IndexedAtom,
    Next,
    Not,
    Or,
    Release,
    TrueLiteral,
    Until,
    WeakUntil,
)

__all__ = [
    "BitsetCTLModelChecker",
    "CTL_ENGINES",
    "ENGINE_NAMES",
    "make_ctl_checker",
    "satisfaction_set",
    "check",
]

_ATOMIC = (TrueLiteral, FalseLiteral, Atom, IndexedAtom, ExactlyOne)

#: Every registered model-checking engine, in registry order — the single
#: source of truth for engine names everywhere (the CLI, the docstrings, the
#: parametrised tests; ``docs/ENGINES.md`` documents each one).  ``"bitset"``,
#: ``"naive"`` and ``"bdd"`` decide full CTL by fixpoint computation; the two
#: SAT-based engines decide the invariant fragment only: ``"bmc"``
#: (:mod:`repro.mc.bmc`) by bounded falsification + k-induction, ``"ic3"``
#: (:mod:`repro.mc.ic3`) by unbounded property-directed reachability with
#: re-verified invariant certificates.  ``"portfolio"``
#: (:mod:`repro.runtime.portfolio`) is the meta-engine racing the others in
#: supervised worker processes and keeping the first conclusive verdict.
ENGINE_NAMES = ("bitset", "naive", "bdd", "bmc", "ic3", "portfolio")

#: The engines computing full CTL *satisfaction sets* — the differential-
#: testing set replayed by :func:`repro.mc.oracle.crosscheck_ctl_engines`.
#: ``"bmc"``, ``"ic3"`` and ``"portfolio"`` are deliberately excluded: they
#: produce single verdicts, not sets.
CTL_ENGINES = tuple(
    name for name in ENGINE_NAMES if name not in ("bmc", "ic3", "portfolio")
)


class BitsetCTLModelChecker:
    """Labelling-algorithm CTL model checker running on compiled bitsets.

    Accepts either a plain :class:`KripkeStructure` (compiled on the spot) or
    an already-:class:`CompiledKripkeStructure`, so a whole family of formulas
    can share one compilation.  Satisfaction masks are memoised per formula,
    exactly like the naive checker memoises satisfaction sets.
    """

    def __init__(
        self,
        structure: Union[KripkeStructure, CompiledKripkeStructure],
        validate_structure: bool = True,
        fairness: Optional[FairnessConstraint] = None,
    ) -> None:
        self._compiled = compile_structure(structure)
        if validate_structure and not self._compiled.is_total():
            assert_total(self._compiled.source)
        self._fairness = normalize_fairness(fairness)
        self._cache: Dict[Formula, int] = {}
        self._fair_condition_masks: Optional[Tuple[int, ...]] = None
        self._fair_states_mask: Optional[int] = None

    @property
    def structure(self) -> KripkeStructure:
        """The (source) structure this checker operates on."""
        return self._compiled.source

    @property
    def fairness(self) -> Optional[FairnessConstraint]:
        """The fairness constraint the path quantifiers respect (``None``: all paths)."""
        return self._fairness

    @property
    def compiled(self) -> CompiledKripkeStructure:
        """The compiled form shared by every check against this instance."""
        return self._compiled

    # -- public API ----------------------------------------------------------

    def satisfaction_mask(self, formula: Formula) -> int:
        """Return the satisfaction set of ``formula`` as a bitmask."""
        cached = self._cache.get(formula)
        if cached is not None:
            return cached
        result = self._compute(formula)
        self._cache[formula] = result
        return result

    def satisfaction_set(self, formula: Formula) -> FrozenSet[State]:
        """Return the set of states satisfying the CTL state formula ``formula``."""
        return self._compiled.states_of(self.satisfaction_mask(formula))

    def check(self, formula: Formula, state: Optional[State] = None) -> bool:
        """Decide ``M, state ⊨ formula`` (default state: the initial state)."""
        if state is None:
            index = self._compiled.initial_index
        else:
            index = self._compiled.index_of(state)
        with _obs_span("mc.check", engine="bitset"):
            mask = self.satisfaction_mask(formula)
        _metrics.counter("mc.checks", engine="bitset").inc()
        return bool(mask >> index & 1)

    def check_batch(
        self,
        formulas: Union[Mapping[str, Formula], Iterable[Formula]],
        state: Optional[State] = None,
    ) -> Dict:
        """Check a whole family of formulas against the one compiled structure.

        With a mapping the result is keyed by the mapping's names; with a
        plain iterable it is keyed by the formulas themselves.  The batch is
        labelled bottom-up first (:meth:`label_batch`): every distinct state
        sub-formula across the *whole* family is computed exactly once into
        the shared sub-formula → bitmask table, so formulas sharing structure
        never recompute it and deep formulas never recurse.
        """
        if isinstance(formulas, Mapping):
            family = list(formulas.values())
        else:
            family = list(formulas)
        self.label_batch(family)
        if isinstance(formulas, Mapping):
            return {name: self.check(formula, state) for name, formula in formulas.items()}
        return {formula: self.check(formula, state) for formula in family}

    def label_batch(self, formulas: Iterable[Formula]) -> Dict[Formula, int]:
        """Label every distinct state sub-formula of ``formulas`` bottom-up.

        Walks each formula's state sub-formulas in post-order (children of a
        path quantifier are the operands of its temporal operator), dedupes
        them across the batch, and fills the memoised sub-formula → bitmask
        table children-first, so each :meth:`_compute` call finds its
        operands already cached — one table entry per distinct sub-formula
        for the whole family, and no deep recursion on tall formulas.
        Returns the table (shared with :meth:`satisfaction_mask`).
        """
        cache = self._cache
        for formula in formulas:
            stack: List[Tuple[Formula, bool]] = [(formula, False)]
            while stack:
                node, expanded = stack.pop()
                if node in cache:
                    continue
                if expanded:
                    cache[node] = self._compute(node)
                    continue
                stack.append((node, True))
                for child in self._state_children(node):
                    if child not in cache:
                        stack.append((child, False))
        return cache

    @staticmethod
    def _state_children(formula: Formula) -> Tuple[Formula, ...]:
        """The direct *state-formula* children (descending through path operators)."""
        if isinstance(formula, Not):
            return (formula.operand,)
        if isinstance(formula, (And, Or, Implies, Iff)):
            return (formula.left, formula.right)
        if isinstance(formula, (Exists, ForAll)):
            path = formula.path
            if isinstance(path, (Next, Finally, Globally)):
                return (path.operand,)
            if isinstance(path, (Until, Release, WeakUntil)):
                return (path.left, path.right)
        return ()

    # -- recursive computation -------------------------------------------------

    def _compute(self, formula: Formula) -> int:
        compiled = self._compiled
        if isinstance(formula, _ATOMIC):
            return compiled.atom_mask(formula)
        if isinstance(formula, Not):
            return compiled.all_mask & ~self.satisfaction_mask(formula.operand)
        if isinstance(formula, And):
            return self.satisfaction_mask(formula.left) & self.satisfaction_mask(formula.right)
        if isinstance(formula, Or):
            return self.satisfaction_mask(formula.left) | self.satisfaction_mask(formula.right)
        if isinstance(formula, Implies):
            return (
                compiled.all_mask & ~self.satisfaction_mask(formula.left)
            ) | self.satisfaction_mask(formula.right)
        if isinstance(formula, Iff):
            left = self.satisfaction_mask(formula.left)
            right = self.satisfaction_mask(formula.right)
            return compiled.all_mask & ~(left ^ right)
        if isinstance(formula, (IndexExists, IndexForall)):
            raise FragmentError(
                "the CTL checker does not handle index quantifiers; instantiate "
                "them with repro.mc.indexed first (formula: %s)" % formula
            )
        if isinstance(formula, Exists):
            return self._compute_exists(formula.path)
        if isinstance(formula, ForAll):
            return self._compute_forall(formula.path)
        raise FragmentError("formula is not a CTL state formula: %s" % formula)

    def _compute_exists(self, path: Formula) -> int:
        compiled = self._compiled
        if isinstance(path, Next):
            return compiled.preimage(self._constrain(self.satisfaction_mask(path.operand)))
        if isinstance(path, Finally):
            return self._eu(
                compiled.all_mask, self._constrain(self.satisfaction_mask(path.operand))
            )
        if isinstance(path, Globally):
            return self._eg_op(self.satisfaction_mask(path.operand))
        if isinstance(path, Until):
            return self._eu(
                self.satisfaction_mask(path.left),
                self._constrain(self.satisfaction_mask(path.right)),
            )
        if isinstance(path, Release):
            # E[f R g]  ≡  ¬A[¬f U ¬g]
            return compiled.all_mask & ~self._compute_forall(
                Until(Not(path.left), Not(path.right))
            )
        if isinstance(path, WeakUntil):
            # E[f W g]  ≡  E[f U g] ∨ EG f
            return self._compute_exists(Until(path.left, path.right)) | self._compute_exists(
                Globally(path.left)
            )
        raise FragmentError(
            "E must be applied to a single temporal operator over state formulas "
            "for CTL checking; got E(%s)" % path
        )

    def _compute_forall(self, path: Formula) -> int:
        compiled = self._compiled
        everything = compiled.all_mask
        if isinstance(path, Next):
            # AX f ≡ ¬EX ¬f
            return everything & ~compiled.preimage(
                self._constrain(everything & ~self.satisfaction_mask(path.operand))
            )
        if isinstance(path, Finally):
            # AF f ≡ ¬EG ¬f
            return everything & ~self._eg_op(
                everything & ~self.satisfaction_mask(path.operand)
            )
        if isinstance(path, Globally):
            # AG f ≡ ¬EF ¬f
            return everything & ~self._eu(
                everything, self._constrain(everything & ~self.satisfaction_mask(path.operand))
            )
        if isinstance(path, Until):
            # A[f U g] ≡ ¬( E[¬g U (¬f ∧ ¬g)] ∨ EG ¬g )
            not_f = everything & ~self.satisfaction_mask(path.left)
            not_g = everything & ~self.satisfaction_mask(path.right)
            bad = self._eu(not_g, self._constrain(not_f & not_g)) | self._eg_op(not_g)
            return everything & ~bad
        if isinstance(path, Release):
            # A[f R g] ≡ ¬E[¬f U ¬g]
            return everything & ~self._compute_exists(Until(Not(path.left), Not(path.right)))
        if isinstance(path, WeakUntil):
            # A[f W g] ≡ ¬E[¬g U (¬f ∧ ¬g)]
            not_f = everything & ~self.satisfaction_mask(path.left)
            not_g = everything & ~self.satisfaction_mask(path.right)
            return everything & ~self._eu(not_g, self._constrain(not_f & not_g))
        raise FragmentError(
            "A must be applied to a single temporal operator over state formulas "
            "for CTL checking; got A(%s)" % path
        )

    # -- fixpoint primitives -----------------------------------------------------

    def _eu(self, left: int, right: int) -> int:
        """Least fixpoint for ``E[left U right]`` by predecessor propagation.

        Backwards reachability from ``right`` through ``left``: every state is
        enqueued at most once and its predecessor list scanned at most once,
        so the whole fixpoint is ``O(|S| + |R|)`` int operations.
        """
        compiled = self._compiled
        predecessors_of = compiled.predecessors_of
        with _obs_span("bitset.eu") as sp:
            satisfied = right
            frontier = list(bits_of(right))
            pops = 0
            while frontier:
                index = frontier.pop()
                pops += 1
                if not pops & 255:
                    _checkpoint("bitset.worklist")
                for pred in predecessors_of(index):
                    bit = 1 << pred
                    if not satisfied & bit and left & bit:
                        satisfied |= bit
                        frontier.append(pred)
            sp.set(pops=pops, satisfied=popcount(satisfied))
        _metrics.counter("bitset.worklist.pops", op="eu").inc(pops)
        return satisfied

    def _eg(self, operand: int) -> int:
        """Greatest fixpoint for ``EG operand`` by reverse pruning.

        Each candidate state keeps a count of successors still inside the
        candidate set; states whose count drops to zero are pruned and their
        predecessors' counts decremented, touching every transition at most
        once instead of re-scanning the whole set per iteration.
        """
        compiled = self._compiled
        successor_mask = compiled.successor_mask
        predecessors_of = compiled.predecessors_of
        with _obs_span("bitset.eg") as sp:
            current = operand
            counts: Dict[int, int] = {}
            doomed: List[int] = []
            for index in bits_of(operand):
                alive = popcount(successor_mask(index) & operand)
                counts[index] = alive
                if not alive:
                    doomed.append(index)
            pops = 0
            while doomed:
                index = doomed.pop()
                pops += 1
                if not pops & 255:
                    _checkpoint("bitset.worklist")
                current &= ~(1 << index)
                for pred in predecessors_of(index):
                    remaining = counts.get(pred)
                    if remaining is None or not current >> pred & 1:
                        continue
                    remaining -= 1
                    counts[pred] = remaining
                    if not remaining:
                        doomed.append(pred)
            sp.set(pops=pops, satisfied=popcount(current))
        _metrics.counter("bitset.worklist.pops", op="eg").inc(pops)
        return current

    # -- fairness ----------------------------------------------------------------

    def fair_states_mask(self) -> int:
        """The fair states (starting at least one fair path) as a bitmask."""
        if self._fairness is None:
            return self._compiled.all_mask
        if self._fair_states_mask is None:
            self._fair_states_mask = self._fair_eg(self._compiled.all_mask)
        return self._fair_states_mask

    def fair_states(self) -> FrozenSet[State]:
        """The fair states, decoded into a frozenset."""
        return self._compiled.states_of(self.fair_states_mask())

    def fairness_condition_masks(self) -> Tuple[int, ...]:
        """The (plain-semantics) satisfaction masks of the fairness conditions."""
        if self._fairness is None:
            return ()
        if self._fair_condition_masks is None:
            # Conditions are decided under the unconstrained semantics by a
            # plain sub-checker sharing this instance's compilation.
            plain = BitsetCTLModelChecker(self._compiled, validate_structure=False)
            self._fair_condition_masks = tuple(
                plain.satisfaction_mask(condition)
                for condition in self._fairness.conditions
            )
        return self._fair_condition_masks

    def fairness_condition_sets(self) -> Tuple[FrozenSet[State], ...]:
        """The fairness-condition satisfaction sets, decoded into frozensets."""
        states_of = self._compiled.states_of
        return tuple(states_of(mask) for mask in self.fairness_condition_masks())

    def _constrain(self, target: int) -> int:
        """Mask an ``EX``/``EU`` target with the fair states (no-op when unconstrained)."""
        if self._fairness is None:
            return target
        return target & self.fair_states_mask()

    def _eg_op(self, operand: int) -> int:
        """Dispatch ``EG`` to the plain or the fairness-constrained fixpoint."""
        if self._fairness is None:
            return self._eg(operand)
        return self._fair_eg(operand)

    def _fair_eg(self, operand: int) -> int:
        """SCC-restricted greatest fixpoint for fair ``EG operand``.

        Tarjan runs over the state indices inside the operand mask with the
        adjacency filtered to it; the non-trivial components whose index mask
        meets every fairness mask form the hub, and the result is the
        backwards ``EU`` reachability of the hub through the operand.
        """
        compiled = self._compiled
        successors_of = compiled.successors_of
        with _obs_span("bitset.fair_eg") as sp:
            indices = list(bits_of(operand))
            restricted = {
                index: [
                    target for target in successors_of(index) if operand >> target & 1
                ]
                for index in indices
            }
            condition_index_sets = [
                frozenset(bits_of(mask & operand))
                for mask in self.fairness_condition_masks()
            ]
            hub = 0
            components = 0
            for component in fair_components(indices, restricted, condition_index_sets):
                components += 1
                for index in component:
                    hub |= 1 << index
            sp.set(
                candidates=len(indices),
                fair_components=components,
                hub=popcount(hub),
            )
        return self._eu(operand, hub)


def make_ctl_checker(
    structure: Union[KripkeStructure, CompiledKripkeStructure],
    engine: str = "bitset",
    validate_structure: bool = True,
    fairness: Optional[FairnessConstraint] = None,
    bound: Optional[int] = None,
):
    """Construct a model checker for ``structure`` using the named engine.

    The engines (see :data:`ENGINE_NAMES`): ``"bitset"`` returns a
    :class:`BitsetCTLModelChecker`; ``"naive"`` returns the frozenset-based
    :class:`repro.mc.ctl.CTLModelChecker` (the differential-testing oracle);
    ``"bdd"`` returns the symbolic
    :class:`repro.mc.symbolic.SymbolicCTLModelChecker`, which runs the CTL
    fixpoints on binary decision diagrams instead of enumerated state sets;
    ``"bmc"`` returns the SAT-based
    :class:`repro.mc.bmc.BoundedModelChecker`, which decides the invariant
    fragment by bounded falsification and k-induction (``bound`` caps its
    unrolling depth); ``"ic3"`` returns the unbounded SAT-based prover
    :class:`repro.mc.ic3.IC3ModelChecker` (``bound`` caps its *frame count*
    — a divergence safety net, not a proof parameter); ``"portfolio"``
    returns :class:`repro.runtime.portfolio.PortfolioModelChecker`, racing
    the other engines in supervised worker processes and keeping the first
    conclusive verdict (``bound`` is forwarded to its SAT workers).
    ``bound`` is ignored by the fixpoint engines.  See ``docs/ENGINES.md``
    for a when-to-use-which guide.

    With ``fairness`` (a :class:`repro.mc.fairness.FairnessConstraint`) the
    returned checker decides the fairness-constrained CTL semantics: path
    quantifiers range over the paths visiting every fairness set infinitely
    often (rejected by the SAT engines).
    """
    if engine == "bitset":
        return BitsetCTLModelChecker(
            structure, validate_structure=validate_structure, fairness=fairness
        )
    if engine == "naive":
        from repro.mc.ctl import CTLModelChecker

        if isinstance(structure, CompiledKripkeStructure):
            structure = structure.source
        return CTLModelChecker(
            structure, validate_structure=validate_structure, fairness=fairness
        )
    if engine == "bdd":
        from repro.mc.symbolic import SymbolicCTLModelChecker

        if isinstance(structure, CompiledKripkeStructure):
            structure = structure.source
        return SymbolicCTLModelChecker(
            structure, validate_structure=validate_structure, fairness=fairness
        )
    if engine == "bmc":
        from repro.mc.bmc import DEFAULT_BOUND, BoundedModelChecker

        if isinstance(structure, CompiledKripkeStructure):
            structure = structure.source
        return BoundedModelChecker(
            structure,
            bound=DEFAULT_BOUND if bound is None else bound,
            validate_structure=validate_structure,
            fairness=fairness,
        )
    if engine == "ic3":
        from repro.mc.ic3 import DEFAULT_MAX_FRAMES, IC3ModelChecker

        if isinstance(structure, CompiledKripkeStructure):
            structure = structure.source
        return IC3ModelChecker(
            structure,
            max_frames=DEFAULT_MAX_FRAMES if bound is None else bound,
            validate_structure=validate_structure,
            fairness=fairness,
        )
    if engine == "portfolio":
        from repro.runtime.portfolio import PortfolioModelChecker

        if isinstance(structure, CompiledKripkeStructure):
            structure = structure.source
        return PortfolioModelChecker(
            structure,
            bound=bound,
            fairness=fairness,
            validate_structure=validate_structure,
        )
    raise ModelCheckingError(
        "unknown engine %r; expected one of %s" % (engine, ", ".join(ENGINE_NAMES))
    )


def satisfaction_set(
    structure: Union[KripkeStructure, CompiledKripkeStructure],
    formula: Formula,
    fairness: Optional[FairnessConstraint] = None,
) -> FrozenSet[State]:
    """One-shot helper: the bitset-engine satisfaction set of ``formula``."""
    return BitsetCTLModelChecker(structure, fairness=fairness).satisfaction_set(formula)


def check(
    structure: Union[KripkeStructure, CompiledKripkeStructure],
    formula: Formula,
    state: Optional[State] = None,
    fairness: Optional[FairnessConstraint] = None,
) -> bool:
    """One-shot helper: decide ``structure, state ⊨ formula`` with the bitset engine."""
    return BitsetCTLModelChecker(structure, fairness=fairness).check(formula, state)
